//! The full Poise workflow: offline training on the (capped) training
//! suite, then deployment of the learned weights to the hardware
//! inference engine on an *unseen* evaluation benchmark — the paper's
//! no-profiling-burden-for-the-end-user story.
//!
//! ```sh
//! POISE_TRAIN_CAP=6 cargo run --release --example train_and_deploy
//! ```

use poise_repro::poise::experiment::{self, Scheme, Setup};
use poise_repro::poise::train;
use poise_repro::workloads::evaluation_suite;

fn main() {
    let mut setup = Setup::default();
    // Keep the example quick: small caps unless overridden by env.
    setup.train_cap_per_benchmark = setup.train_cap_per_benchmark.min(6);
    setup.kernels_cap = setup.kernels_cap.min(2);

    println!("== offline training (GPU-vendor side, one time) ==");
    let t0 = std::time::Instant::now();
    let model = train::train_default_model(&setup);
    println!(
        "trained on {} kernels in {:.1}s",
        model.samples_used,
        t0.elapsed().as_secs_f64()
    );
    println!("alpha (N weights): {:?}", model.alpha);
    println!("beta  (p weights): {:?}", model.beta);

    println!("\n== deployment on an unseen benchmark (end-user side) ==");
    let bench = evaluation_suite()
        .into_iter()
        .find(|b| b.name == "mm")
        .expect("mm benchmark");
    let gto = experiment::run_benchmark(&bench, Scheme::Gto, &model, &setup);
    let poise = experiment::run_benchmark(&bench, Scheme::Poise, &model, &setup);
    println!(
        "{}: GTO IPC {:.3} -> Poise IPC {:.3} ({:.2}x)",
        bench.name,
        gto.ipc,
        poise.ipc,
        poise.ipc / gto.ipc
    );
    for k in &poise.kernels {
        for l in k.epoch_logs.iter().take(2) {
            println!(
                "  {}: predicted {} -> searched {}{}",
                k.kernel,
                l.predicted,
                l.searched,
                if l.early_out { " (early-out)" } else { "" }
            );
        }
    }
}
