//! Explore the {N, p} solution space of a kernel: profile the full grid,
//! render it as ASCII art, and compare what CCWS/SWL (diagonal), the
//! Eq. 12 scoring and the raw optimum would each pick — the Fig. 2/5
//! analysis as a library workflow.
//!
//! ```sh
//! cargo run --release --example explore_solution_space [bench-name]
//! ```

use poise_repro::gpu_sim::{GpuConfig, KernelSource};
use poise_repro::poise::profiler::{profile_grid, GridSpec, ProfileWindow};
use poise_repro::poise_ml::ScoringWeights;
use poise_repro::workloads::evaluation_suite;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "ii".to_string());
    let bench = evaluation_suite()
        .into_iter()
        .find(|b| b.name == which)
        .unwrap_or_else(|| panic!("unknown benchmark {which}"));
    let kernel = &bench.kernels[0];
    let cfg = GpuConfig::scaled(4);

    println!("profiling {} over the full {{N, p}} grid...", kernel.name());
    let grid = profile_grid(
        kernel,
        &cfg,
        &GridSpec::full(kernel.warps_per_scheduler().min(16)),
        ProfileWindow::default(),
    );

    // ASCII rendering: rows are p (descending), columns N.
    let max_n = grid.max_n();
    for p in (1..=max_n).rev() {
        print!("p={p:2} ");
        for n in 1..=max_n {
            let c = if p > n {
                ' '
            } else {
                match grid.get(n, p) {
                    None => '.',
                    Some(v) if v >= 1.10 => '#',
                    Some(v) if v >= 1.00 => '+',
                    Some(v) if v >= 0.90 => '-',
                    Some(_) => ':',
                }
            };
            print!("{c} ");
        }
        println!();
    }
    println!(
        "     {}",
        (1..=max_n)
            .map(|n| format!("{:<2}", n % 10))
            .collect::<String>()
    );
    println!("# >= +10%, + speedup, - small slowdown, : big slowdown");

    let (best, s_best) = grid.best_performance().expect("profiled");
    let (diag, s_diag) = grid.best_diagonal().expect("profiled");
    let (scored, _) = grid
        .best_scored(&ScoringWeights::default())
        .expect("scored");
    println!("\nglobal best        : {best}  ({s_best:.3}x)");
    println!("diagonal best (SWL): {diag}  ({s_diag:.3}x)");
    println!(
        "best scored (Eq.12): {scored}  ({:.3}x) <- the training target",
        grid.get(scored.n, scored.p).unwrap_or(1.0)
    );
}
