//! Define a custom kernel with the `workloads` building blocks — a
//! phase-changing kernel that alternates between an intra-warp-local and
//! a shared-tile regime — and watch Poise re-predict as the phases flip,
//! which is exactly how it beats per-kernel offline profiling
//! (Static-Best) on the paper's monolithic kernels.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use poise_repro::gpu_sim::{Gpu, GpuConfig};
use poise_repro::poise::{PoiseController, PoiseParams};
use poise_repro::poise_ml::{TrainedModel, N_FEATURES};
use poise_repro::workloads::{AccessMix, KernelSpec, Phase};

fn main() {
    // Phase A: per-warp hot sets (wants small p, moderate N).
    let mut phase_a = AccessMix::memory_sensitive();
    phase_a.hot_lines = 16;
    phase_a.hot_frac = 0.9;
    phase_a.shared_frac = 0.02;
    // Phase B: shared tile (tolerates large p).
    let mut phase_b = AccessMix::memory_sensitive();
    phase_b.hot_lines = 4;
    phase_b.hot_frac = 0.3;
    phase_b.shared_frac = 0.6;
    phase_b.shared_lines = 64;

    let kernel = KernelSpec::phased(
        "custom-phased",
        vec![
            Phase {
                mix: phase_a,
                instructions: 30_000,
            },
            Phase {
                mix: phase_b,
                instructions: 30_000,
            },
        ],
        123,
    );

    // A neutral starting model; the local search adapts per epoch.
    let mut alpha = [0.0; N_FEATURES];
    let mut beta = [0.0; N_FEATURES];
    alpha[N_FEATURES - 1] = (10.0f64).ln();
    beta[N_FEATURES - 1] = (4.0f64).ln();
    let model = TrainedModel {
        alpha,
        beta,
        dispersion_n: 0.1,
        dispersion_p: 0.1,
        samples_used: 0,
        dropped_features: Vec::new(),
    };

    let mut gpu = Gpu::new(GpuConfig::scaled(4), &kernel);
    let mut ctrl = PoiseController::new(model, PoiseParams::default());
    let res = gpu.run(&mut ctrl, 1_000_000);

    println!("ran {} cycles, IPC {:.3}", res.cycles, res.ipc());
    println!("Poise epochs (watch the tuple move as phases alternate):");
    for l in &ctrl.log {
        println!(
            "  @{:>7}: predicted {} -> searched {}{}",
            l.cycle,
            l.predicted,
            l.searched,
            if l.early_out { " (early-out)" } else { "" }
        );
    }
}
