//! Quickstart: run one memory-sensitive kernel under the GTO baseline and
//! under Poise (with a hand-made model), and print the speedup.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use poise_repro::gpu_sim::{FixedTuple, Gpu, GpuConfig};
use poise_repro::poise::{PoiseController, PoiseParams};
use poise_repro::poise_ml::{TrainedModel, N_FEATURES};
use poise_repro::workloads::{AccessMix, KernelSpec};

fn main() {
    // A thrash-prone kernel: 48 warps/SM whose hot sets wildly exceed the
    // 128-line L1.
    let kernel = KernelSpec::steady("quickstart", AccessMix::memory_sensitive(), 7);
    let cfg = GpuConfig::scaled(4);

    // Baseline: greedy-then-oldest with maximum warps, all polluting.
    let mut gto_gpu = Gpu::new(cfg.clone(), &kernel);
    let gto = gto_gpu.run(&mut FixedTuple::max(), 300_000);

    // Poise with a minimal constant model (a properly trained model comes
    // from `poise::train::train_default_model`; see the train_and_deploy
    // example). The local search does the fine-tuning at runtime.
    let mut alpha = [0.0; N_FEATURES];
    let mut beta = [0.0; N_FEATURES];
    alpha[N_FEATURES - 1] = (8.0f64).ln(); // predict N = 8
    beta[N_FEATURES - 1] = (3.0f64).ln(); // predict p = 3
    let model = TrainedModel {
        alpha,
        beta,
        dispersion_n: 0.1,
        dispersion_p: 0.1,
        samples_used: 0,
        dropped_features: Vec::new(),
    };
    let mut poise_gpu = Gpu::new(cfg, &kernel);
    let mut controller = PoiseController::new(model, PoiseParams::default());
    let poise = poise_gpu.run(&mut controller, 300_000);

    println!(
        "GTO   IPC: {:.3}  (L1 hit {:.1}%)",
        gto.ipc(),
        100.0 * gto.counters.l1_hit_rate()
    );
    println!(
        "Poise IPC: {:.3}  (L1 hit {:.1}%)",
        poise.ipc(),
        100.0 * poise.counters.l1_hit_rate()
    );
    println!("speedup:   {:.2}x", poise.ipc() / gto.ipc());
    for log in controller.log.iter().take(3) {
        println!(
            "epoch @{}: predicted {} -> searched {}",
            log.cycle, log.predicted, log.searched
        );
    }
}
