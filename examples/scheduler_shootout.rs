//! Compare every warp-scheduling policy in the repository on one
//! benchmark: GTO, SWL, PCAL-SWL, Poise, Static-Best, random-restart
//! stochastic search and APCM-style bypassing.
//!
//! ```sh
//! cargo run --release --example scheduler_shootout [bench-name]
//! ```

use poise_repro::poise::experiment::{self, Scheme, Setup};
use poise_repro::poise::train;
use poise_repro::workloads::evaluation_suite;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "ii".to_string());
    let bench = evaluation_suite()
        .into_iter()
        .find(|b| b.name == which)
        .unwrap_or_else(|| panic!("unknown benchmark {which}"));

    let mut setup = Setup::default();
    setup.kernels_cap = setup.kernels_cap.min(2);
    setup.train_cap_per_benchmark = setup.train_cap_per_benchmark.min(6);
    println!("training the regression model (one-time)...");
    let model = train::train_default_model(&setup);

    println!(
        "\n{:<16} {:>8} {:>10} {:>9} {:>8}",
        "scheme", "IPC", "vs GTO", "L1 hit%", "AML"
    );
    let mut gto_ipc = None;
    for scheme in [
        Scheme::Gto,
        Scheme::Swl,
        Scheme::PcalSwl,
        Scheme::Poise,
        Scheme::StaticBest,
        Scheme::RandomRestart,
        Scheme::Apcm,
    ] {
        let r = experiment::run_benchmark(&bench, scheme, &model, &setup);
        let base = *gto_ipc.get_or_insert(r.ipc);
        println!(
            "{:<16} {:>8.3} {:>9.2}x {:>8.1}% {:>8.0}",
            scheme.name(),
            r.ipc,
            r.ipc / base,
            100.0 * r.l1_hit_rate,
            r.aml
        );
    }
}
