//! # poise-repro — reproduction of Poise (HPCA 2019)
//!
//! Umbrella crate for the workspace reproducing *"Poise: Balancing
//! Thread-Level Parallelism and Memory System Performance in GPUs using
//! Machine Learning"* (Dublish, Nagarajan, Topham; HPCA 2019).
//!
//! Re-exports the four library crates so examples and integration tests
//! can use a single dependency:
//!
//! * [`gpu_sim`] — the cycle-level GPU simulator substrate;
//! * [`workloads`] — synthetic kernels calibrated to the paper's
//!   benchmark characterisation;
//! * [`poise_ml`] — the analytical model, feature vector and Negative
//!   Binomial regression;
//! * [`poise`] — the hardware inference engine, comparison schedulers,
//!   profiler and experiment runners.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use gpu_sim;
pub use poise;
pub use poise_ml;
pub use workloads;
