//! Property-based tests of the simulator's core data structures and of
//! the event-driven fast-forward run loop.

use gpu_sim::{
    CacheGeometry, Counters, FixedTuple, Gpu, GpuConfig, GpuStats, SetAssocCache, SetIndexing,
    StepMode, UniformKernel, WarpTuple,
};
use proptest::prelude::*;

fn geometry() -> impl Strategy<Value = CacheGeometry> {
    (
        1usize..=64,
        1usize..=8,
        prop_oneof![Just(SetIndexing::Linear), Just(SetIndexing::Hashed)],
    )
        .prop_map(|(sets, ways, indexing)| CacheGeometry {
            sets,
            ways,
            line_bytes: 128,
            indexing,
        })
}

proptest! {
    /// Whatever the access mix, occupancy never exceeds capacity and the
    /// set index stays in range.
    #[test]
    fn cache_occupancy_bounded(
        geo in geometry(),
        lines in proptest::collection::vec(0u64..10_000, 1..400),
    ) {
        let mut c = SetAssocCache::new(geo);
        for &l in &lines {
            prop_assert!(geo.set_of(l) < geo.sets);
            c.insert(l);
        }
        prop_assert!(c.valid_lines() <= geo.lines());
    }

    /// After inserting a line it is observable until evicted; hitting a
    /// line refreshes it so repeated access to a small set always hits.
    #[test]
    fn lru_protects_recently_used(
        geo in geometry(),
        hot in proptest::collection::vec(0u64..50, 1..8),
        noise in proptest::collection::vec(50u64..10_000, 0..200),
    ) {
        // Only meaningful when the hot set plus one noise line fit in a
        // set: with strictly fewer hot lines than ways, re-touching every
        // hot line keeps them all above any single noise line in LRU
        // order, whatever the interleaving.
        prop_assume!(hot.len() < geo.ways);
        let mut c = SetAssocCache::new(geo);
        let mut noise_it = noise.iter();
        for _ in 0..24 {
            for &h in &hot {
                c.insert(h);
                c.access(h);
            }
            if let Some(&n) = noise_it.next() {
                c.insert(n);
            }
            // After the noise insert, every hot line must have survived.
            for &h in &hot {
                prop_assert!(
                    matches!(c.probe(h), gpu_sim::cache::Lookup::Hit { .. }),
                    "hot line {h} evicted"
                );
            }
        }
    }

    /// Tuple construction always yields a valid domain point, and the
    /// distance metric is symmetric and zero iff equal.
    #[test]
    fn warp_tuple_domain_and_distance(
        n in 0usize..100,
        p in 0usize..100,
        m in 1usize..32,
    ) {
        let t = WarpTuple::new(n, p, m);
        prop_assert!(t.n >= 1 && t.n <= m);
        prop_assert!(t.p >= 1 && t.p <= t.n);
        let u = WarpTuple::new(p, n, m);
        prop_assert!((t.distance(&u) - u.distance(&t)).abs() < 1e-12);
        prop_assert_eq!(t.distance(&t), 0.0);
    }

    /// Counter deltas are consistent: delta(a+d, a) == d fieldwise for the
    /// fields exercised here.
    #[test]
    fn counter_delta_roundtrip(
        cycles in 0u64..1_000_000,
        instr in 0u64..1_000_000,
        hits in 0u64..1_000_000,
    ) {
        let a = Counters {
            cycles,
            instructions: instr,
            l1_hits: hits,
            ..Counters::default()
        };
        let mut b = a;
        b.cycles += 17;
        b.instructions += 4;
        b.l1_hits += 2;
        let d = b.delta_since(&a);
        prop_assert_eq!(d.cycles, 17);
        prop_assert_eq!(d.instructions, 4);
        prop_assert_eq!(d.l1_hits, 2);
    }

    /// Window resets never disturb totals.
    #[test]
    fn window_reset_preserves_totals(increments in proptest::collection::vec(1u64..100, 1..50)) {
        let mut s = GpuStats::new();
        let mut expect = 0;
        for (i, inc) in increments.iter().enumerate() {
            s.bump(|c| c.instructions += *inc);
            expect += *inc;
            if i % 3 == 0 {
                s.reset_window();
            }
        }
        prop_assert_eq!(s.total.instructions, expect);
        prop_assert!(s.window.instructions <= expect);
    }

    /// Hit rates derived from counters always land in [0, 1].
    #[test]
    fn rates_are_fractions(
        acc in 0u64..10_000,
        hits_frac in 0.0f64..=1.0,
    ) {
        let c = Counters {
            l1_accesses: acc,
            l1_hits: (acc as f64 * hits_frac) as u64,
            ..Counters::default()
        };
        let r = c.l1_hit_rate();
        prop_assert!((0.0..=1.0).contains(&r));
    }

    /// Every fast run loop (per-SM decoupled clocks — single-threaded and
    /// on the work-stealing pool at any thread count — and the global
    /// event-driven skip) is bit-identical to the cycle-stepped reference
    /// for arbitrary kernels, tuples, SM counts and budgets — including
    /// mid-run `run()` re-entry, which is how the profiler drives the GPU
    /// (warmup run, window reset, measurement run). Identical counters
    /// mean AML (which encodes event delivery times), IPC and stall
    /// accounting all agree exactly — so no skipped span ever crossed a
    /// scheduled event, no per-SM advance outran the shared memory
    /// system, and none ran past a budget end.
    #[test]
    fn fast_modes_match_reference(
        warps in 1usize..12,
        alu in 0usize..8,
        n in 1usize..24,
        p in 1usize..24,
        sms in 1usize..5,
        budget in 500u64..12_000,
        split_num in 0u64..=4,
        resident in prop_oneof![Just(false), Just(true)],
        threads in prop_oneof![Just(1usize), Just(2), Just(3), Just(8)],
    ) {
        let kernel = if resident {
            UniformKernel::resident(warps, alu)
        } else {
            UniformKernel::streaming(warps, alu)
        };
        // Split the budget into two back-to-back `run()` calls at an
        // arbitrary point (0% / 25% / 50% / 75% / 100%).
        let first = budget * split_num / 4;
        let run = |mode: StepMode, sim_threads: usize| {
            let mut cfg = GpuConfig::scaled(sms);
            cfg.step_mode = mode;
            cfg.sim_threads = sim_threads;
            let mut gpu = Gpu::new(cfg, &kernel);
            let mut ctrl = FixedTuple::new(WarpTuple::new(n, p, 24));
            let mid = gpu.run(&mut ctrl, first);
            let res = gpu.run(&mut ctrl, budget - first);
            (mid.counters, mid.completed, res.counters, res.completed, gpu.cycle())
        };
        let rf = run(StepMode::Reference, 1);
        prop_assert_eq!(run(StepMode::PerSm, 1), rf.clone());
        prop_assert_eq!(run(StepMode::ParallelSm, threads), rf.clone());
        prop_assert_eq!(run(StepMode::EventDriven, 1), rf);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// MSHR reject storms (occupancy beyond the MSHR file, so ready warps
    /// retry structurally rejected loads every cycle) are the regime the
    /// structural-stall replay targets; the bulk-accounted reject and
    /// stall counters must stay bit-identical to stepping each retry.
    /// Cases are few and budgets short because the reference loop really
    /// does step every storm cycle.
    #[test]
    fn reject_storms_match_reference(
        // 17+ warps/scheduler want 34+ outstanding loads: strictly more
        // than the 32 MSHRs, so the storm is guaranteed.
        warps in 17usize..=24,
        alu in 0usize..3,
        sms in 1usize..3,
        budget in 500u64..4_000,
    ) {
        let kernel = UniformKernel::streaming(warps, alu);
        let run = |mode: StepMode| {
            let mut cfg = GpuConfig::scaled(sms);
            cfg.step_mode = mode;
            if mode == StepMode::ParallelSm {
                cfg.sim_threads = 2;
            }
            let mut gpu = Gpu::new(cfg, &kernel);
            let mut ctrl = FixedTuple::new(WarpTuple::new(warps, warps, 24));
            let res = gpu.run(&mut ctrl, budget);
            (res.counters, gpu.cycle())
        };
        let rf = run(StepMode::Reference);
        prop_assert!(rf.0.l1_rejects > 0, "occupancy beyond the MSHRs must reject");
        prop_assert_eq!(run(StepMode::PerSm), rf.clone());
        prop_assert_eq!(run(StepMode::ParallelSm), rf.clone());
        prop_assert_eq!(run(StepMode::EventDriven), rf);
    }
}
