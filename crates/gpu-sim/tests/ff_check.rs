//! Fast-forward sanity check, promoted from the old `ff_check` example so
//! it runs under `cargo test` instead of requiring a manual invocation:
//! every fast run loop must produce bit-identical counters to the
//! cycle-stepped reference across the three regimes that bracket the
//! design space, and must actually engage where it is supposed to.

use gpu_sim::{FixedTuple, Gpu, GpuConfig, StepMode, UniformKernel, WarpTuple};

const BUDGET: u64 = 150_000;

fn run(
    kernel: &UniformKernel,
    warps: usize,
    mode: StepMode,
) -> (gpu_sim::Counters, bool, u64, (u64, u64)) {
    let mut cfg = GpuConfig::scaled(4);
    cfg.step_mode = mode;
    let mut gpu = Gpu::new(cfg, kernel);
    let mut ctrl = FixedTuple::new(WarpTuple::new(warps, warps, 24));
    let res = gpu.run(&mut ctrl, BUDGET);
    (
        res.counters,
        res.completed,
        gpu.cycle(),
        gpu.fast_forward_stats(),
    )
}

#[test]
fn fast_forward_sanity_check() {
    for (name, warps, alu) in [
        ("mem-bound n1", 1usize, 0usize),
        ("mem-bound n4", 4, 2),
        ("high-occupancy n16", 16, 2),
        ("reject-storm n24", 24, 0),
        ("compute", 8, 40),
    ] {
        let kernel = UniformKernel::streaming(warps, alu);
        let rf = run(&kernel, warps, StepMode::Reference);
        assert_eq!(rf.3, (0, 0), "{name}: reference must never skip");
        for mode in [StepMode::PerSm, StepMode::EventDriven] {
            let fast = run(&kernel, warps, mode);
            assert_eq!(fast.0, rf.0, "{name}/{mode:?}: counters diverged");
            assert_eq!(
                (fast.1, fast.2),
                (rf.1, rf.2),
                "{name}/{mode:?}: completion/cycle diverged"
            );
        }
        // The per-SM loop must skip heavily on every memory-bound regime,
        // including the structural reject storm the stepped skip cannot
        // touch.
        if alu < 40 {
            let (_, _, _, (spans, skipped)) = run(&kernel, warps, StepMode::PerSm);
            assert!(
                spans > 0 && skipped > BUDGET / 4,
                "{name}: per-SM fast-forward barely engaged \
                 ({spans} spans, {skipped} skipped SM-cycles)"
            );
        }
    }
}
