//! Golden pin of the versioned snapshot encoding.
//!
//! Snapshot text is durable state: prefix blobs live in `results/cache/`
//! and are exchanged between fleet workers, so the encoding is an
//! on-disk format with the same stability contract as `SimJob::spec_text`
//! (see `spec_golden` in the poise crate). The writer destructures every
//! struct exhaustively — adding a field to `Gpu`, `Sm`, `Warp`, `L1Data`
//! or `MemSystem` fails *compile* until the codec is updated — and this
//! test freezes the rendering itself, so a formatting drift fails loudly
//! instead of silently stranding every stored prefix. An intentional
//! change must update the golden and bump the `gpu-snapshot v1` header.
//!
//! The pinned machine is tiny but exercises most of the grammar: a
//! mid-flight streaming kernel with queued fill events, both pending
//! MSHRs in use, valid + reserved L1 lines, L2 contents and DRAM
//! partition clocks.

use gpu_sim::{snapshot, FixedTuple, Gpu, GpuConfig, SnapshotError, UniformKernel};

fn tiny_cfg() -> GpuConfig {
    let mut cfg = GpuConfig::scaled(1);
    cfg.sms = 1;
    cfg.schedulers_per_sm = 1;
    cfg.max_warps_per_scheduler = 2;
    cfg.l1.sets = 2;
    cfg.l1.ways = 2;
    cfg.l1_mshrs = 2;
    cfg.l2.geometry.sets = 4;
    cfg.l2.geometry.ways = 2;
    cfg.l2.banks = 1;
    cfg.dram.partitions = 1;
    cfg
}

fn tiny_machine() -> Gpu {
    let kernel = UniformKernel::streaming(2, 4);
    let mut gpu = Gpu::new(tiny_cfg(), &kernel);
    let mut ctrl = FixedTuple::max();
    gpu.run(&mut ctrl, 600);
    gpu
}

const GOLDEN: &str = "\
gpu-snapshot v1
cycle 600
drained 0
kernel-warps 2
geometry sms=1 scheds=1 warps=2 l1-lines=4 mshrs=2 pcs=1 l2-banks=1 l2-lines=8 parts=1
total 600 20 4 0 4 0 0 0 0 4 0 0 2 751 0 4 0 4 0 4 20 580 8 2 0 0
window 600 20 4 0 4 0 0 0 0 4 0 0 2 751 0 4 0 4 0 4 20 580 8 2 0 0
sm 0
evseq 4
ev 752 3 0 0 0
ev 764 4 0 1 0
sched 0 2 2 1
warp 0 0 12 - 1 1 0 10 0 1
warp 0 1 12 - 1 1 0 10 0 1
l1line 0 1048576 1 3 1
l1line 1 2097152 1 5 2
l1line 2 1048577 2 4 0
l1line 3 2097153 2 6 0
l1stamp 6
mshr 0 1 1048577 1:0 0:0:380
mshr 1 1 2097153 1:1 0:1:392
l1used 1048577:0,2097153:1
l1free -
end-sm
l2bank 0 410 4
l2line 0 0 1048576 1 1 0
l2line 0 1 2097152 1 2 0
l2line 0 2 1048577 1 3 0
l2line 0 3 2097153 1 4 0
part 0 540
end-snapshot
";

#[test]
fn snapshot_encoding_is_pinned() {
    assert_eq!(tiny_machine().snapshot(), GOLDEN);
}

#[test]
fn golden_text_restores_and_re_encodes_identically() {
    let kernel = UniformKernel::streaming(2, 4);
    let gpu = Gpu::restore(tiny_cfg(), &kernel, GOLDEN).expect("golden must restore");
    assert_eq!(
        gpu.snapshot(),
        GOLDEN,
        "restore→snapshot must be a fixpoint"
    );
}

#[test]
fn truncated_golden_is_rejected_at_every_line() {
    // Drop the tail one line at a time: every prefix must fail to load
    // (the `end-snapshot` terminator catches clean truncations, section
    // cross-checks catch the rest).
    let lines: Vec<&str> = GOLDEN.lines().collect();
    for keep in 0..lines.len() {
        let text = lines[..keep].join("\n");
        assert!(
            snapshot::validate(&text).is_err(),
            "truncation to {keep} lines must be rejected"
        );
    }
}

#[test]
fn corrupt_golden_reports_line_numbers() {
    // A bit-flip in a counters row: caught with a located error.
    let bad = GOLDEN.replace("total 600 20", "total 600 2x");
    let SnapshotError(msg) = snapshot::validate(&bad).unwrap_err();
    assert!(
        msg.contains("line 6"),
        "error must locate the damage: {msg}"
    );

    // Geometry drift (blob from a different machine shape).
    let kernel = UniformKernel::streaming(2, 4);
    let mut other = tiny_cfg();
    other.l1.sets = 4;
    assert!(
        Gpu::restore(other, &kernel, GOLDEN).is_err(),
        "geometry mismatch must be rejected"
    );

    // Kernel shape drift (blob from a different kernel). A *wider* kernel
    // would be clamped to the config's two warps per scheduler, so only a
    // narrower one actually changes the machine shape.
    let narrower = UniformKernel::streaming(1, 4);
    assert!(
        Gpu::restore(tiny_cfg(), &narrower, GOLDEN).is_err(),
        "kernel-warps mismatch must be rejected"
    );
}
