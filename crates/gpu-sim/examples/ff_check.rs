//! Quick differential sanity check: event-driven vs reference counters
//! and wall-clock, across memory-bound and compute-bound kernels.

use gpu_sim::{FixedTuple, Gpu, GpuConfig, StepMode, UniformKernel, WarpTuple};
use std::time::Instant;

fn main() {
    for (name, warps, alu) in [
        ("mem-bound n1", 1usize, 0usize),
        ("mem-bound n4", 4, 2),
        ("compute", 8, 40),
    ] {
        let kernel = UniformKernel::streaming(warps, alu);
        let run = |mode: StepMode| {
            let mut cfg = GpuConfig::scaled(4);
            cfg.step_mode = mode;
            let mut gpu = Gpu::new(cfg, &kernel);
            let t = Instant::now();
            let r = gpu.run(
                &mut FixedTuple::new(WarpTuple::new(warps, warps, 24)),
                2_000_000,
            );
            (r, t.elapsed(), gpu.fast_forward_stats())
        };
        let (ev, tev, ff) = run(StepMode::EventDriven);
        let (rf, trf, _) = run(StepMode::Reference);
        assert_eq!(ev.counters, rf.counters, "{name}: counters diverged");
        println!(
            "{name}: identical counters; event {tev:?} vs ref {trf:?} \
             ({:.1}x), ff spans {} skipped {} of {} cycles",
            trf.as_secs_f64() / tev.as_secs_f64(),
            ff.0,
            ff.1,
            ev.counters.cycles,
        );
    }
}
