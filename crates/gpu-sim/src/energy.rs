//! Event-based energy model (GPUWattch substitute).
//!
//! Total energy = Σ(event count × per-event dynamic energy)
//!              + cycles × SMs × per-SM-cycle leakage.
//!
//! Absolute units are arbitrary; the Fig. 14 experiment reports energy
//! normalised to the GTO baseline, for which only the ratios between event
//! energies and the leakage share matter. Both savings mechanisms the paper
//! names are first-order here: shorter execution dissipates less leakage,
//! and better L1 behaviour moves traffic off the L2/DRAM events.

use crate::config::EnergyConfig;
use crate::stats::Counters;

/// Energy totals broken down by component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Dynamic energy of issued ALU instructions.
    pub alu: f64,
    /// Dynamic energy of L1 lookups.
    pub l1: f64,
    /// Dynamic energy of L2 accesses.
    pub l2: f64,
    /// Dynamic energy of DRAM transfers.
    pub dram: f64,
    /// Static (leakage) energy.
    pub leakage: f64,
}

impl EnergyBreakdown {
    /// Compute the breakdown for a finished simulation.
    pub fn from_counters(c: &Counters, cfg: &EnergyConfig, sms: usize) -> Self {
        let alu_ops = c
            .instructions
            .saturating_sub(c.loads)
            .saturating_sub(c.stores);
        EnergyBreakdown {
            alu: alu_ops as f64 * cfg.alu_op,
            l1: (c.l1_accesses + c.stores) as f64 * cfg.l1_access,
            l2: c.l2_accesses as f64 * cfg.l2_access,
            dram: c.dram_accesses as f64 * cfg.dram_access,
            leakage: c.cycles as f64 * sms as f64 * cfg.leakage_per_sm_cycle,
        }
    }

    /// Total energy.
    pub fn total(&self) -> f64 {
        self.alu + self.l1 + self.l2 + self.dram + self.leakage
    }

    /// Fraction of total energy that is leakage.
    pub fn leakage_share(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.leakage / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> Counters {
        Counters {
            cycles: 1000,
            instructions: 500,
            loads: 100,
            stores: 20,
            l1_accesses: 100,
            l2_accesses: 40,
            dram_accesses: 25,
            ..Counters::default()
        }
    }

    #[test]
    fn breakdown_sums_components() {
        let cfg = EnergyConfig::default();
        let e = EnergyBreakdown::from_counters(&counters(), &cfg, 4);
        assert!((e.alu - 380.0).abs() < 1e-9);
        assert!((e.l1 - 480.0).abs() < 1e-9);
        assert!((e.l2 - 640.0).abs() < 1e-9);
        assert!((e.dram - 4000.0).abs() < 1e-9);
        assert!((e.leakage - 24_000.0).abs() < 1e-9);
        assert!((e.total() - 29_500.0).abs() < 1e-9);
    }

    #[test]
    fn faster_runs_dissipate_less_leakage() {
        let cfg = EnergyConfig::default();
        let slow = EnergyBreakdown::from_counters(&counters(), &cfg, 4);
        let mut fast_c = counters();
        fast_c.cycles = 500;
        let fast = EnergyBreakdown::from_counters(&fast_c, &cfg, 4);
        assert!(fast.total() < slow.total());
        assert_eq!(fast.alu, slow.alu);
    }

    #[test]
    fn leakage_share_is_a_fraction() {
        let cfg = EnergyConfig::default();
        let e = EnergyBreakdown::from_counters(&counters(), &cfg, 4);
        assert!(e.leakage_share() > 0.0 && e.leakage_share() < 1.0);
        let zero = EnergyBreakdown::from_counters(&Counters::default(), &cfg, 4);
        assert_eq!(zero.leakage_share(), 0.0);
    }
}
