//! The control-policy interface.
//!
//! Warp-scheduling policies (GTO, SWL, PCAL, Poise's hardware inference
//! engine, …) live outside this crate and steer the simulated GPU through
//! the [`Controller`] trait: the GPU invokes the controller once per cycle
//! with a [`ControlCtx`] exposing the windowed performance counters and the
//! per-scheduler warp-tuple controls — the same observation/actuation
//! surface the paper's hardware has.
//!
//! ## The `next_wake` contract
//!
//! Controllers additionally declare their *cadence* through
//! [`Controller::next_wake`], which the event-driven run loop uses to
//! fast-forward across spans in which no warp can issue (see the module
//! docs of [`crate::gpu`]). A controller returning `Some(w)` from
//! `next_wake(now)` promises that every `on_cycle(t)` with `now < t < w`
//! is a **pure no-op**: no tuple steering, no window resets, no logging —
//! no observable effect on the controller or the GPU. Returning `None`
//! promises that *every* future `on_cycle` is a no-op (purely static
//! policies such as [`FixedTuple`]). The default implementation returns
//! `Some(now + 1)` — "wake me every cycle" — which is always correct and
//! merely disables fast-forwarding across controller waits.
//!
//! Violating the contract cannot corrupt the simulation state machine,
//! but it desynchronises the event-driven loop from the cycle-stepped
//! reference loop; the differential test suite in `poise` exercises every
//! shipped policy against this property.

use crate::l1::PcStats;
use crate::sm::Sm;
use crate::stats::{GpuStats, WindowSample};
use crate::WarpTuple;

/// Mutable view of the GPU handed to the controller every cycle.
pub struct ControlCtx<'a> {
    /// Current cycle.
    pub cycle: u64,
    /// Maximum warps per scheduler supported by the hardware.
    pub max_warps: usize,
    /// Warps per scheduler actually launched by the running kernel
    /// (occupancy), `<= max_warps`.
    pub kernel_warps: usize,
    pub(crate) sms: &'a mut [Sm],
    pub(crate) stats: &'a mut GpuStats,
    /// True when this `on_cycle` call falls strictly *between* the
    /// controller's declared `next_wake` barriers, i.e. inside a span the
    /// controller promised to treat as a pure no-op. Debug builds of the
    /// cycle-stepped loops set this so every observation/actuation method
    /// below can assert the contract; the fast-forwarding loops never get
    /// here (they skip the span entirely), which is exactly why a
    /// violation must be caught in the stepped loops.
    pub(crate) in_declared_quiet_span: bool,
}

impl<'a> ControlCtx<'a> {
    /// Assert that the controller is not acting inside a span it declared
    /// quiet via [`Controller::next_wake`]. Debug builds only.
    #[inline]
    fn assert_awake(&self, what: &str) {
        debug_assert!(
            !self.in_declared_quiet_span,
            "next_wake contract violation: controller called ControlCtx::{what} at cycle {} \
             inside a span it declared as a pure no-op; the fast-forwarding step modes would \
             skip this cycle and desynchronise from the reference loop",
            self.cycle
        );
    }

    /// Install a warp-tuple on every scheduler of every SM.
    pub fn set_tuple_all(&mut self, t: WarpTuple) {
        self.assert_awake("set_tuple_all");
        let t = WarpTuple::new(t.n, t.p, self.kernel_warps);
        for sm in self.sms.iter_mut() {
            sm.set_tuple(t);
        }
    }

    /// The tuple currently installed (on the first scheduler; all
    /// schedulers are kept in lockstep by [`Self::set_tuple_all`]).
    pub fn current_tuple(&self) -> WarpTuple {
        self.sms
            .first()
            .and_then(|sm| sm.schedulers.first())
            .map(|s| s.tuple())
            .unwrap_or(WarpTuple { n: 1, p: 1 })
    }

    /// Sample the current counter window.
    pub fn window(&self) -> WindowSample {
        self.assert_awake("window");
        self.stats.window_sample()
    }

    /// Reset the counter window (totals are unaffected).
    pub fn reset_window(&mut self) {
        self.assert_awake("reset_window");
        self.stats.reset_window();
    }

    /// Cumulative counters since simulation start.
    pub fn totals(&self) -> &crate::stats::Counters {
        self.assert_awake("totals");
        &self.stats.total
    }

    /// Aggregate per-PC load statistics across all SMs (zeros unless
    /// per-PC tracking is enabled in the configuration).
    pub fn pc_stats(&self) -> Vec<PcStats> {
        self.assert_awake("pc_stats");
        let n = self
            .sms
            .first()
            .map(|sm| sm.l1.pc_stats().len())
            .unwrap_or(0);
        let mut agg = vec![PcStats::default(); n];
        for sm in self.sms.iter() {
            for (a, s) in agg.iter_mut().zip(sm.l1.pc_stats()) {
                a.accesses += s.accesses;
                a.hits += s.hits;
                a.intra_hits += s.intra_hits;
            }
        }
        agg
    }

    /// Reset per-PC statistics on every SM.
    pub fn reset_pc_stats(&mut self) {
        self.assert_awake("reset_pc_stats");
        for sm in self.sms.iter_mut() {
            sm.l1.reset_pc_stats();
        }
    }

    /// Force (or clear) L1 bypass for a load PC on every SM (APCM-style).
    pub fn set_bypass_pc(&mut self, pc: usize, bypass: bool) {
        self.assert_awake("set_bypass_pc");
        for sm in self.sms.iter_mut() {
            sm.l1.set_bypass_pc(pc, bypass);
        }
    }
}

/// A warp-scheduling control policy.
///
/// The GPU calls [`Controller::on_kernel_start`] once before the first
/// cycle and [`Controller::on_cycle`] after every simulated cycle.
pub trait Controller {
    /// Invoked once when a kernel launches.
    fn on_kernel_start(&mut self, _ctx: &mut ControlCtx) {}

    /// Invoked after every simulated cycle.
    fn on_cycle(&mut self, _ctx: &mut ControlCtx) {}

    /// Invoked when the kernel drains or the cycle budget expires.
    fn on_kernel_end(&mut self, _ctx: &mut ControlCtx) {}

    /// The next cycle at which [`Controller::on_cycle`] may act, given the
    /// current cycle `now` (for which `on_cycle` has already run).
    ///
    /// See the module docs for the full contract. `Some(w)`: every
    /// `on_cycle(t)` with `now < t < w` is a no-op. `None`: all future
    /// `on_cycle` calls are no-ops. The conservative default wakes every
    /// cycle, which disables fast-forwarding across controller waits but
    /// is always correct.
    fn next_wake(&self, now: u64) -> Option<u64> {
        Some(now.saturating_add(1))
    }

    /// Serialize the controller's *mutable* state so a snapshot taken at a
    /// barrier can later reconstruct the policy mid-flight (configuration
    /// is rebuilt from the spec, not saved). The format is opaque to the
    /// GPU: whatever [`Controller::load_state`] of the same policy accepts.
    /// Stateless policies keep the default empty string.
    fn save_state(&self) -> String {
        String::new()
    }

    /// Restore state produced by [`Controller::save_state`] on a freshly
    /// constructed controller of the same policy and configuration.
    /// Returns `false` (leaving the controller untouched) if the state is
    /// unrecognised — callers then fall back to re-running from cold.
    /// Implementations must be all-or-nothing: parse everything before
    /// mutating anything.
    fn load_state(&mut self, state: &str) -> bool {
        state.is_empty()
    }
}

impl<C: Controller + ?Sized> Controller for Box<C> {
    fn on_kernel_start(&mut self, ctx: &mut ControlCtx) {
        (**self).on_kernel_start(ctx)
    }

    fn on_cycle(&mut self, ctx: &mut ControlCtx) {
        (**self).on_cycle(ctx)
    }

    fn on_kernel_end(&mut self, ctx: &mut ControlCtx) {
        (**self).on_kernel_end(ctx)
    }

    fn next_wake(&self, now: u64) -> Option<u64> {
        (**self).next_wake(now)
    }

    fn save_state(&self) -> String {
        (**self).save_state()
    }

    fn load_state(&mut self, state: &str) -> bool {
        (**self).load_state(state)
    }
}

/// The trivial static policy: install one tuple at kernel start and keep it.
///
/// `FixedTuple::max()` is the paper's GTO baseline (maximum warps, all
/// polluting); other fixed tuples implement SWL / Static-Best style
/// configurations chosen offline.
#[derive(Debug, Clone, Copy)]
pub struct FixedTuple {
    tuple: Option<WarpTuple>,
}

impl FixedTuple {
    /// Fix the given tuple for the whole kernel.
    pub fn new(t: WarpTuple) -> Self {
        FixedTuple { tuple: Some(t) }
    }

    /// The GTO baseline: maximum warps, all polluting.
    pub fn max() -> Self {
        FixedTuple { tuple: None }
    }
}

impl Controller for FixedTuple {
    fn on_kernel_start(&mut self, ctx: &mut ControlCtx) {
        let t = self
            .tuple
            .unwrap_or_else(|| WarpTuple::max(ctx.kernel_warps));
        ctx.set_tuple_all(t);
    }

    fn next_wake(&self, _now: u64) -> Option<u64> {
        // Purely static: `on_cycle` never does anything.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::instruction::UniformKernel;
    use crate::Gpu;

    #[test]
    fn fixed_tuple_installs_on_start() {
        let cfg = GpuConfig::scaled(1);
        let kernel = UniformKernel::streaming(8, 2);
        let mut gpu = Gpu::new(cfg, &kernel);
        let mut ctrl = FixedTuple::new(WarpTuple::new(3, 2, 8));
        let res = gpu.run(&mut ctrl, 100);
        assert!(res.counters.instructions > 0);
        // Only 3 warps per scheduler may have issued — indirectly checked
        // via the Sm test; here confirm the tuple stuck.
        assert_eq!(gpu.sms()[0].schedulers[0].tuple(), WarpTuple { n: 3, p: 2 });
    }

    #[test]
    fn fixed_max_uses_kernel_occupancy() {
        let cfg = GpuConfig::scaled(1);
        let kernel = UniformKernel::streaming(6, 2);
        let mut gpu = Gpu::new(cfg, &kernel);
        let mut ctrl = FixedTuple::max();
        gpu.run(&mut ctrl, 10);
        assert_eq!(gpu.sms()[0].schedulers[0].tuple(), WarpTuple { n: 6, p: 6 });
    }
}
