//! The shared memory system below the L1s: crossbar, banked L2, DRAM.
//!
//! Bandwidth-limited resources (L2 banks, DRAM partitions) are modelled as
//! latency-rate servers: each keeps a `next_free` timestamp and a request
//! arriving at time `t` starts service at `max(t, next_free)`, advancing
//! `next_free` by the service interval. Queueing delay — and therefore the
//! congestion-dependent average memory latency that the paper's `Lo` and
//! `L'` terms capture — emerges from the gap between arrival and service
//! times under load.
//!
//! ## Per-SM request ports and the conservative horizon
//!
//! Because the servers keep mutable shared state (`next_free` timestamps,
//! L2 tags), the *order* in which requests are applied matters: the
//! cycle-stepped reference loop applies them in `(cycle, SM, scheduler)`
//! order, and every other step mode must reproduce exactly that order to
//! stay bit-identical. When SMs run on decoupled local clocks
//! ([`StepMode::PerSm`]), an SM that is ahead cannot apply its requests
//! immediately — a lagging SM might still issue an earlier-cycle request.
//!
//! The memory system therefore supports a **deferred** mode
//! ([`MemSystem::set_deferred`]) in which [`MemSystem::read`] /
//! [`MemSystem::write`] only *enqueue* the request on the issuing SM's
//! private port (FIFO per SM, timestamps nondecreasing by construction).
//! [`MemSystem::apply_ready`] later drains the ports in global
//! `(cycle, SM)` order, but only up to the caller-supplied *frontier* —
//! the smallest `(local clock, SM id)` key over all SMs still able to
//! issue — so no request is ever serviced before a possibly-earlier one.
//!
//! Deferral is what creates lookahead for the issuing SM: a read issued at
//! cycle `t` cannot possibly fill before `t +`
//! [`MemSystem::l2_hit_round_trip`] (crossbar + L2 + crossbar, the
//! uncontended minimum), so the SM may keep executing cycles strictly
//! below that bound even while the request's actual completion time is
//! still unknown. [`MemSystem::safe_horizon`] exposes exactly this bound:
//! the first cycle the SM may **not** execute until its oldest unresolved
//! read has been applied. Writes produce no reply and never bound their
//! issuer; they only hold their place in the global application order.
//!
//! [`StepMode::PerSm`]: crate::config::StepMode::PerSm

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::cache::{Lookup, SetAssocCache};
use crate::config::GpuConfig;
use crate::sm::{EventSink, SmEvent};
use crate::stats::GpuStats;

#[derive(Debug)]
pub(crate) struct L2Bank {
    pub(crate) tags: SetAssocCache,
    pub(crate) next_free: u64,
}

#[derive(Debug)]
pub(crate) struct Partition {
    pub(crate) next_free: u64,
}

/// One memory request parked on a per-SM port, waiting for the global
/// application order to reach it.
#[derive(Debug, Clone, Copy)]
enum PendingReq {
    /// A primary-miss read; the fill is delivered to the MSHR entry.
    Read { line: u64, mshr: usize },
    /// A write-through store (no reply).
    Write { line: u64 },
}

/// The private request port of one SM: issue-order FIFO with
/// nondecreasing timestamps.
///
/// A port is the *only* memory-system state an SM's decoupled advance
/// touches, which is what makes [`StepMode::ParallelSm`] sound: worker
/// threads hold disjoint `&mut Port`s (via [`MemSystem::ports_mut`]) and
/// append through [`PortRequester`], while the shared service state (bank
/// queues, L2 tags, the front heap) is only ever read or written by the
/// sequential [`MemSystem::apply_ready`] reduction between rounds.
///
/// [`StepMode::ParallelSm`]: crate::config::StepMode::ParallelSm
#[derive(Debug, Default)]
pub(crate) struct Port {
    queue: VecDeque<(u64, PendingReq)>,
    /// Issue cycles of unresolved reads only (front = oldest), for
    /// [`MemSystem::safe_horizon`] in O(1).
    reads: VecDeque<u64>,
}

impl Port {
    /// Whether the port holds no parked requests.
    pub(crate) fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Issue cycle of the port's globally-oldest parked request.
    pub(crate) fn front_at(&self) -> Option<u64> {
        self.queue.front().map(|&(at, _)| at)
    }

    /// Issue cycle of the oldest unresolved *read* (writes never bound
    /// their issuer); the lane-local equivalent of
    /// [`MemSystem::safe_horizon`]'s numerator.
    pub(crate) fn next_read_at(&self) -> Option<u64> {
        self.reads.front().copied()
    }
}

/// The memory-request surface an SM issues through — implemented by
/// [`MemSystem`] itself (immediate or deferred, for the single-threaded
/// loops) and by [`PortRequester`] (append-only onto one lane-held port,
/// for the decoupled loops). Generic at the call sites so both paths
/// monomorphize: the per-issue hot path pays no virtual dispatch.
pub trait MemRequester {
    /// Issue a read of `line` by SM `sm` at time `now` on behalf of MSHR
    /// entry `mshr`; the fill event is scheduled through `events` (possibly
    /// later, once the request is applied in global order).
    fn read(
        &mut self,
        sm: usize,
        line: u64,
        now: u64,
        mshr: usize,
        events: &mut dyn EventSink,
        stats: &mut GpuStats,
    );

    /// Issue a write of `line` by SM `sm` at time `now` (no reply).
    fn write(&mut self, sm: usize, line: u64, now: u64, stats: &mut GpuStats);
}

impl MemRequester for MemSystem {
    fn read(
        &mut self,
        sm: usize,
        line: u64,
        now: u64,
        mshr: usize,
        events: &mut dyn EventSink,
        stats: &mut GpuStats,
    ) {
        MemSystem::read(self, sm, line, now, mshr, events, stats);
    }

    fn write(&mut self, sm: usize, line: u64, now: u64, stats: &mut GpuStats) {
        MemSystem::write(self, sm, line, now, stats);
    }
}

/// A [`MemRequester`] over one SM's own port: appends requests without
/// touching any shared [`MemSystem`] state (in particular not the front
/// heap, which the owning loop reindexes sequentially after the advance).
/// This is what a decoupled SM advance — single-threaded laggard or
/// parallel worker lane — issues through.
pub(crate) struct PortRequester<'a> {
    /// The SM that owns the port (debug-asserted on every request).
    pub(crate) sm: usize,
    /// The port itself, disjointly borrowed from [`MemSystem::ports_mut`].
    pub(crate) port: &'a mut Port,
}

impl MemRequester for PortRequester<'_> {
    fn read(
        &mut self,
        sm: usize,
        line: u64,
        now: u64,
        mshr: usize,
        _events: &mut dyn EventSink,
        _stats: &mut GpuStats,
    ) {
        debug_assert_eq!(sm, self.sm, "lanes only issue on their own port");
        debug_assert!(self.port.queue.back().is_none_or(|&(at, _)| at <= now));
        self.port
            .queue
            .push_back((now, PendingReq::Read { line, mshr }));
        self.port.reads.push_back(now);
    }

    fn write(&mut self, sm: usize, line: u64, now: u64, _stats: &mut GpuStats) {
        debug_assert_eq!(sm, self.sm, "lanes only issue on their own port");
        debug_assert!(self.port.queue.back().is_none_or(|&(at, _)| at <= now));
        self.port.queue.push_back((now, PendingReq::Write { line }));
    }
}

/// The GPU-wide shared memory system.
#[derive(Debug)]
pub struct MemSystem {
    pub(crate) banks: Vec<L2Bank>,
    pub(crate) partitions: Vec<Partition>,
    pub(crate) xbar_latency: u64,
    pub(crate) l2_latency: u64,
    pub(crate) l2_service: u64,
    pub(crate) dram_latency: u64,
    pub(crate) dram_service: u64,
    /// Deferred mode: requests park on per-SM ports until applied in
    /// global order (used by the per-SM decoupled run loop).
    pub(crate) deferred: bool,
    pub(crate) ports: Vec<Port>,
    /// Min-heap holding the front `(cycle, SM)` key of every non-empty
    /// port — exactly one entry per such port — so [`MemSystem::apply_ready`]
    /// pays O(1) when nothing is due and O(log SMs) per applied request
    /// instead of rescanning every port.
    pub(crate) front_heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl MemSystem {
    /// Build the memory system from the GPU configuration. Starts in
    /// immediate mode; the per-SM run loop switches it to deferred via
    /// [`MemSystem::set_deferred`].
    pub fn new(cfg: &GpuConfig) -> Self {
        MemSystem {
            banks: (0..cfg.l2.banks)
                .map(|_| L2Bank {
                    tags: SetAssocCache::new(cfg.l2.geometry),
                    next_free: 0,
                })
                .collect(),
            partitions: (0..cfg.dram.partitions)
                .map(|_| Partition { next_free: 0 })
                .collect(),
            xbar_latency: cfg.xbar_latency,
            l2_latency: cfg.l2.latency,
            l2_service: cfg.l2.service_interval,
            dram_latency: cfg.dram.latency,
            dram_service: cfg.dram.service_interval,
            deferred: false,
            ports: (0..cfg.sms).map(|_| Port::default()).collect(),
            front_heap: BinaryHeap::new(),
        }
    }

    /// Switch between immediate servicing and per-SM deferred ports. Must
    /// only be flipped while no requests are pending.
    pub fn set_deferred(&mut self, deferred: bool) {
        debug_assert_eq!(self.pending_requests(), 0);
        self.deferred = deferred;
    }

    /// Requests parked on the per-SM ports, not yet applied.
    pub fn pending_requests(&self) -> usize {
        self.ports.iter().map(|p| p.queue.len()).sum()
    }

    /// Issue a read of `line` by SM `sm` at time `now` on behalf of MSHR
    /// entry `mshr`. In immediate mode the request is serviced on the spot
    /// and the fill event is scheduled through `events`; in deferred mode
    /// it parks on the SM's port until [`MemSystem::apply_ready`] reaches
    /// it in global order.
    pub fn read(
        &mut self,
        sm: usize,
        line: u64,
        now: u64,
        mshr: usize,
        events: &mut dyn EventSink,
        stats: &mut GpuStats,
    ) {
        if self.deferred {
            let port = &mut self.ports[sm];
            debug_assert!(port.queue.back().is_none_or(|&(at, _)| at <= now));
            if port.queue.is_empty() {
                self.front_heap.push(Reverse((now, sm)));
            }
            port.queue.push_back((now, PendingReq::Read { line, mshr }));
            port.reads.push_back(now);
        } else {
            let ready = self.service_read(line, now, stats);
            events.schedule(ready, sm, SmEvent::Fill { mshr });
        }
    }

    /// Issue a write of `line` by SM `sm` at time `now`. Writes consume L2
    /// and (on L2 miss) DRAM bandwidth but produce no reply; L2 is
    /// write-through no-allocate for this model.
    pub fn write(&mut self, sm: usize, line: u64, now: u64, stats: &mut GpuStats) {
        if self.deferred {
            let port = &mut self.ports[sm];
            debug_assert!(port.queue.back().is_none_or(|&(at, _)| at <= now));
            if port.queue.is_empty() {
                self.front_heap.push(Reverse((now, sm)));
            }
            port.queue.push_back((now, PendingReq::Write { line }));
        } else {
            self.service_write(line, now, stats);
        }
    }

    /// The first cycle SM `sm` (whose local clock is `now`) may **not**
    /// execute before resynchronising: the earliest possible fill
    /// completion of its oldest unresolved read, `issue +`
    /// [`MemSystem::l2_hit_round_trip`]. `u64::MAX` when the SM has no
    /// unresolved reads (writes never bound their issuer).
    pub fn safe_horizon(&self, sm: usize, now: u64) -> u64 {
        match self.ports[sm].reads.front() {
            Some(&at) => {
                debug_assert!(at < now, "unresolved read from a cycle not yet executed");
                at + self.min_fill_latency()
            }
            None => u64::MAX,
        }
    }

    /// Apply every parked request strictly ordered before `frontier` —
    /// the minimum `(local clock, SM id)` key over all SMs that may still
    /// issue (`u64::MAX` clock for drained SMs) — in global
    /// `(cycle, SM id, issue order)` order, scheduling fill events for
    /// reads through `events`. This reproduces the exact service order of
    /// the cycle-stepped reference loop.
    pub fn apply_ready(
        &mut self,
        frontier: (u64, usize),
        events: &mut dyn EventSink,
        stats: &mut GpuStats,
    ) {
        // The heap top is the globally oldest parked request; O(1) when
        // nothing is ordered before the frontier.
        while let Some(&Reverse((at, sm))) = self.front_heap.peek() {
            if (at, sm) >= frontier {
                return;
            }
            self.front_heap.pop();
            let (t, req) = self.ports[sm]
                .queue
                .pop_front()
                .expect("heap tracks fronts");
            debug_assert_eq!(t, at);
            if let Some(&(next_at, _)) = self.ports[sm].queue.front() {
                self.front_heap.push(Reverse((next_at, sm)));
            }
            match req {
                PendingReq::Read { line, mshr } => {
                    self.ports[sm].reads.pop_front();
                    let ready = self.service_read(line, at, stats);
                    events.schedule(ready, sm, SmEvent::Fill { mshr });
                }
                PendingReq::Write { line } => self.service_write(line, at, stats),
            }
        }
    }

    /// Service a read at time `now`; returns the cycle at which the fill
    /// arrives back at the requesting SM.
    fn service_read(&mut self, line: u64, now: u64, stats: &mut GpuStats) -> u64 {
        let arrive_l2 = now + self.xbar_latency;
        let bank_idx = (line % self.banks.len() as u64) as usize;
        let bank = &mut self.banks[bank_idx];
        let start = arrive_l2.max(bank.next_free);
        bank.next_free = start + self.l2_service;
        stats.bump(|c| c.l2_accesses += 1);
        let lookup = bank.tags.access(line);
        let data_ready = match lookup {
            Lookup::Hit { .. } => {
                stats.bump(|c| c.l2_hits += 1);
                start + self.l2_latency
            }
            // A pending-hit cannot occur in this model (fills are applied
            // eagerly), but treat it as a hit for robustness.
            Lookup::PendingHit { .. } => start + self.l2_latency,
            Lookup::Miss => {
                let t = self.dram_read(line, start + self.l2_latency, stats);
                self.banks[bank_idx].tags.insert_missing(line);
                t
            }
        };
        data_ready + self.xbar_latency
    }

    /// Service a write at time `now`.
    fn service_write(&mut self, line: u64, now: u64, stats: &mut GpuStats) {
        let arrive_l2 = now + self.xbar_latency;
        let bank_idx = (line % self.banks.len() as u64) as usize;
        let bank = &mut self.banks[bank_idx];
        let start = arrive_l2.max(bank.next_free);
        bank.next_free = start + self.l2_service;
        stats.bump(|c| c.l2_accesses += 1);
        match bank.tags.access(line) {
            Lookup::Hit { .. } | Lookup::PendingHit { .. } => {
                stats.bump(|c| c.l2_hits += 1);
            }
            Lookup::Miss => {
                self.dram_read(line, start + self.l2_latency, stats);
            }
        }
    }

    fn dram_read(&mut self, line: u64, at: u64, stats: &mut GpuStats) -> u64 {
        let part_idx = (line % self.partitions.len() as u64) as usize;
        let part = &mut self.partitions[part_idx];
        let start = at.max(part.next_free);
        part.next_free = start + self.dram_service;
        stats.bump(|c| c.dram_accesses += 1);
        start + self.dram_latency
    }

    /// The per-SM ports as a slice, so the decoupled loops can hand each
    /// advancing lane a disjoint `&mut` to its own port (the borrow
    /// checker's view of "SM advances only touch SM-private memory state").
    pub(crate) fn ports_mut(&mut self) -> &mut [Port] {
        &mut self.ports
    }

    /// Re-register SM `sm`'s port in the front heap after a decoupled
    /// advance filled it through a [`PortRequester`] (which deliberately
    /// does not touch the heap). Caller contract: the port was **empty**
    /// (hence untracked) when the advance started — a port that was
    /// already non-empty kept its valid heap entry, because advances only
    /// append behind an unchanged front.
    pub(crate) fn reindex_port(&mut self, sm: usize) {
        if let Some(at) = self.ports[sm].front_at() {
            self.front_heap.push(Reverse((at, sm)));
        }
    }

    /// Uncontended round-trip latency of an L2 hit, for reference. Also
    /// the lookahead of the per-SM horizon: no read can fill sooner.
    pub fn l2_hit_round_trip(&self) -> u64 {
        2 * self.xbar_latency + self.l2_latency
    }

    /// The horizon lookahead: at least one cycle even for degenerate
    /// zero-latency configurations, so decoupled SMs always make progress.
    /// `safe_horizon(sm) = oldest unresolved read + min_fill_latency`;
    /// public so decoupled lanes can compute the same bound from their own
    /// port without reaching into shared state.
    pub fn min_fill_latency(&self) -> u64 {
        self.l2_hit_round_trip().max(1)
    }

    /// Uncontended round-trip latency of a DRAM access, for reference.
    pub fn dram_round_trip(&self) -> u64 {
        2 * self.xbar_latency + self.l2_latency + self.dram_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct VecSink(Vec<(u64, usize, SmEvent)>);
    impl EventSink for VecSink {
        fn schedule(&mut self, at: u64, sm: usize, ev: SmEvent) {
            self.0.push((at, sm, ev));
        }
    }

    fn memsys() -> (MemSystem, GpuStats) {
        let cfg = GpuConfig::scaled(2);
        (MemSystem::new(&cfg), GpuStats::new())
    }

    /// Immediate-mode read returning the fill time (as the pre-port API
    /// did), for the service-model tests.
    fn read_at(m: &mut MemSystem, line: u64, now: u64, st: &mut GpuStats) -> u64 {
        let mut sink = VecSink(Vec::new());
        m.read(0, line, now, 0, &mut sink, st);
        sink.0[0].0
    }

    #[test]
    fn first_read_misses_l2_and_goes_to_dram() {
        let (mut m, mut st) = memsys();
        let t = read_at(&mut m, 1234, 0, &mut st);
        assert_eq!(t, m.dram_round_trip());
        assert_eq!(st.total.l2_accesses, 1);
        assert_eq!(st.total.l2_hits, 0);
        assert_eq!(st.total.dram_accesses, 1);
    }

    #[test]
    fn second_read_hits_l2() {
        let (mut m, mut st) = memsys();
        let _ = read_at(&mut m, 1234, 0, &mut st);
        let t = read_at(&mut m, 1234, 10_000, &mut st);
        assert_eq!(t, 10_000 + m.l2_hit_round_trip());
        assert_eq!(st.total.l2_hits, 1);
        assert_eq!(st.total.dram_accesses, 1);
    }

    #[test]
    fn bank_contention_adds_queueing_delay() {
        let (mut m, mut st) = memsys();
        // Two reads to the same bank at the same instant: the second is
        // delayed by the bank service interval.
        let banks = 6; // scaled(2)
        let l0 = 0u64;
        let l1 = banks as u64; // same bank, different line
        let t0 = read_at(&mut m, l0, 0, &mut st);
        let t1 = read_at(&mut m, l1, 0, &mut st);
        assert!(t1 > t0, "contended access must finish later");
    }

    #[test]
    fn dram_bandwidth_saturates_under_burst() {
        let (mut m, mut st) = memsys();
        // Fire a burst of unique lines mapping to one partition; the k-th
        // completion should be pushed out by ~k * dram service interval.
        let parts = m.partitions.len() as u64;
        let banks = m.banks.len() as u64;
        let lcm = parts * banks;
        let mut last = 0;
        for k in 0..64u64 {
            let line = k * lcm; // bank 0, partition 0 every time
            let t = read_at(&mut m, line, 0, &mut st);
            assert!(t >= last);
            last = t;
        }
        let uncontended = m.dram_round_trip();
        assert!(
            last > uncontended + 50 * 12,
            "burst must queue: got {last}, uncontended {uncontended}"
        );
    }

    #[test]
    fn writes_consume_bandwidth_but_do_not_allocate() {
        let (mut m, mut st) = memsys();
        m.write(0, 555, 0, &mut st);
        assert_eq!(st.total.dram_accesses, 1);
        // Line was not allocated in L2 by the write.
        let t = read_at(&mut m, 555, 10_000, &mut st);
        assert_eq!(t, 10_000 + m.dram_round_trip());
    }

    #[test]
    fn deferred_requests_park_until_the_frontier_passes() {
        let (mut m, mut st) = memsys();
        m.set_deferred(true);
        let mut sink = VecSink(Vec::new());
        // SM 1 runs ahead and issues at cycle 10; SM 0 lags at cycle 4.
        m.read(1, 777, 10, 3, &mut sink, &mut st);
        assert_eq!(m.pending_requests(), 1);
        assert_eq!(st.total.l2_accesses, 0, "deferred reads touch no state");
        // Frontier below the request: nothing may be applied yet.
        m.apply_ready((4, 0), &mut sink, &mut st);
        assert_eq!(m.pending_requests(), 1);
        assert!(sink.0.is_empty());
        // SM 0 passes cycle 10: the request becomes safe.
        m.apply_ready((11, 0), &mut sink, &mut st);
        assert_eq!(m.pending_requests(), 0);
        assert_eq!(sink.0.len(), 1);
        let (at, sm, ev) = sink.0[0];
        assert_eq!(sm, 1);
        assert_eq!(ev, SmEvent::Fill { mshr: 3 });
        assert_eq!(at, 10 + m.dram_round_trip());
    }

    #[test]
    fn apply_order_matches_the_reference_loop() {
        // Same-cycle requests from different SMs must be serviced in SM
        // order, exactly as the stepped loop calls them — observable via
        // bank queueing on a shared bank.
        let (mut m_def, mut st_def) = memsys();
        let (mut m_imm, mut st_imm) = memsys();
        let banks = m_imm.banks.len() as u64;
        let mut imm = VecSink(Vec::new());
        // Reference order: (cycle 5, SM 0) then (cycle 5, SM 1).
        m_imm.read(0, 0, 5, 0, &mut imm, &mut st_imm);
        m_imm.read(1, banks, 5, 1, &mut imm, &mut st_imm);
        // Deferred, enqueued out of SM order (SM 1 advanced first).
        m_def.set_deferred(true);
        let mut def = VecSink(Vec::new());
        m_def.read(1, banks, 5, 1, &mut def, &mut st_def);
        m_def.read(0, 0, 5, 0, &mut def, &mut st_def);
        m_def.apply_ready((u64::MAX, 0), &mut def, &mut st_def);
        let fill_of =
            |v: &VecSink, sm: usize| v.0.iter().find(|&&(_, s, _)| s == sm).expect("fill").0;
        assert_eq!(fill_of(&imm, 0), fill_of(&def, 0));
        assert_eq!(fill_of(&imm, 1), fill_of(&def, 1));
    }

    #[test]
    fn safe_horizon_tracks_oldest_unresolved_read() {
        let (mut m, mut st) = memsys();
        m.set_deferred(true);
        let mut sink = VecSink(Vec::new());
        assert_eq!(m.safe_horizon(0, 50), u64::MAX);
        m.read(0, 1, 7, 0, &mut sink, &mut st);
        m.read(0, 2, 9, 1, &mut sink, &mut st);
        assert_eq!(m.safe_horizon(0, 10), 7 + m.l2_hit_round_trip());
        // Writes never bound their issuer.
        m.write(1, 3, 2, &mut st);
        assert_eq!(m.safe_horizon(1, 5), u64::MAX);
        // Applying the oldest read moves the horizon to the next one.
        m.apply_ready((8, 0), &mut sink, &mut st);
        assert_eq!(m.safe_horizon(0, 10), 9 + m.l2_hit_round_trip());
    }
}
