//! The shared memory system below the L1s: crossbar, banked L2, DRAM.
//!
//! Bandwidth-limited resources (L2 banks, DRAM partitions) are modelled as
//! latency-rate servers: each keeps a `next_free` timestamp and a request
//! arriving at time `t` starts service at `max(t, next_free)`, advancing
//! `next_free` by the service interval. Queueing delay — and therefore the
//! congestion-dependent average memory latency that the paper's `Lo` and
//! `L'` terms capture — emerges from the gap between arrival and service
//! times under load.

use crate::cache::{Lookup, SetAssocCache};
use crate::config::GpuConfig;
use crate::stats::GpuStats;

#[derive(Debug)]
struct L2Bank {
    tags: SetAssocCache,
    next_free: u64,
}

#[derive(Debug)]
struct Partition {
    next_free: u64,
}

/// The GPU-wide shared memory system.
#[derive(Debug)]
pub struct MemSystem {
    banks: Vec<L2Bank>,
    partitions: Vec<Partition>,
    xbar_latency: u64,
    l2_latency: u64,
    l2_service: u64,
    dram_latency: u64,
    dram_service: u64,
}

impl MemSystem {
    /// Build the memory system from the GPU configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        MemSystem {
            banks: (0..cfg.l2.banks)
                .map(|_| L2Bank {
                    tags: SetAssocCache::new(cfg.l2.geometry),
                    next_free: 0,
                })
                .collect(),
            partitions: (0..cfg.dram.partitions)
                .map(|_| Partition { next_free: 0 })
                .collect(),
            xbar_latency: cfg.xbar_latency,
            l2_latency: cfg.l2.latency,
            l2_service: cfg.l2.service_interval,
            dram_latency: cfg.dram.latency,
            dram_service: cfg.dram.service_interval,
        }
    }

    /// Issue a read for `line` at time `now`; returns the cycle at which the
    /// fill arrives back at the requesting SM.
    pub fn read(&mut self, line: u64, now: u64, stats: &mut GpuStats) -> u64 {
        let arrive_l2 = now + self.xbar_latency;
        let bank_idx = (line % self.banks.len() as u64) as usize;
        let bank = &mut self.banks[bank_idx];
        let start = arrive_l2.max(bank.next_free);
        bank.next_free = start + self.l2_service;
        stats.bump(|c| c.l2_accesses += 1);
        let lookup = bank.tags.access(line);
        let data_ready = match lookup {
            Lookup::Hit { .. } => {
                stats.bump(|c| c.l2_hits += 1);
                start + self.l2_latency
            }
            // A pending-hit cannot occur in this model (fills are applied
            // eagerly), but treat it as a hit for robustness.
            Lookup::PendingHit { .. } => start + self.l2_latency,
            Lookup::Miss => {
                let t = self.dram_read(line, start + self.l2_latency, stats);
                self.banks[bank_idx].tags.insert(line);
                t
            }
        };
        data_ready + self.xbar_latency
    }

    /// Issue a write for `line` at time `now`. Writes consume L2 and (on L2
    /// miss) DRAM bandwidth but produce no reply; L2 is write-through
    /// no-allocate for this model.
    pub fn write(&mut self, line: u64, now: u64, stats: &mut GpuStats) {
        let arrive_l2 = now + self.xbar_latency;
        let bank_idx = (line % self.banks.len() as u64) as usize;
        let bank = &mut self.banks[bank_idx];
        let start = arrive_l2.max(bank.next_free);
        bank.next_free = start + self.l2_service;
        stats.bump(|c| c.l2_accesses += 1);
        match bank.tags.access(line) {
            Lookup::Hit { .. } | Lookup::PendingHit { .. } => {
                stats.bump(|c| c.l2_hits += 1);
            }
            Lookup::Miss => {
                self.dram_read(line, start + self.l2_latency, stats);
            }
        }
    }

    fn dram_read(&mut self, line: u64, at: u64, stats: &mut GpuStats) -> u64 {
        let part_idx = (line % self.partitions.len() as u64) as usize;
        let part = &mut self.partitions[part_idx];
        let start = at.max(part.next_free);
        part.next_free = start + self.dram_service;
        stats.bump(|c| c.dram_accesses += 1);
        start + self.dram_latency
    }

    /// Uncontended round-trip latency of an L2 hit, for reference.
    pub fn l2_hit_round_trip(&self) -> u64 {
        2 * self.xbar_latency + self.l2_latency
    }

    /// Uncontended round-trip latency of a DRAM access, for reference.
    pub fn dram_round_trip(&self) -> u64 {
        2 * self.xbar_latency + self.l2_latency + self.dram_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memsys() -> (MemSystem, GpuStats) {
        let cfg = GpuConfig::scaled(2);
        (MemSystem::new(&cfg), GpuStats::new())
    }

    #[test]
    fn first_read_misses_l2_and_goes_to_dram() {
        let (mut m, mut st) = memsys();
        let t = m.read(1234, 0, &mut st);
        assert_eq!(t, m.dram_round_trip());
        assert_eq!(st.total.l2_accesses, 1);
        assert_eq!(st.total.l2_hits, 0);
        assert_eq!(st.total.dram_accesses, 1);
    }

    #[test]
    fn second_read_hits_l2() {
        let (mut m, mut st) = memsys();
        let _ = m.read(1234, 0, &mut st);
        let t = m.read(1234, 10_000, &mut st);
        assert_eq!(t, 10_000 + m.l2_hit_round_trip());
        assert_eq!(st.total.l2_hits, 1);
        assert_eq!(st.total.dram_accesses, 1);
    }

    #[test]
    fn bank_contention_adds_queueing_delay() {
        let (mut m, mut st) = memsys();
        // Two reads to the same bank at the same instant: the second is
        // delayed by the bank service interval.
        let banks = 6; // scaled(2)
        let l0 = 0u64;
        let l1 = banks as u64; // same bank, different line
        let t0 = m.read(l0, 0, &mut st);
        let t1 = m.read(l1, 0, &mut st);
        assert!(t1 > t0, "contended access must finish later");
    }

    #[test]
    fn dram_bandwidth_saturates_under_burst() {
        let (mut m, mut st) = memsys();
        // Fire a burst of unique lines mapping to one partition; the k-th
        // completion should be pushed out by ~k * dram service interval.
        let parts = m.partitions.len() as u64;
        let banks = m.banks.len() as u64;
        let lcm = parts * banks;
        let mut last = 0;
        for k in 0..64u64 {
            let line = k * lcm; // bank 0, partition 0 every time
            let t = m.read(line, 0, &mut st);
            assert!(t >= last);
            last = t;
        }
        let uncontended = m.dram_round_trip();
        assert!(
            last > uncontended + 50 * 12,
            "burst must queue: got {last}, uncontended {uncontended}"
        );
    }

    #[test]
    fn writes_consume_bandwidth_but_do_not_allocate() {
        let (mut m, mut st) = memsys();
        m.write(555, 0, &mut st);
        assert_eq!(st.total.dram_accesses, 1);
        // Line was not allocated in L2 by the write.
        let t = m.read(555, 10_000, &mut st);
        assert_eq!(t, 10_000 + m.dram_round_trip());
    }
}
