//! Performance counters.
//!
//! The simulator maintains two copies of every counter: a cumulative
//! `total` and a resettable `window`. Control policies (and in particular
//! Poise's hardware inference engine) sample the window over fixed-length
//! intervals — exactly how the paper's seven 32-bit per-SM performance
//! counters are used — and reset it between samples.

/// Raw event counters, aggregated over the whole GPU.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Counters {
    /// Cycles elapsed (advanced once per GPU cycle).
    pub cycles: u64,
    /// Instructions issued (all kinds).
    pub instructions: u64,
    /// Global load instructions issued.
    pub loads: u64,
    /// Global store instructions issued.
    pub stores: u64,
    /// L1 data cache lookups (loads only).
    pub l1_accesses: u64,
    /// L1 load hits.
    pub l1_hits: u64,
    /// L1 load hits whose line was previously touched by the same warp.
    pub l1_intra_hits: u64,
    /// L1 load hits on lines touched only by other warps.
    pub l1_inter_hits: u64,
    /// L1 hits experienced by cache-polluting warps.
    pub l1_hits_polluting: u64,
    /// L1 lookups by cache-polluting warps.
    pub l1_accesses_polluting: u64,
    /// L1 hits experienced by non-polluting warps.
    pub l1_hits_non_polluting: u64,
    /// L1 lookups by non-polluting warps.
    pub l1_accesses_non_polluting: u64,
    /// Completed L1 miss requests (counted at fill time, merged requests
    /// counted individually).
    pub l1_misses_completed: u64,
    /// Sum over completed misses of (fill time − issue time), for AML.
    pub miss_latency_sum: u64,
    /// Load requests rejected for structural reasons (MSHRs full, merge
    /// limit, replacement-unavailable).
    pub l1_rejects: u64,
    /// MSHR allocations (primary misses).
    pub mshr_allocations: u64,
    /// Requests merged into an existing MSHR entry (secondary misses).
    pub mshr_merges: u64,
    /// L2 lookups.
    pub l2_accesses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// DRAM line transfers.
    pub dram_accesses: u64,
    /// Scheduler-cycles in which an instruction was issued.
    pub busy_scheduler_cycles: u64,
    /// Scheduler-cycles in which no instruction could be issued while live
    /// warps remained.
    pub stall_scheduler_cycles: u64,
    /// Sum of per-load "instructions since previous load" gaps, for In.
    pub in_gap_sum: u64,
    /// Number of gaps accumulated into `in_gap_sum`.
    pub in_gap_count: u64,
    /// Sum of observed per-warp LRU stack distances (reuse distances), in
    /// lines; only accumulated when reuse tracking is enabled.
    pub reuse_distance_sum: u64,
    /// Number of reuses accumulated into `reuse_distance_sum`.
    pub reuse_distance_count: u64,
}

impl Counters {
    /// Instructions per cycle over the counted interval.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Net L1 load hit rate (`ho` / `h'` in the paper, depending on the
    /// warp-tuple active while counting).
    pub fn l1_hit_rate(&self) -> f64 {
        ratio(self.l1_hits, self.l1_accesses)
    }

    /// Intra-warp hit rate (`eta` in the paper): intra-warp hits over all
    /// L1 lookups.
    pub fn intra_warp_hit_rate(&self) -> f64 {
        ratio(self.l1_intra_hits, self.l1_accesses)
    }

    /// Inter-warp hit rate: inter-warp hits over all L1 lookups.
    pub fn inter_warp_hit_rate(&self) -> f64 {
        ratio(self.l1_inter_hits, self.l1_accesses)
    }

    /// Hit rate experienced by cache-polluting warps (`hp`).
    pub fn polluting_hit_rate(&self) -> f64 {
        ratio(self.l1_hits_polluting, self.l1_accesses_polluting)
    }

    /// Hit rate experienced by non-polluting warps (`hnp`).
    pub fn non_polluting_hit_rate(&self) -> f64 {
        ratio(self.l1_hits_non_polluting, self.l1_accesses_non_polluting)
    }

    /// Average memory latency of completed L1 misses (`Lo` / `L'`).
    pub fn aml(&self) -> f64 {
        if self.l1_misses_completed == 0 {
            0.0
        } else {
            self.miss_latency_sum as f64 / self.l1_misses_completed as f64
        }
    }

    /// Average instructions between adjacent global loads (`In`).
    pub fn in_avg(&self) -> f64 {
        if self.in_gap_count == 0 {
            // No loads at all: treat as unboundedly compute-intensive.
            f64::INFINITY
        } else {
            self.in_gap_sum as f64 / self.in_gap_count as f64
        }
    }

    /// Average per-warp reuse distance in lines (`R`), if tracked.
    pub fn reuse_distance(&self) -> f64 {
        ratio(self.reuse_distance_sum, self.reuse_distance_count)
    }

    /// L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        ratio(self.l2_hits, self.l2_accesses)
    }

    /// Counter-wise sum (`self += other`); used to fold the per-lane
    /// scratch counters of a parallel advance back into the global stats.
    /// Every counter is a commutative event sum, so folding lane scratches
    /// in any fixed order reproduces the sequential accumulation exactly.
    pub fn accumulate(&mut self, other: &Counters) {
        // Exhaustive destructure: adding a counter field without extending
        // the merge is a compile error, not a silent bit-identity break.
        let Counters {
            cycles,
            instructions,
            loads,
            stores,
            l1_accesses,
            l1_hits,
            l1_intra_hits,
            l1_inter_hits,
            l1_hits_polluting,
            l1_accesses_polluting,
            l1_hits_non_polluting,
            l1_accesses_non_polluting,
            l1_misses_completed,
            miss_latency_sum,
            l1_rejects,
            mshr_allocations,
            mshr_merges,
            l2_accesses,
            l2_hits,
            dram_accesses,
            busy_scheduler_cycles,
            stall_scheduler_cycles,
            in_gap_sum,
            in_gap_count,
            reuse_distance_sum,
            reuse_distance_count,
        } = *other;
        self.cycles += cycles;
        self.instructions += instructions;
        self.loads += loads;
        self.stores += stores;
        self.l1_accesses += l1_accesses;
        self.l1_hits += l1_hits;
        self.l1_intra_hits += l1_intra_hits;
        self.l1_inter_hits += l1_inter_hits;
        self.l1_hits_polluting += l1_hits_polluting;
        self.l1_accesses_polluting += l1_accesses_polluting;
        self.l1_hits_non_polluting += l1_hits_non_polluting;
        self.l1_accesses_non_polluting += l1_accesses_non_polluting;
        self.l1_misses_completed += l1_misses_completed;
        self.miss_latency_sum += miss_latency_sum;
        self.l1_rejects += l1_rejects;
        self.mshr_allocations += mshr_allocations;
        self.mshr_merges += mshr_merges;
        self.l2_accesses += l2_accesses;
        self.l2_hits += l2_hits;
        self.dram_accesses += dram_accesses;
        self.busy_scheduler_cycles += busy_scheduler_cycles;
        self.stall_scheduler_cycles += stall_scheduler_cycles;
        self.in_gap_sum += in_gap_sum;
        self.in_gap_count += in_gap_count;
        self.reuse_distance_sum += reuse_distance_sum;
        self.reuse_distance_count += reuse_distance_count;
    }

    /// Counter-wise difference (`self − earlier`); useful for deriving a
    /// window from two cumulative snapshots.
    pub fn delta_since(&self, earlier: &Counters) -> Counters {
        macro_rules! d {
            ($($f:ident),*) => {
                Counters { $($f: self.$f.wrapping_sub(earlier.$f)),* }
            };
        }
        d!(
            cycles,
            instructions,
            loads,
            stores,
            l1_accesses,
            l1_hits,
            l1_intra_hits,
            l1_inter_hits,
            l1_hits_polluting,
            l1_accesses_polluting,
            l1_hits_non_polluting,
            l1_accesses_non_polluting,
            l1_misses_completed,
            miss_latency_sum,
            l1_rejects,
            mshr_allocations,
            mshr_merges,
            l2_accesses,
            l2_hits,
            dram_accesses,
            busy_scheduler_cycles,
            stall_scheduler_cycles,
            in_gap_sum,
            in_gap_count,
            reuse_distance_sum,
            reuse_distance_count
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The derived quantities a control policy samples from one counter window.
///
/// This is the information content of the paper's seven per-SM performance
/// counters, reduced to the terms that appear in the feature vector
/// (Table II): net hit rate, intra-warp hit rate, AML, `In`, and IPC for
/// local-search comparisons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSample {
    /// Cycles in the window.
    pub cycles: u64,
    /// Instructions issued in the window.
    pub instructions: u64,
    /// Net L1 hit rate in the window.
    pub hit_rate: f64,
    /// Intra-warp hit rate in the window.
    pub intra_rate: f64,
    /// Average memory latency of misses completing in the window.
    pub aml: f64,
    /// Average instructions between global loads in the window.
    pub in_avg: f64,
    /// Instructions per cycle in the window.
    pub ipc: f64,
}

impl WindowSample {
    /// Derive a sample from a counter window.
    pub fn from_counters(c: &Counters) -> Self {
        WindowSample {
            cycles: c.cycles,
            instructions: c.instructions,
            hit_rate: c.l1_hit_rate(),
            intra_rate: c.intra_warp_hit_rate(),
            aml: c.aml(),
            in_avg: c.in_avg(),
            ipc: c.ipc(),
        }
    }
}

/// Per-SM fast-forward diagnostics (see the module docs of
/// [`crate::gpu`]): how often one SM's private run-ahead engaged, how many
/// of its scheduler cycles were skipped in bulk, and how often its advance
/// was cut short by the shared memory-system horizon rather than by an
/// event or a controller barrier.
///
/// These are *wall-clock* diagnostics, not architectural counters: they
/// explain why a workload does (not) benefit from [`StepMode::PerSm`]
/// without affecting any simulated quantity, and are therefore excluded
/// from the bit-identity contract on [`Counters`]. In particular
/// [`StepMode::ParallelSm`] partitions the same skipped cycles into
/// different spans than [`StepMode::PerSm`] (a round boundary splits a
/// span; the architectural accounting is span-partition-invariant).
///
/// [`StepMode::PerSm`]: crate::config::StepMode::PerSm
/// [`StepMode::ParallelSm`]: crate::config::StepMode::ParallelSm
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmFastForward {
    /// Contiguous spans this SM skipped without stepping.
    pub spans: u64,
    /// SM-local cycles covered by those spans.
    pub skipped: u64,
    /// Times the SM's advance stopped at the conservative memory-system
    /// horizon (an own read still unresolved) instead of an event/barrier.
    pub horizon_stalls: u64,
}

impl SmFastForward {
    /// Fold another breakdown into this one (parallel-lane scratch merge).
    pub fn accumulate(&mut self, other: &SmFastForward) {
        let SmFastForward {
            spans,
            skipped,
            horizon_stalls,
        } = *other;
        self.spans += spans;
        self.skipped += skipped;
        self.horizon_stalls += horizon_stalls;
    }
}

/// Total and windowed counters for one simulation.
#[derive(Debug, Clone, Default)]
pub struct GpuStats {
    /// Cumulative counters since simulation start.
    pub total: Counters,
    /// Resettable window counters.
    pub window: Counters,
    /// Per-SM fast-forward breakdown, indexed by SM id. Populated (and
    /// sized) by [`crate::Gpu::new`]; only [`StepMode::PerSm`] runs write
    /// to it.
    ///
    /// [`StepMode::PerSm`]: crate::config::StepMode::PerSm
    pub fast_forward: Vec<SmFastForward>,
}

impl GpuStats {
    /// Create zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset the window counters (the total is unaffected).
    pub fn reset_window(&mut self) {
        self.window = Counters::default();
    }

    /// Sample the current window.
    pub fn window_sample(&self) -> WindowSample {
        WindowSample::from_counters(&self.window)
    }

    /// Apply `f` to both the total and window counters.
    #[inline]
    pub fn bump(&mut self, f: impl Fn(&mut Counters)) {
        f(&mut self.total);
        f(&mut self.window);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let c = Counters::default();
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.l1_hit_rate(), 0.0);
        assert_eq!(c.aml(), 0.0);
        assert!(c.in_avg().is_infinite());
    }

    #[test]
    fn bump_updates_both_copies() {
        let mut s = GpuStats::new();
        s.bump(|c| c.instructions += 5);
        assert_eq!(s.total.instructions, 5);
        assert_eq!(s.window.instructions, 5);
        s.reset_window();
        assert_eq!(s.total.instructions, 5);
        assert_eq!(s.window.instructions, 0);
    }

    #[test]
    fn delta_since_subtracts_fieldwise() {
        let a = Counters {
            instructions: 10,
            cycles: 100,
            ..Counters::default()
        };
        let mut b = a;
        b.instructions = 25;
        b.cycles = 140;
        let d = b.delta_since(&a);
        assert_eq!(d.instructions, 15);
        assert_eq!(d.cycles, 40);
    }

    #[test]
    fn window_sample_derives_rates() {
        let mut s = GpuStats::new();
        s.bump(|c| {
            c.cycles = 100;
            c.instructions = 80;
            c.l1_accesses = 40;
            c.l1_hits = 30;
            c.l1_intra_hits = 20;
            c.l1_misses_completed = 10;
            c.miss_latency_sum = 4000;
            c.in_gap_sum = 90;
            c.in_gap_count = 30;
        });
        let w = s.window_sample();
        assert!((w.hit_rate - 0.75).abs() < 1e-12);
        assert!((w.intra_rate - 0.5).abs() < 1e-12);
        assert!((w.aml - 400.0).abs() < 1e-12);
        assert!((w.in_avg - 3.0).abs() < 1e-12);
        assert!((w.ipc - 0.8).abs() < 1e-12);
    }
}
