//! Versioned, serializable snapshots of full [`Gpu`] state.
//!
//! A snapshot captures the complete architectural state of the machine at a
//! **controller barrier** — the only points where every SM's local clock
//! equals the global cycle and the shared memory system holds no pending
//! requests (the decoupled loops assert exactly this at every epoch end).
//! Restoring a snapshot onto a freshly constructed GPU of the same
//! configuration and kernel, then continuing with [`Gpu::resume`], is
//! bit-identical to an uninterrupted [`Gpu::run`]: counters, steering
//! trajectories and epoch logs all match, across every step mode. The
//! differential oracle in the `poise` crate proves this for every shipped
//! policy.
//!
//! ## What is (and is not) serialized
//!
//! Serialized: the global cycle and drain flag, cumulative and windowed
//! counters, per-SM scheduler tuples and greedy favourites, complete warp
//! state (with instruction streams represented by their consumed-prefix
//! length and replayed on restore — streams are arbitrary boxed iterators
//! and deterministic by construction), L1 tag stores, MSHR files (entries,
//! merge list, free stack), per-PC counters and bypass flags, per-SM event
//! queues (future completions) and their sequence counters, L2 bank tag
//! stores and service clocks, and DRAM partition clocks.
//!
//! Excluded, because it is either re-derivable or barrier-quiescent by the
//! invariant above: configuration (rebuilt from the spec), per-SM local
//! clocks (equal to the global cycle), per-SM drain cycles (re-detected; an
//! all-drained machine is short-circuited by the drain flag), memory-system
//! ports and front heap (empty), run-loop scratch (heaps, pools, lanes) and
//! fast-forward diagnostics (not architectural). Snapshots are therefore
//! **step-mode independent**: a blob taken under one mode restores under
//! any other.
//!
//! ## Format
//!
//! A line-oriented text format headed by `gpu-snapshot v1`. Every writer
//! below exhaustively destructures the struct it encodes (no `..`), so
//! adding a field to [`Gpu`], [`Sm`], [`Warp`], [`MemSystem`], … fails to
//! compile until the author decides whether it is serialized or excluded —
//! the same guard `spec_render` gives the job-spec grammar.

use std::cmp::Reverse;
use std::fmt::Write as _;

use crate::cache::{CacheLineState, Line, SetAssocCache};
use crate::config::GpuConfig;
use crate::gpu::{EventQueue, Gpu, QueuedEvent};
use crate::instruction::{Instr, KernelSource};
use crate::l1::{L1Data, MshrEntry, MshrWaiter, PcStats};
use crate::memsys::{L2Bank, MemSystem, Partition};
use crate::scheduler::WarpScheduler;
use crate::sm::Sm;
use crate::stats::{Counters, GpuStats};
use crate::warp::Warp;
use crate::WarpTuple;

/// First line of every snapshot; bump the version when the format changes.
pub const SNAPSHOT_HEADER: &str = "gpu-snapshot v1";

/// A malformed, truncated or mismatched snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SnapshotError> {
    Err(SnapshotError(msg.into()))
}

/// Apply a macro to the full ordered field list of [`Counters`]. The
/// writer's exhaustive destructure (below) keeps this list honest: a new
/// counter fails to compile until added here, which versions the encoding.
macro_rules! with_counter_fields {
    ($m:ident) => {
        $m!(
            cycles,
            instructions,
            loads,
            stores,
            l1_accesses,
            l1_hits,
            l1_intra_hits,
            l1_inter_hits,
            l1_hits_polluting,
            l1_accesses_polluting,
            l1_hits_non_polluting,
            l1_accesses_non_polluting,
            l1_misses_completed,
            miss_latency_sum,
            l1_rejects,
            mshr_allocations,
            mshr_merges,
            l2_accesses,
            l2_hits,
            dram_accesses,
            busy_scheduler_cycles,
            stall_scheduler_cycles,
            in_gap_sum,
            in_gap_count,
            reuse_distance_sum,
            reuse_distance_count
        )
    };
}

fn counters_to_line(c: &Counters) -> String {
    macro_rules! emit {
        ($($f:ident),*) => {{
            let Counters { $($f),* } = *c;
            [$($f.to_string()),*].join(" ")
        }};
    }
    with_counter_fields!(emit)
}

fn counters_from_slice(v: &[u64]) -> Option<Counters> {
    macro_rules! build {
        ($($f:ident),*) => {{
            let mut it = v.iter().copied();
            let c = Counters { $($f: it.next()?),* };
            if it.next().is_some() {
                return None;
            }
            Some(c)
        }};
    }
    with_counter_fields!(build)
}

fn bool_code(b: bool) -> u8 {
    b as u8
}

fn state_code(s: CacheLineState) -> u8 {
    match s {
        CacheLineState::Invalid => 0,
        CacheLineState::Valid => 1,
        CacheLineState::Reserved => 2,
    }
}

fn state_from_code(c: u64) -> Option<CacheLineState> {
    match c {
        0 => Some(CacheLineState::Invalid),
        1 => Some(CacheLineState::Valid),
        2 => Some(CacheLineState::Reserved),
        _ => None,
    }
}

fn pending_code(p: &Option<Instr>) -> String {
    match p {
        None => "-".into(),
        Some(Instr::Alu) => "a".into(),
        Some(Instr::SyncLoads) => "y".into(),
        Some(Instr::Load { line, pc }) => format!("l:{line}:{pc}"),
        Some(Instr::Store { line, pc }) => format!("s:{line}:{pc}"),
    }
}

fn pending_from_code(s: &str) -> Result<Option<Instr>, SnapshotError> {
    if s == "-" {
        return Ok(None);
    }
    if s == "a" {
        return Ok(Some(Instr::Alu));
    }
    if s == "y" {
        return Ok(Some(Instr::SyncLoads));
    }
    let mut it = s.split(':');
    let kind = it.next().unwrap_or("");
    let line = it.next().and_then(|v| v.parse::<u64>().ok());
    let pc = it.next().and_then(|v| v.parse::<u32>().ok());
    match (kind, line, pc, it.next()) {
        ("l", Some(line), Some(pc), None) => Ok(Some(Instr::Load { line, pc })),
        ("s", Some(line), Some(pc), None) => Ok(Some(Instr::Store { line, pc })),
        _ => err(format!("bad pending instruction {s:?}")),
    }
}

fn u64_list(v: impl IntoIterator<Item = u64>) -> String {
    let items: Vec<String> = v.into_iter().map(|x| x.to_string()).collect();
    if items.is_empty() {
        "-".into()
    } else {
        items.join(",")
    }
}

fn u64_list_parse(s: &str) -> Result<Vec<u64>, SnapshotError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| {
            t.parse::<u64>()
                .map_err(|_| SnapshotError(format!("bad list item {t:?}")))
        })
        .collect()
}

/// A cache line that differs from the pristine slot a fresh tag store
/// holds; pristine slots are omitted from the snapshot.
fn line_is_pristine(l: &Line) -> bool {
    let Line {
        tag,
        state,
        lru,
        touchers,
    } = *l;
    tag == 0 && state == CacheLineState::Invalid && lru == 0 && touchers == 0
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

impl Gpu {
    /// Serialize the full architectural state (see the module docs). Must
    /// be called at a barrier: between [`Gpu::run`] / [`Gpu::resume`]
    /// calls, where the memory system is quiescent by invariant.
    pub fn snapshot(&self) -> String {
        assert_eq!(
            self.mem.pending_requests(),
            0,
            "snapshot requires a barrier-quiesced machine"
        );
        let Gpu {
            cfg: _, // rebuilt from the spec by the restoring side
            sms,
            mem,
            events,
            stats,
            cycle,
            kernel_warps,
            drained,
            clocks: _,        // equal to `cycle` at barriers
            done_at: _,       // re-detected; all-drained ⇒ `drained` flag
            frontier_heap: _, // per-epoch scratch
            pool: _,          // worker pool, rebuilt lazily
            lane_scratch: _,  // per-round scratch
            reindex_scratch: _,
            ff_spans: _, // diagnostics, not architectural
            ff_cycles: _,
        } = self;
        let mut out = String::new();
        out.push_str(SNAPSHOT_HEADER);
        out.push('\n');
        let _ = writeln!(out, "cycle {cycle}");
        let _ = writeln!(out, "drained {}", bool_code(*drained));
        let _ = writeln!(out, "kernel-warps {kernel_warps}");
        let _ = writeln!(
            out,
            "geometry sms={} scheds={} warps={} l1-lines={} mshrs={} pcs={} l2-banks={} l2-lines={} parts={}",
            sms.len(),
            sms.first().map_or(0, |s| s.schedulers.len()),
            kernel_warps,
            sms.first().map_or(0, |s| s.l1.tags.lines.len()),
            sms.first().map_or(0, |s| s.l1.mshrs.len()),
            sms.first().map_or(0, |s| s.l1.pc_stats.len()),
            mem.banks.len(),
            mem.banks.first().map_or(0, |b| b.tags.lines.len()),
            mem.partitions.len(),
        );
        let GpuStats {
            total,
            window,
            fast_forward: _, // diagnostics
        } = stats;
        let _ = writeln!(out, "total {}", counters_to_line(total));
        let _ = writeln!(out, "window {}", counters_to_line(window));
        let EventQueue { queues, seqs } = events;
        for (i, sm) in sms.iter().enumerate() {
            write_sm(&mut out, sm, &queues[i], seqs[i]);
        }
        write_mem(&mut out, mem);
        out.push_str("end-snapshot\n");
        out
    }
}

fn write_sm(
    out: &mut String,
    sm: &Sm,
    queue: &std::collections::BinaryHeap<Reverse<QueuedEvent>>,
    evseq: u64,
) {
    let Sm {
        id,
        schedulers,
        warps,
        l1,
        hit_latency: _,  // from the config
        ready_mask: _,   // recomputed from the warps on restore
        live_warps: _,   // recomputed from the warps on restore
        version: _,      // relative only; restore resets to 0
        fill_scratch: _, // scratch
    } = sm;
    let _ = writeln!(out, "sm {id}");
    let _ = writeln!(out, "evseq {evseq}");
    let mut evs: Vec<QueuedEvent> = queue.iter().map(|r| r.0).collect();
    evs.sort_unstable();
    for e in evs {
        let QueuedEvent {
            at,
            seq,
            ev_kind,
            ev_a,
            ev_b,
        } = e;
        let _ = writeln!(out, "ev {at} {seq} {ev_kind} {ev_a} {ev_b}");
    }
    for (si, sched) in schedulers.iter().enumerate() {
        let WarpScheduler {
            n_warps: _, // from the kernel/config
            tuple,
            greedy,
        } = sched;
        let _ = writeln!(out, "sched {si} {} {} {greedy}", tuple.n, tuple.p);
    }
    for (si, ws) in warps.iter().enumerate() {
        for (wi, w) in ws.iter().enumerate() {
            let Warp {
                stream: _, // replayed via `fetched`
                pending,
                outstanding_loads,
                waiting_sync,
                done,
                instructions,
                since_last_load,
                seen_load,
                fetched,
                reuse_stack,
                seen_lines,
            } = w;
            let _ = writeln!(
                out,
                "warp {si} {wi} {fetched} {} {outstanding_loads} {} {} {instructions} {since_last_load} {}",
                pending_code(pending),
                bool_code(*waiting_sync),
                bool_code(*done),
                bool_code(*seen_load),
            );
            if let Some(stack) = reuse_stack {
                let _ = writeln!(out, "wreuse {si} {wi} {}", u64_list(stack.iter().copied()));
            }
            if !seen_lines.is_empty() {
                let mut v: Vec<u64> = seen_lines.iter().copied().collect();
                v.sort_unstable();
                let _ = writeln!(out, "wseen {si} {wi} {}", u64_list(v));
            }
        }
    }
    write_l1(out, l1);
    let _ = writeln!(out, "end-sm");
}

fn write_l1(out: &mut String, l1: &L1Data) {
    let L1Data {
        tags,
        mshrs,
        in_use,
        free,
        merge_limit: _, // from the config
        pc_stats,
        bypass_pc,
        track_pcs: _, // from the config
    } = l1;
    write_tag_store(out, "l1line", None, tags);
    let _ = writeln!(out, "l1stamp {}", tags.stamp);
    for (idx, e) in mshrs.iter().enumerate() {
        let MshrEntry {
            line,
            target,
            waiters,
            in_use,
        } = e;
        if !*in_use && *line == 0 && target.is_none() && waiters.is_empty() {
            continue; // pristine entry, as a fresh MSHR file holds
        }
        let target_code = match target {
            None => "-".into(),
            Some((s, w)) => format!("{s}:{w}"),
        };
        let waiters_code = if waiters.is_empty() {
            "-".into()
        } else {
            waiters
                .iter()
                .map(|mw| {
                    let MshrWaiter {
                        scheduler,
                        warp,
                        issued_at,
                    } = mw;
                    format!("{scheduler}:{warp}:{issued_at}")
                })
                .collect::<Vec<_>>()
                .join(";")
        };
        let _ = writeln!(
            out,
            "mshr {idx} {} {line} {target_code} {waiters_code}",
            bool_code(*in_use)
        );
    }
    if !in_use.is_empty() {
        let items: Vec<String> = in_use.iter().map(|(l, i)| format!("{l}:{i}")).collect();
        let _ = writeln!(out, "l1used {}", items.join(","));
    }
    let _ = writeln!(out, "l1free {}", u64_list(free.iter().map(|&x| x as u64)));
    for (idx, s) in pc_stats.iter().enumerate() {
        let PcStats {
            accesses,
            hits,
            intra_hits,
        } = s;
        if *accesses == 0 && *hits == 0 && *intra_hits == 0 {
            continue;
        }
        let _ = writeln!(out, "pcstat {idx} {accesses} {hits} {intra_hits}");
    }
    for (idx, b) in bypass_pc.iter().enumerate() {
        if *b {
            let _ = writeln!(out, "bypass {idx}");
        }
    }
}

/// Dump the non-pristine lines of a tag store, one `"<prefix> [bank] <idx>
/// <tag> <state> <lru> <touchers>"` line each.
fn write_tag_store(out: &mut String, prefix: &str, bank: Option<usize>, tags: &SetAssocCache) {
    let SetAssocCache {
        geometry: _, // from the config
        lines,
        stamp: _, // written by the caller (placement differs per store)
    } = tags;
    for (idx, l) in lines.iter().enumerate() {
        if line_is_pristine(l) {
            continue;
        }
        let Line {
            tag,
            state,
            lru,
            touchers,
        } = l;
        match bank {
            Some(b) => {
                let _ = writeln!(
                    out,
                    "{prefix} {b} {idx} {tag} {} {lru} {touchers}",
                    state_code(*state)
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{prefix} {idx} {tag} {} {lru} {touchers}",
                    state_code(*state)
                );
            }
        }
    }
}

fn write_mem(out: &mut String, mem: &MemSystem) {
    let MemSystem {
        banks,
        partitions,
        xbar_latency: _, // from the config
        l2_latency: _,
        l2_service: _,
        dram_latency: _,
        dram_service: _,
        deferred: _, // a pure function of the step mode
        ports,
        front_heap: _, // empty at barriers (asserted below)
    } = mem;
    debug_assert!(ports.iter().all(|p| p.is_empty()), "ports empty at barrier");
    for (i, b) in banks.iter().enumerate() {
        let L2Bank { tags, next_free } = b;
        let _ = writeln!(out, "l2bank {i} {next_free} {}", tags.stamp);
        write_tag_store(out, "l2line", Some(i), tags);
    }
    for (i, p) in partitions.iter().enumerate() {
        let Partition { next_free } = p;
        let _ = writeln!(out, "part {i} {next_free}");
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Geom {
    sms: usize,
    scheds: usize,
    warps: usize,
    l1_lines: usize,
    mshrs: usize,
    pcs: usize,
    l2_banks: usize,
    l2_lines: usize,
    parts: usize,
}

#[derive(Debug, Clone, Copy)]
struct LineDoc {
    tag: u64,
    state: CacheLineState,
    lru: u64,
    touchers: u64,
}

#[derive(Debug)]
struct WarpDoc {
    fetched: u64,
    pending: Option<Instr>,
    outstanding: u32,
    sync: bool,
    done: bool,
    instructions: u64,
    gap: u64,
    seen_load: bool,
    reuse: Option<Vec<u64>>,
    seen: Vec<u64>,
}

#[derive(Debug)]
struct MshrDoc {
    idx: usize,
    in_use: bool,
    line: u64,
    target: Option<(usize, usize)>,
    waiters: Vec<MshrWaiter>,
}

#[derive(Debug)]
struct SmDoc {
    id: usize,
    evseq: u64,
    events: Vec<QueuedEvent>,
    scheds: Vec<(usize, usize, usize)>,
    warps: Vec<WarpDoc>,
    l1_lines: Vec<(usize, LineDoc)>,
    l1_stamp: Option<u64>,
    mshrs: Vec<MshrDoc>,
    l1_used: Vec<(u64, u32)>,
    l1_free: Option<Vec<u32>>,
    pc_stats: Vec<(usize, u64, u64, u64)>,
    bypass: Vec<usize>,
}

#[derive(Debug)]
struct BankDoc {
    next_free: u64,
    stamp: u64,
    lines: Vec<(usize, LineDoc)>,
}

#[derive(Debug)]
struct SnapDoc {
    cycle: u64,
    drained: bool,
    kernel_warps: usize,
    geom: Geom,
    total: Counters,
    window: Counters,
    sms: Vec<SmDoc>,
    banks: Vec<BankDoc>,
    parts: Vec<u64>,
}

fn p_u64(s: Option<&str>, what: &str) -> Result<u64, SnapshotError> {
    s.and_then(|v| v.parse::<u64>().ok())
        .ok_or_else(|| SnapshotError(format!("bad or missing {what}")))
}

fn p_usize(s: Option<&str>, what: &str) -> Result<usize, SnapshotError> {
    Ok(p_u64(s, what)? as usize)
}

fn p_bool(s: Option<&str>, what: &str) -> Result<bool, SnapshotError> {
    match p_u64(s, what)? {
        0 => Ok(false),
        1 => Ok(true),
        v => err(format!("bad {what} flag {v}")),
    }
}

fn parse_line_doc(
    it: &mut std::str::SplitWhitespace,
    max_idx: usize,
) -> Result<(usize, LineDoc), SnapshotError> {
    let idx = p_usize(it.next(), "line index")?;
    if idx >= max_idx {
        return err(format!("line index {idx} out of range {max_idx}"));
    }
    let tag = p_u64(it.next(), "line tag")?;
    let state = state_from_code(p_u64(it.next(), "line state")?)
        .ok_or_else(|| SnapshotError("bad line state".into()))?;
    let lru = p_u64(it.next(), "line lru")?;
    let touchers = p_u64(it.next(), "line touchers")?;
    Ok((
        idx,
        LineDoc {
            tag,
            state,
            lru,
            touchers,
        },
    ))
}

fn parse(text: &str) -> Result<SnapDoc, SnapshotError> {
    let mut lines = text.lines();
    if lines.next() != Some(SNAPSHOT_HEADER) {
        return err(format!("missing header {SNAPSHOT_HEADER:?}"));
    }
    let mut cycle = None;
    let mut drained = None;
    let mut kernel_warps = None;
    let mut geom: Option<Geom> = None;
    let mut total = None;
    let mut window = None;
    let mut sms: Vec<SmDoc> = Vec::new();
    let mut cur: Option<SmDoc> = None;
    let mut banks: Vec<BankDoc> = Vec::new();
    let mut parts: Vec<u64> = Vec::new();
    let mut ended = false;
    for (lineno, raw) in lines.enumerate() {
        let lineno = lineno + 2; // 1-based, after the header
        if ended {
            return err(format!("line {lineno}: content after end-snapshot"));
        }
        let mut it = raw.split_whitespace();
        let Some(tag) = it.next() else {
            return err(format!("line {lineno}: empty line"));
        };
        let ctx = |m: String| SnapshotError(format!("line {lineno}: {m}"));
        let res: Result<(), SnapshotError> = (|| {
            match tag {
                "cycle" => cycle = Some(p_u64(it.next(), "cycle")?),
                "drained" => drained = Some(p_bool(it.next(), "drained")?),
                "kernel-warps" => kernel_warps = Some(p_usize(it.next(), "kernel-warps")?),
                "geometry" => {
                    const FIELDS: [&str; 9] = [
                        "sms", "scheds", "warps", "l1-lines", "mshrs", "pcs", "l2-banks",
                        "l2-lines", "parts",
                    ];
                    let mut vals = [0usize; 9];
                    for (field, dst) in FIELDS.iter().zip(vals.iter_mut()) {
                        let tok = it
                            .next()
                            .ok_or_else(|| SnapshotError(format!("missing geometry {field}")))?;
                        *dst = tok
                            .strip_prefix(field)
                            .and_then(|r| r.strip_prefix('='))
                            .and_then(|v| v.parse::<usize>().ok())
                            .ok_or_else(|| {
                                SnapshotError(format!("bad geometry {field}: {tok:?}"))
                            })?;
                    }
                    let [sms, scheds, warps, l1_lines, mshrs, pcs, l2_banks, l2_lines, parts] =
                        vals;
                    geom = Some(Geom {
                        sms,
                        scheds,
                        warps,
                        l1_lines,
                        mshrs,
                        pcs,
                        l2_banks,
                        l2_lines,
                        parts,
                    });
                }
                "total" | "window" => {
                    let vals: Vec<u64> = it
                        .map(|t| t.parse::<u64>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| SnapshotError("bad counter value".into()))?;
                    let c = counters_from_slice(&vals)
                        .ok_or_else(|| SnapshotError("wrong counter count".into()))?;
                    if tag == "total" {
                        total = Some(c);
                    } else {
                        window = Some(c);
                    }
                }
                "sm" => {
                    if cur.is_some() {
                        return err("sm section not closed".to_string());
                    }
                    let id = p_usize(it.next(), "sm id")?;
                    if id != sms.len() {
                        return err(format!("sm sections out of order at id {id}"));
                    }
                    cur = Some(SmDoc {
                        id,
                        evseq: 0,
                        events: Vec::new(),
                        scheds: Vec::new(),
                        warps: Vec::new(),
                        l1_lines: Vec::new(),
                        l1_stamp: None,
                        mshrs: Vec::new(),
                        l1_used: Vec::new(),
                        l1_free: None,
                        pc_stats: Vec::new(),
                        bypass: Vec::new(),
                    });
                }
                "end-sm" => {
                    let sm = cur
                        .take()
                        .ok_or_else(|| SnapshotError("stray end-sm".into()))?;
                    if sm.l1_stamp.is_none() || sm.l1_free.is_none() {
                        return err("sm section missing l1stamp/l1free".to_string());
                    }
                    sms.push(sm);
                }
                "evseq" | "ev" | "sched" | "warp" | "wreuse" | "wseen" | "l1line" | "l1stamp"
                | "mshr" | "l1used" | "l1free" | "pcstat" | "bypass" => {
                    let g = geom.ok_or_else(|| SnapshotError("geometry before sm".into()))?;
                    let sm = cur
                        .as_mut()
                        .ok_or_else(|| SnapshotError(format!("{tag} outside sm section")))?;
                    parse_sm_line(tag, &mut it, g, sm)?;
                }
                "l2bank" => {
                    let idx = p_usize(it.next(), "bank index")?;
                    if idx != banks.len() {
                        return err(format!("l2bank sections out of order at {idx}"));
                    }
                    let next_free = p_u64(it.next(), "bank next_free")?;
                    let stamp = p_u64(it.next(), "bank stamp")?;
                    banks.push(BankDoc {
                        next_free,
                        stamp,
                        lines: Vec::new(),
                    });
                }
                "l2line" => {
                    let g = geom.ok_or_else(|| SnapshotError("geometry before l2line".into()))?;
                    let bank = p_usize(it.next(), "l2line bank")?;
                    if bank + 1 != banks.len() {
                        return err(format!("l2line for bank {bank} out of order"));
                    }
                    let entry = parse_line_doc(&mut it, g.l2_lines)?;
                    banks[bank].lines.push(entry);
                }
                "part" => {
                    let idx = p_usize(it.next(), "partition index")?;
                    if idx != parts.len() {
                        return err(format!("part sections out of order at {idx}"));
                    }
                    parts.push(p_u64(it.next(), "partition next_free")?);
                }
                "end-snapshot" => ended = true,
                other => return err(format!("unknown record {other:?}")),
            }
            Ok(())
        })();
        res.map_err(|e| ctx(e.0))?;
    }
    if !ended {
        return err("truncated snapshot: missing end-snapshot");
    }
    if cur.is_some() {
        return err("truncated snapshot: unclosed sm section");
    }
    let geom = geom.ok_or_else(|| SnapshotError("missing geometry".into()))?;
    let doc = SnapDoc {
        cycle: cycle.ok_or_else(|| SnapshotError("missing cycle".into()))?,
        drained: drained.ok_or_else(|| SnapshotError("missing drained".into()))?,
        kernel_warps: kernel_warps.ok_or_else(|| SnapshotError("missing kernel-warps".into()))?,
        geom,
        total: total.ok_or_else(|| SnapshotError("missing total counters".into()))?,
        window: window.ok_or_else(|| SnapshotError("missing window counters".into()))?,
        sms,
        banks,
        parts,
    };
    // Cross-check section counts against the declared geometry.
    if doc.sms.len() != geom.sms {
        return err(format!(
            "expected {} sm sections, got {}",
            geom.sms,
            doc.sms.len()
        ));
    }
    if doc.banks.len() != geom.l2_banks || doc.parts.len() != geom.parts {
        return err("bank/partition count mismatch with geometry");
    }
    for sm in &doc.sms {
        if sm.scheds.len() != geom.scheds {
            return err(format!("sm {}: scheduler count mismatch", sm.id));
        }
        if sm.warps.len() != geom.scheds * geom.warps {
            return err(format!("sm {}: warp count mismatch", sm.id));
        }
    }
    Ok(doc)
}

fn parse_sm_line(
    tag: &str,
    it: &mut std::str::SplitWhitespace,
    g: Geom,
    sm: &mut SmDoc,
) -> Result<(), SnapshotError> {
    match tag {
        "evseq" => sm.evseq = p_u64(it.next(), "evseq")?,
        "ev" => {
            let at = p_u64(it.next(), "event time")?;
            let seq = p_u64(it.next(), "event seq")?;
            let ev_kind = p_u64(it.next(), "event kind")?;
            if ev_kind > 1 {
                return err(format!("bad event kind {ev_kind}"));
            }
            let ev_a = p_u64(it.next(), "event a")? as u32;
            let ev_b = p_u64(it.next(), "event b")? as u32;
            sm.events.push(QueuedEvent {
                at,
                seq,
                ev_kind: ev_kind as u8,
                ev_a,
                ev_b,
            });
        }
        "sched" => {
            let si = p_usize(it.next(), "scheduler index")?;
            if si != sm.scheds.len() || si >= g.scheds {
                return err(format!("sched {si} out of order or range"));
            }
            let n = p_usize(it.next(), "tuple n")?;
            let p = p_usize(it.next(), "tuple p")?;
            let greedy = p_usize(it.next(), "greedy")?;
            if n == 0 || p == 0 || p > n || n > g.warps {
                return err(format!("bad tuple ({n}, {p}) for {} warps", g.warps));
            }
            sm.scheds.push((n, p, greedy));
        }
        "warp" => {
            let si = p_usize(it.next(), "warp scheduler")?;
            let wi = p_usize(it.next(), "warp index")?;
            let expect = (
                sm.warps.len() / g.warps.max(1),
                sm.warps.len() % g.warps.max(1),
            );
            if (si, wi) != expect {
                return err(format!(
                    "warp ({si}, {wi}) out of order, expected {expect:?}"
                ));
            }
            let fetched = p_u64(it.next(), "fetched")?;
            let pending = pending_from_code(
                it.next()
                    .ok_or_else(|| SnapshotError("missing pending".into()))?,
            )?;
            let outstanding = p_u64(it.next(), "outstanding loads")? as u32;
            let sync = p_bool(it.next(), "waiting_sync")?;
            let done = p_bool(it.next(), "done")?;
            let instructions = p_u64(it.next(), "instructions")?;
            let gap = p_u64(it.next(), "since_last_load")?;
            let seen_load = p_bool(it.next(), "seen_load")?;
            sm.warps.push(WarpDoc {
                fetched,
                pending,
                outstanding,
                sync,
                done,
                instructions,
                gap,
                seen_load,
                reuse: None,
                seen: Vec::new(),
            });
        }
        "wreuse" | "wseen" => {
            let si = p_usize(it.next(), "warp scheduler")?;
            let wi = p_usize(it.next(), "warp index")?;
            let flat = si * g.warps + wi;
            if flat + 1 != sm.warps.len() {
                return err(format!("{tag} ({si}, {wi}) does not follow its warp"));
            }
            let list = u64_list_parse(
                it.next()
                    .ok_or_else(|| SnapshotError(format!("missing {tag} list")))?,
            )?;
            let w = &mut sm.warps[flat];
            if tag == "wreuse" {
                w.reuse = Some(list);
            } else {
                w.seen = list;
            }
        }
        "l1line" => {
            let entry = parse_line_doc(it, g.l1_lines)?;
            sm.l1_lines.push(entry);
        }
        "l1stamp" => sm.l1_stamp = Some(p_u64(it.next(), "l1stamp")?),
        "mshr" => {
            let idx = p_usize(it.next(), "mshr index")?;
            if idx >= g.mshrs {
                return err(format!("mshr index {idx} out of range"));
            }
            let in_use = p_bool(it.next(), "mshr in_use")?;
            let line = p_u64(it.next(), "mshr line")?;
            let target_tok = it
                .next()
                .ok_or_else(|| SnapshotError("missing mshr target".into()))?;
            let target = if target_tok == "-" {
                None
            } else {
                let mut t = target_tok.split(':');
                let s = t.next().and_then(|v| v.parse::<usize>().ok());
                let w = t.next().and_then(|v| v.parse::<usize>().ok());
                match (s, w, t.next()) {
                    (Some(s), Some(w), None) => Some((s, w)),
                    _ => return err(format!("bad mshr target {target_tok:?}")),
                }
            };
            let waiters_tok = it
                .next()
                .ok_or_else(|| SnapshotError("missing mshr waiters".into()))?;
            let mut waiters = Vec::new();
            if waiters_tok != "-" {
                for part in waiters_tok.split(';') {
                    let mut t = part.split(':');
                    let scheduler = t.next().and_then(|v| v.parse::<u8>().ok());
                    let warp = t.next().and_then(|v| v.parse::<u8>().ok());
                    let issued_at = t.next().and_then(|v| v.parse::<u64>().ok());
                    match (scheduler, warp, issued_at, t.next()) {
                        (Some(scheduler), Some(warp), Some(issued_at), None) => {
                            waiters.push(MshrWaiter {
                                scheduler,
                                warp,
                                issued_at,
                            });
                        }
                        _ => return err(format!("bad mshr waiter {part:?}")),
                    }
                }
            }
            sm.mshrs.push(MshrDoc {
                idx,
                in_use,
                line,
                target,
                waiters,
            });
        }
        "l1used" => {
            let tok = it
                .next()
                .ok_or_else(|| SnapshotError("missing l1used list".into()))?;
            for part in tok.split(',') {
                let mut t = part.split(':');
                let line = t.next().and_then(|v| v.parse::<u64>().ok());
                let idx = t.next().and_then(|v| v.parse::<u32>().ok());
                match (line, idx, t.next()) {
                    (Some(line), Some(idx), None) if (idx as usize) < g.mshrs => {
                        sm.l1_used.push((line, idx));
                    }
                    _ => return err(format!("bad l1used entry {part:?}")),
                }
            }
        }
        "l1free" => {
            let list = u64_list_parse(
                it.next()
                    .ok_or_else(|| SnapshotError("missing l1free list".into()))?,
            )?;
            let mut free = Vec::with_capacity(list.len());
            for v in list {
                if v as usize >= g.mshrs {
                    return err(format!("free index {v} out of range"));
                }
                free.push(v as u32);
            }
            if free.len() > g.mshrs {
                return err("free list longer than the MSHR file");
            }
            sm.l1_free = Some(free);
        }
        "pcstat" => {
            let idx = p_usize(it.next(), "pcstat index")?;
            if idx >= g.pcs {
                return err(format!("pcstat index {idx} out of range"));
            }
            let a = p_u64(it.next(), "pcstat accesses")?;
            let h = p_u64(it.next(), "pcstat hits")?;
            let ih = p_u64(it.next(), "pcstat intra_hits")?;
            sm.pc_stats.push((idx, a, h, ih));
        }
        "bypass" => {
            let idx = p_usize(it.next(), "bypass index")?;
            if idx >= g.pcs {
                return err(format!("bypass index {idx} out of range"));
            }
            sm.bypass.push(idx);
        }
        _ => unreachable!("caller dispatches only sm-section tags"),
    }
    Ok(())
}

/// Structurally validate a snapshot without a configuration or kernel:
/// checks the header, the grammar of every record, internal index bounds
/// and the declared-geometry cross-counts. Used by the job cache's `fsck`
/// to decide whether a stored blob is loadable at all.
pub fn validate(text: &str) -> Result<(), SnapshotError> {
    parse(text).map(|_| ())
}

// ---------------------------------------------------------------------------
// Restore
// ---------------------------------------------------------------------------

fn apply_tag_store(
    tags: &mut SetAssocCache,
    lines: &[(usize, LineDoc)],
    stamp: u64,
) -> Result<(), SnapshotError> {
    tags.stamp = stamp;
    for &(idx, d) in lines {
        let Some(slot) = tags.lines.get_mut(idx) else {
            return err(format!("line index {idx} out of range for this geometry"));
        };
        let LineDoc {
            tag,
            state,
            lru,
            touchers,
        } = d;
        *slot = Line {
            tag,
            state,
            lru,
            touchers,
        };
    }
    Ok(())
}

impl Gpu {
    /// Reconstruct a GPU from a snapshot, a configuration and the kernel it
    /// was taken from. The configuration's *architectural* parameters must
    /// match the snapshot's geometry (step mode and thread count are free:
    /// snapshots are step-mode independent); the kernel must be the same
    /// deterministic source, whose streams are replayed up to each warp's
    /// consumed prefix. Continue with [`Gpu::resume`], not [`Gpu::run`] —
    /// the kernel-start hook already fired in the run that was snapshotted.
    pub fn restore(
        cfg: GpuConfig,
        kernel: &dyn KernelSource,
        text: &str,
    ) -> Result<Gpu, SnapshotError> {
        let doc = parse(text)?;
        let mut gpu = Gpu::new(cfg, kernel);
        let g = doc.geom;
        let have = Geom {
            sms: gpu.sms.len(),
            scheds: gpu.sms.first().map_or(0, |s| s.schedulers.len()),
            warps: gpu.kernel_warps,
            l1_lines: gpu.sms.first().map_or(0, |s| s.l1.tags.lines.len()),
            mshrs: gpu.sms.first().map_or(0, |s| s.l1.mshrs.len()),
            pcs: gpu.sms.first().map_or(0, |s| s.l1.pc_stats.len()),
            l2_banks: gpu.mem.banks.len(),
            l2_lines: gpu.mem.banks.first().map_or(0, |b| b.tags.lines.len()),
            parts: gpu.mem.partitions.len(),
        };
        if g != have {
            return err(format!(
                "geometry mismatch: snapshot {g:?} vs machine {have:?}"
            ));
        }
        if doc.kernel_warps != gpu.kernel_warps {
            return err(format!(
                "kernel-warps mismatch: snapshot {} vs machine {}",
                doc.kernel_warps, gpu.kernel_warps
            ));
        }
        gpu.cycle = doc.cycle;
        gpu.drained = doc.drained;
        for c in &mut gpu.clocks {
            *c = doc.cycle;
        }
        gpu.stats.total = doc.total;
        gpu.stats.window = doc.window;
        for smdoc in &doc.sms {
            let sm = &mut gpu.sms[smdoc.id];
            gpu.events.seqs[smdoc.id] = smdoc.evseq;
            let q = &mut gpu.events.queues[smdoc.id];
            debug_assert!(q.is_empty());
            for &e in &smdoc.events {
                q.push(Reverse(e));
            }
            for (si, &(n, p, greedy)) in smdoc.scheds.iter().enumerate() {
                let sched = &mut sm.schedulers[si];
                // Written raw (not via `set_tuple`): the saved tuple is
                // already valid for this scheduler by the parse checks.
                sched.tuple = WarpTuple { n, p };
                sched.greedy = greedy;
            }
            for (flat, wd) in smdoc.warps.iter().enumerate() {
                let (si, wi) = (flat / g.warps, flat % g.warps);
                let w = &mut sm.warps[si][wi];
                w.replay_stream(wd.fetched);
                w.pending = wd.pending;
                w.outstanding_loads = wd.outstanding;
                w.waiting_sync = wd.sync;
                w.done = wd.done;
                w.instructions = wd.instructions;
                w.since_last_load = wd.gap;
                w.seen_load = wd.seen_load;
                w.reuse_stack = wd.reuse.clone();
                w.seen_lines = wd.seen.iter().copied().collect();
            }
            apply_tag_store(
                &mut sm.l1.tags,
                &smdoc.l1_lines,
                smdoc.l1_stamp.expect("checked at parse"),
            )?;
            for md in &smdoc.mshrs {
                let e = &mut sm.l1.mshrs[md.idx];
                e.line = md.line;
                e.target = md.target;
                e.waiters = md.waiters.clone();
                e.in_use = md.in_use;
            }
            sm.l1.in_use = smdoc.l1_used.clone();
            sm.l1.free = smdoc.l1_free.clone().expect("checked at parse");
            for &(idx, accesses, hits, intra_hits) in &smdoc.pc_stats {
                sm.l1.pc_stats[idx] = PcStats {
                    accesses,
                    hits,
                    intra_hits,
                };
            }
            for &idx in &smdoc.bypass {
                sm.l1.bypass_pc[idx] = true;
            }
            sm.version = 0;
            sm.recompute_activity();
        }
        for (i, bd) in doc.banks.iter().enumerate() {
            let bank = &mut gpu.mem.banks[i];
            bank.next_free = bd.next_free;
            apply_tag_store(&mut bank.tags, &bd.lines, bd.stamp)?;
        }
        for (i, &next_free) in doc.parts.iter().enumerate() {
            gpu.mem.partitions[i].next_free = next_free;
        }
        Ok(gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StepMode;
    use crate::controller::{Controller, FixedTuple};
    use crate::instruction::UniformKernel;

    fn cfg_with(mode: StepMode) -> GpuConfig {
        let mut cfg = GpuConfig::scaled(2);
        cfg.step_mode = mode;
        cfg
    }

    #[test]
    fn snapshot_roundtrips_byte_identically() {
        let kernel = UniformKernel::streaming(8, 3);
        let mut gpu = Gpu::new(cfg_with(StepMode::PerSm), &kernel);
        let mut ctrl = FixedTuple::max();
        gpu.run(&mut ctrl, 5_000);
        let snap = gpu.snapshot();
        let restored = Gpu::restore(cfg_with(StepMode::PerSm), &kernel, &snap).unwrap();
        assert_eq!(restored.snapshot(), snap);
    }

    #[test]
    fn snapshot_is_step_mode_independent() {
        let kernel = UniformKernel::streaming(8, 3);
        let mut per_sm = Gpu::new(cfg_with(StepMode::PerSm), &kernel);
        let mut reference = Gpu::new(cfg_with(StepMode::Reference), &kernel);
        let mut ctrl = FixedTuple::max();
        per_sm.run(&mut ctrl, 4_000);
        let mut ctrl = FixedTuple::max();
        reference.run(&mut ctrl, 4_000);
        assert_eq!(per_sm.snapshot(), reference.snapshot());
    }

    #[test]
    fn restore_then_resume_matches_straight_run() {
        let kernel = UniformKernel::streaming(8, 3);
        for mode in [StepMode::PerSm, StepMode::Reference] {
            let mut cold = Gpu::new(cfg_with(mode), &kernel);
            let mut ctrl = FixedTuple::max();
            let full = cold.run(&mut ctrl, 9_000);

            let mut prefix = Gpu::new(cfg_with(mode), &kernel);
            let mut ctrl = FixedTuple::max();
            prefix.run(&mut ctrl, 4_000);
            let snap = prefix.snapshot();
            let mut forked = Gpu::restore(cfg_with(mode), &kernel, &snap).unwrap();
            let mut ctrl2 = FixedTuple::max();
            assert!(ctrl2.load_state(&ctrl.save_state()));
            let resumed = forked.resume(&mut ctrl2, 5_000);

            assert_eq!(resumed.counters, full.counters, "{mode:?}");
            assert_eq!(resumed.completed, full.completed, "{mode:?}");
            assert_eq!(forked.cycle(), cold.cycle(), "{mode:?}");
        }
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let kernel = UniformKernel::streaming(4, 2);
        let mut gpu = Gpu::new(cfg_with(StepMode::PerSm), &kernel);
        let mut ctrl = FixedTuple::max();
        gpu.run(&mut ctrl, 1_000);
        let snap = gpu.snapshot();
        let cut = &snap[..snap.len() / 2];
        let e = Gpu::restore(cfg_with(StepMode::PerSm), &kernel, cut).unwrap_err();
        assert!(e.0.contains("truncated") || e.0.contains("missing"), "{e}");
        assert!(validate(cut).is_err());
    }

    #[test]
    fn corrupt_snapshot_is_rejected() {
        let kernel = UniformKernel::streaming(4, 2);
        let mut gpu = Gpu::new(cfg_with(StepMode::PerSm), &kernel);
        let mut ctrl = FixedTuple::max();
        gpu.run(&mut ctrl, 1_000);
        let snap = gpu.snapshot();
        // Flip a record tag into garbage.
        let bad = snap.replacen("l1free", "l1frXe", 1);
        assert!(validate(&bad).is_err());
        // Geometry mismatch: restore under a different machine scale.
        let other = UniformKernel::streaming(4, 2);
        let e = Gpu::restore(GpuConfig::scaled(4), &other, &snap).unwrap_err();
        assert!(e.0.contains("geometry mismatch"), "{e}");
    }
}
