//! The warp instruction model and the kernel-source abstraction.
//!
//! Warps execute a stream of [`Instr`]s produced lazily by an
//! [`InstructionStream`]. The stream encodes both the instruction mix and
//! the data-dependence structure: a [`Instr::SyncLoads`] acts as the first
//! instruction that *uses* the values of all loads issued so far, so the
//! distance between a load and the following sync is the paper's
//! "instruction concurrency" and the number of loads issued back-to-back
//! before a sync is the warp's memory-level parallelism.

/// One warp-level instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// An arithmetic instruction with no outstanding-load dependence.
    Alu,
    /// A (coalesced) global load of one cache line.
    Load {
        /// Line address (the simulator addresses whole lines).
        line: u64,
        /// Static load-site identifier, used by per-PC policies (APCM).
        pc: u32,
    },
    /// A (coalesced) global store of one cache line. Stores are
    /// write-through/no-allocate and never stall the warp.
    Store {
        /// Line address.
        line: u64,
        /// Static store-site identifier.
        pc: u32,
    },
    /// Data dependence on all previously issued loads: the warp may not
    /// proceed past this point until every outstanding load has completed.
    /// Consumes no issue slot when no loads are outstanding.
    SyncLoads,
}

/// A lazy, per-warp instruction stream.
///
/// Streams may be unbounded (steady-state kernels); the simulator bounds
/// execution with a cycle limit.
///
/// `Send` because [`StepMode::ParallelSm`](crate::config::StepMode)
/// advances SMs (and therefore pulls from their warps' streams) on worker
/// threads.
pub trait InstructionStream: Send {
    /// Produce the next instruction, or `None` when the warp's trace ends.
    fn next_instr(&mut self) -> Option<Instr>;
}

/// A kernel: a factory of per-warp instruction streams plus launch geometry.
///
/// Implemented by the `workloads` crate; [`UniformKernel`] is a minimal
/// built-in implementation for tests and doc examples.
pub trait KernelSource {
    /// Create the instruction stream for the warp at the given position.
    fn stream_for(&self, sm: usize, scheduler: usize, warp: usize) -> Box<dyn InstructionStream>;

    /// Number of warps launched per scheduler (occupancy), `<=` the
    /// scheduler capacity.
    fn warps_per_scheduler(&self) -> usize;

    /// Number of distinct static load/store sites (PCs) the kernel uses.
    fn n_pcs(&self) -> usize {
        1
    }
}

/// A trivially uniform kernel for tests: every warp repeats
/// `alu_per_load` ALU instructions, one load, then a sync.
///
/// With `stride == 0` every warp repeatedly loads its own single line
/// (maximal intra-warp locality); with `stride > 0` the address advances
/// every iteration (pure streaming).
#[derive(Debug, Clone)]
pub struct UniformKernel {
    warps: usize,
    alu_per_load: usize,
    stride: u64,
}

impl UniformKernel {
    /// A streaming kernel: every load touches a fresh line.
    pub fn streaming(warps: usize, alu_per_load: usize) -> Self {
        UniformKernel {
            warps,
            alu_per_load,
            stride: 1,
        }
    }

    /// A fully cache-resident kernel: every warp re-loads one private line.
    pub fn resident(warps: usize, alu_per_load: usize) -> Self {
        UniformKernel {
            warps,
            alu_per_load,
            stride: 0,
        }
    }
}

impl KernelSource for UniformKernel {
    fn stream_for(&self, sm: usize, scheduler: usize, warp: usize) -> Box<dyn InstructionStream> {
        let uid = ((sm as u64) << 32) | ((scheduler as u64) << 16) | warp as u64;
        Box::new(UniformStream {
            base: (uid + 1) << 20,
            offset: 0,
            stride: self.stride,
            alu_per_load: self.alu_per_load,
            phase: 0,
        })
    }

    fn warps_per_scheduler(&self) -> usize {
        self.warps
    }
}

#[derive(Debug)]
struct UniformStream {
    base: u64,
    offset: u64,
    stride: u64,
    alu_per_load: usize,
    phase: usize,
}

impl InstructionStream for UniformStream {
    fn next_instr(&mut self) -> Option<Instr> {
        // Pattern: Alu x alu_per_load, Load, SyncLoads, repeat.
        let instr = if self.phase < self.alu_per_load {
            Instr::Alu
        } else if self.phase == self.alu_per_load {
            let line = self.base + self.offset;
            self.offset = self.offset.wrapping_add(self.stride);
            Instr::Load { line, pc: 0 }
        } else {
            Instr::SyncLoads
        };
        self.phase += 1;
        if self.phase == self.alu_per_load + 2 {
            self.phase = 0;
        }
        Some(instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_stream_emits_expected_pattern() {
        let k = UniformKernel::streaming(4, 2);
        let mut s = k.stream_for(0, 0, 0);
        assert_eq!(s.next_instr(), Some(Instr::Alu));
        assert_eq!(s.next_instr(), Some(Instr::Alu));
        match s.next_instr() {
            Some(Instr::Load { line, pc: 0 }) => {
                // Next load must differ (streaming).
                assert_eq!(s.next_instr(), Some(Instr::SyncLoads));
                s.next_instr();
                s.next_instr();
                match s.next_instr() {
                    Some(Instr::Load { line: l2, .. }) => assert_ne!(line, l2),
                    other => panic!("expected load, got {other:?}"),
                }
            }
            other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn resident_stream_reuses_one_line() {
        let k = UniformKernel::resident(1, 0);
        let mut s = k.stream_for(0, 0, 0);
        let mut lines = std::collections::HashSet::new();
        for _ in 0..32 {
            if let Some(Instr::Load { line, .. }) = s.next_instr() {
                lines.insert(line);
            }
        }
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn warps_are_address_disjoint() {
        let k = UniformKernel::streaming(2, 1);
        let mut a = k.stream_for(0, 0, 0);
        let mut b = k.stream_for(0, 0, 1);
        let la = loop {
            if let Some(Instr::Load { line, .. }) = a.next_instr() {
                break line;
            }
        };
        let lb = loop {
            if let Some(Instr::Load { line, .. }) = b.next_instr() {
                break line;
            }
        };
        assert_ne!(la, lb);
    }
}
