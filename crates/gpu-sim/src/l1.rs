//! The per-SM L1 data cache: tag store + MSHRs + pollute-bit bypass +
//! reuse classification + per-PC locality tracking.
//!
//! This module implements the cache-side half of Poise's warp-tuple
//! mechanism (paper Section VI-C): every load request carries the *pollute
//! bit* of its warp; on a miss, a polluting request reserves a line for the
//! fill while a non-polluting request is forwarded to the L2 **without**
//! reserving a line, so it can still hit on lines allocated by polluting
//! warps but can never evict them.

use crate::cache::{CacheLineState, Lookup, SetAssocCache};
use crate::config::GpuConfig;
use crate::stats::GpuStats;

/// Outcome of a load lookup in the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Hit on a valid line; data available after the L1 hit latency.
    Hit,
    /// Miss; a request was sent to the memory system (or merged into an
    /// in-flight one). The warp must wait for the fill.
    Miss {
        /// Index of the MSHR entry the request waits on.
        mshr: usize,
        /// Whether this allocated a new entry (primary miss) rather than
        /// merging (secondary miss).
        primary: bool,
    },
    /// Structural reject: MSHRs exhausted or merge limit reached. The load
    /// must be retried on a later cycle.
    Reject,
}

/// A warp waiting on an MSHR fill.
#[derive(Debug, Clone, Copy)]
pub struct MshrWaiter {
    /// Scheduler index within the SM.
    pub scheduler: u8,
    /// Warp index within the scheduler.
    pub warp: u8,
    /// Cycle at which the request was issued (for AML accounting).
    pub issued_at: u64,
}

#[derive(Debug, Clone)]
pub(crate) struct MshrEntry {
    pub(crate) line: u64,
    /// Reserved (set, way) in the tag store, or `None` for bypassing fills.
    pub(crate) target: Option<(usize, usize)>,
    pub(crate) waiters: Vec<MshrWaiter>,
    pub(crate) in_use: bool,
}

impl MshrEntry {
    fn free() -> Self {
        MshrEntry {
            line: 0,
            target: None,
            waiters: Vec::new(),
            in_use: false,
        }
    }
}

/// Per-PC (load-site) counters for APCM-style policies.
#[derive(Debug, Clone, Copy, Default)]
pub struct PcStats {
    /// Lookups issued by this PC.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Hits classified as intra-warp reuse.
    pub intra_hits: u64,
}

/// The L1 data cache of one SM.
///
/// The MSHR file is the hot structure of every load: a miss consults it
/// for a merge target and a primary miss allocates from it. Both paths are
/// kept off the entry array itself — `in_use` is a compact `(line, index)`
/// list scanned for merges (O(misses in flight), two cache lines instead
/// of the ~30 a full entry scan touches) and `free` is a stack popped for
/// allocation in O(1).
#[derive(Debug)]
pub struct L1Data {
    pub(crate) tags: SetAssocCache,
    pub(crate) mshrs: Vec<MshrEntry>,
    /// `(line, entry index)` of every in-use MSHR entry.
    pub(crate) in_use: Vec<(u64, u32)>,
    /// Free entry indices (allocation pops, completion pushes).
    pub(crate) free: Vec<u32>,
    pub(crate) merge_limit: usize,
    /// Per-PC counters (only maintained when enabled in the config).
    pub(crate) pc_stats: Vec<PcStats>,
    /// Per-PC force-bypass flags set by bypass policies.
    pub(crate) bypass_pc: Vec<bool>,
    pub(crate) track_pcs: bool,
}

impl L1Data {
    /// Build the L1 for one SM from the GPU configuration.
    pub fn new(cfg: &GpuConfig, n_pcs: usize) -> Self {
        L1Data {
            tags: SetAssocCache::new(cfg.l1),
            mshrs: vec![MshrEntry::free(); cfg.l1_mshrs],
            in_use: Vec::with_capacity(cfg.l1_mshrs),
            free: (0..cfg.l1_mshrs as u32).rev().collect(),
            merge_limit: cfg.mshr_merge_limit,
            pc_stats: vec![PcStats::default(); n_pcs.max(1)],
            bypass_pc: vec![false; n_pcs.max(1)],
            track_pcs: cfg.track_pc_stats,
        }
    }

    /// Access the underlying tag store (testing / inspection).
    pub fn tags(&self) -> &SetAssocCache {
        &self.tags
    }

    /// Number of MSHR entries currently in use.
    pub fn mshrs_in_use(&self) -> usize {
        self.in_use.len()
    }

    /// Set or clear the force-bypass flag of a load PC (APCM).
    pub fn set_bypass_pc(&mut self, pc: usize, bypass: bool) {
        if pc < self.bypass_pc.len() {
            self.bypass_pc[pc] = bypass;
        }
    }

    /// Per-PC counters gathered so far.
    pub fn pc_stats(&self) -> &[PcStats] {
        &self.pc_stats
    }

    /// Reset per-PC counters.
    pub fn reset_pc_stats(&mut self) {
        for s in &mut self.pc_stats {
            *s = PcStats::default();
        }
    }

    /// Perform a load lookup.
    ///
    /// `warp_bit` is the SM-local warp index (scheduler * capacity + warp)
    /// used for intra/inter-warp reuse classification; `polluting` is the
    /// warp's pollute bit; `waiter` identifies the warp for wakeup.
    #[allow(clippy::too_many_arguments)]
    pub fn access_load(
        &mut self,
        line: u64,
        warp_bit: u32,
        polluting: bool,
        pc: u32,
        now: u64,
        waiter: MshrWaiter,
        stats: &mut GpuStats,
    ) -> AccessOutcome {
        let polluting = polluting && !self.bypass_pc.get(pc as usize).copied().unwrap_or(false);
        // Structural rejects are counted separately and do NOT count as
        // cache accesses: the load is replayed later and is counted when it
        // actually proceeds (otherwise retry storms under MSHR exhaustion
        // deflate every hit-rate metric).
        match self.tags.access(line) {
            Lookup::Hit { set, way } => {
                self.count_access(polluting, pc, stats);
                let l = self.tags.line_mut(set, way);
                let mask = 1u64 << (warp_bit % 64);
                let intra = l.touchers & mask != 0;
                l.touchers |= mask;
                stats.bump(|c| {
                    c.l1_hits += 1;
                    if intra {
                        c.l1_intra_hits += 1;
                    } else {
                        c.l1_inter_hits += 1;
                    }
                    if polluting {
                        c.l1_hits_polluting += 1;
                    } else {
                        c.l1_hits_non_polluting += 1;
                    }
                });
                if self.track_pcs {
                    if let Some(s) = self.pc_stats.get_mut(pc as usize) {
                        s.hits += 1;
                        if intra {
                            s.intra_hits += 1;
                        }
                    }
                }
                AccessOutcome::Hit
            }
            Lookup::PendingHit { .. } | Lookup::Miss => {
                // Try to merge into an in-flight request for the same line.
                if let Some(idx) = self.find_mshr(line) {
                    if self.mshrs[idx].waiters.len() >= self.merge_limit {
                        stats.bump(|c| c.l1_rejects += 1);
                        return AccessOutcome::Reject;
                    }
                    self.count_access(polluting, pc, stats);
                    self.mshrs[idx].waiters.push(MshrWaiter {
                        issued_at: now,
                        ..waiter
                    });
                    stats.bump(|c| c.mshr_merges += 1);
                    return AccessOutcome::Miss {
                        mshr: idx,
                        primary: false,
                    };
                }
                // Primary miss: need a free MSHR.
                let Some(free_idx) = self.free.pop() else {
                    stats.bump(|c| c.l1_rejects += 1);
                    return AccessOutcome::Reject;
                };
                self.count_access(polluting, pc, stats);
                let idx = free_idx as usize;
                self.in_use.push((line, free_idx));
                // Polluting warps reserve a line for the fill; non-polluting
                // requests bypass allocation. If the set is entirely
                // reserved, fall back to bypassing.
                let target = if polluting {
                    self.tags.pick_victim(line).map(|(set, way)| {
                        self.tags.reserve(set, way, line);
                        (set, way)
                    })
                } else {
                    None
                };
                let e = &mut self.mshrs[idx];
                e.in_use = true;
                e.line = line;
                e.target = target;
                e.waiters.clear();
                e.waiters.push(MshrWaiter {
                    issued_at: now,
                    ..waiter
                });
                stats.bump(|c| c.mshr_allocations += 1);
                AccessOutcome::Miss {
                    mshr: idx,
                    primary: true,
                }
            }
        }
    }

    /// Handle a store: write-through, no-allocate, write-evict on hit.
    pub fn access_store(&mut self, line: u64) {
        self.tags.invalidate(line);
    }

    /// Complete the fill of MSHR entry `mshr` at time `now`, draining the
    /// waiters into `out` for warp wake-up. `out` is cleared first; using a
    /// caller-owned scratch (instead of returning a fresh `Vec`) keeps the
    /// per-fill hot path allocation-free — `drain` preserves the MSHR
    /// entry's waiter capacity for reuse too.
    pub fn complete_fill_into(
        &mut self,
        mshr: usize,
        now: u64,
        stats: &mut GpuStats,
        out: &mut Vec<MshrWaiter>,
    ) {
        out.clear();
        let e = &mut self.mshrs[mshr];
        debug_assert!(e.in_use, "fill of a free MSHR entry");
        out.append(&mut e.waiters);
        let waiters: &[MshrWaiter] = out;
        // Touchers: all waiting warps have logically touched the line.
        let mut touchers = 0u64;
        for w in waiters {
            let warp_bit = sm_local_warp_bit(w.scheduler, w.warp);
            touchers |= 1u64 << (warp_bit % 64);
        }
        if let Some((set, way)) = e.target {
            // The reservation may have been invalidated by a store; only
            // fill if still reserved for this line.
            let l = self.tags.line(set, way);
            if l.state == CacheLineState::Reserved && l.tag == e.line {
                self.tags.fill(set, way, touchers);
            }
        }
        e.in_use = false;
        e.target = None;
        let pos = self
            .in_use
            .iter()
            .position(|&(_, i)| i as usize == mshr)
            .expect("completed entry was in use");
        self.in_use.swap_remove(pos);
        self.free.push(mshr as u32);
        stats.bump(|c| {
            c.l1_misses_completed += waiters.len() as u64;
            c.miss_latency_sum += waiters
                .iter()
                .map(|w| now.saturating_sub(w.issued_at))
                .sum::<u64>();
        });
    }

    /// [`Self::complete_fill_into`] with a freshly allocated waiter list.
    #[cfg(test)]
    pub fn complete_fill(
        &mut self,
        mshr: usize,
        now: u64,
        stats: &mut GpuStats,
    ) -> Vec<MshrWaiter> {
        let mut out = Vec::new();
        self.complete_fill_into(mshr, now, stats, &mut out);
        out
    }

    fn find_mshr(&self, line: u64) -> Option<usize> {
        self.in_use
            .iter()
            .find(|&&(l, _)| l == line)
            .map(|&(_, i)| i as usize)
    }

    /// Count one real (non-rejected) cache access.
    fn count_access(&mut self, polluting: bool, pc: u32, stats: &mut GpuStats) {
        stats.bump(|c| {
            c.l1_accesses += 1;
            if polluting {
                c.l1_accesses_polluting += 1;
            } else {
                c.l1_accesses_non_polluting += 1;
            }
        });
        if self.track_pcs {
            if let Some(s) = self.pc_stats.get_mut(pc as usize) {
                s.accesses += 1;
            }
        }
    }
}

/// SM-local warp identifier used in line toucher bitmasks.
#[inline]
pub fn sm_local_warp_bit(scheduler: u8, warp: u8) -> u32 {
    (scheduler as u32) * 24 + warp as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn l1() -> (L1Data, GpuStats) {
        let mut cfg = GpuConfig::scaled(1);
        cfg.l1_mshrs = 4;
        cfg.mshr_merge_limit = 2;
        (L1Data::new(&cfg, 4), GpuStats::new())
    }

    fn waiter(s: u8, w: u8) -> MshrWaiter {
        MshrWaiter {
            scheduler: s,
            warp: w,
            issued_at: 0,
        }
    }

    #[test]
    fn polluting_miss_fill_then_hit() {
        let (mut l1, mut st) = l1();
        let out = l1.access_load(42, 0, true, 0, 10, waiter(0, 0), &mut st);
        let mshr = match out {
            AccessOutcome::Miss {
                mshr,
                primary: true,
            } => mshr,
            other => panic!("expected primary miss, got {other:?}"),
        };
        assert_eq!(l1.mshrs_in_use(), 1);
        let ws = l1.complete_fill(mshr, 110, &mut st);
        assert_eq!(ws.len(), 1);
        assert_eq!(st.total.miss_latency_sum, 100);
        assert_eq!(st.total.l1_misses_completed, 1);
        // Line now resident.
        assert_eq!(
            l1.access_load(42, 0, true, 0, 120, waiter(0, 0), &mut st),
            AccessOutcome::Hit
        );
        assert_eq!(st.total.l1_hits, 1);
    }

    #[test]
    fn non_polluting_miss_does_not_allocate() {
        let (mut l1, mut st) = l1();
        let out = l1.access_load(7, 1, false, 0, 0, waiter(0, 1), &mut st);
        let mshr = match out {
            AccessOutcome::Miss { mshr, .. } => mshr,
            other => panic!("expected miss, got {other:?}"),
        };
        l1.complete_fill(mshr, 100, &mut st);
        // Still a miss: the fill bypassed the tag store.
        assert!(matches!(
            l1.access_load(7, 1, false, 0, 200, waiter(0, 1), &mut st),
            AccessOutcome::Miss { .. }
        ));
        assert_eq!(l1.tags().valid_lines(), 0);
    }

    #[test]
    fn secondary_miss_merges_and_respects_limit() {
        let (mut l1, mut st) = l1();
        let m0 = match l1.access_load(9, 0, true, 0, 0, waiter(0, 0), &mut st) {
            AccessOutcome::Miss {
                mshr,
                primary: true,
            } => mshr,
            o => panic!("{o:?}"),
        };
        match l1.access_load(9, 1, true, 0, 1, waiter(0, 1), &mut st) {
            AccessOutcome::Miss {
                mshr,
                primary: false,
            } => assert_eq!(mshr, m0),
            o => panic!("{o:?}"),
        }
        // Merge limit is 2: the third requester is rejected.
        assert_eq!(
            l1.access_load(9, 2, true, 0, 2, waiter(0, 2), &mut st),
            AccessOutcome::Reject
        );
        assert_eq!(st.total.mshr_merges, 1);
        assert_eq!(st.total.l1_rejects, 1);
        // Fill wakes both waiters and counts both latencies.
        let ws = l1.complete_fill(m0, 50, &mut st);
        assert_eq!(ws.len(), 2);
        assert_eq!(st.total.l1_misses_completed, 2);
    }

    #[test]
    fn mshr_exhaustion_rejects() {
        let (mut l1, mut st) = l1();
        for i in 0..4u64 {
            assert!(matches!(
                l1.access_load(100 + i, 0, true, 0, 0, waiter(0, 0), &mut st),
                AccessOutcome::Miss { .. }
            ));
        }
        assert_eq!(
            l1.access_load(999, 0, true, 0, 0, waiter(0, 0), &mut st),
            AccessOutcome::Reject
        );
    }

    #[test]
    fn intra_vs_inter_warp_classification() {
        let (mut l1, mut st) = l1();
        let m = match l1.access_load(5, 3, true, 0, 0, waiter(0, 3), &mut st) {
            AccessOutcome::Miss { mshr, .. } => mshr,
            o => panic!("{o:?}"),
        };
        l1.complete_fill(m, 10, &mut st);
        // Same warp (bit 3): intra-warp hit.
        l1.access_load(5, 3, true, 0, 20, waiter(0, 3), &mut st);
        assert_eq!(st.total.l1_intra_hits, 1);
        // Different warp (bit 7): inter-warp hit, then it becomes a toucher.
        l1.access_load(5, 7, true, 0, 21, waiter(0, 7), &mut st);
        assert_eq!(st.total.l1_inter_hits, 1);
        l1.access_load(5, 7, true, 0, 22, waiter(0, 7), &mut st);
        assert_eq!(st.total.l1_intra_hits, 2);
    }

    #[test]
    fn bypass_pc_forces_non_polluting() {
        let (mut l1, mut st) = l1();
        l1.set_bypass_pc(2, true);
        let m = match l1.access_load(77, 0, true, 2, 0, waiter(0, 0), &mut st) {
            AccessOutcome::Miss { mshr, .. } => mshr,
            o => panic!("{o:?}"),
        };
        l1.complete_fill(m, 10, &mut st);
        assert_eq!(l1.tags().valid_lines(), 0, "bypassed PC must not allocate");
        // Accounting also treats it as non-polluting.
        assert_eq!(st.total.l1_accesses_non_polluting, 1);
    }

    #[test]
    fn store_invalidates_resident_line() {
        let (mut l1, mut st) = l1();
        let m = match l1.access_load(11, 0, true, 0, 0, waiter(0, 0), &mut st) {
            AccessOutcome::Miss { mshr, .. } => mshr,
            o => panic!("{o:?}"),
        };
        l1.complete_fill(m, 10, &mut st);
        assert_eq!(l1.tags().valid_lines(), 1);
        l1.access_store(11);
        assert_eq!(l1.tags().valid_lines(), 0);
    }
}
