//! Per-warp execution state.

use crate::instruction::{Instr, InstructionStream};

/// Maximum depth of the optional per-warp reuse-distance stack.
const REUSE_STACK_CAP: usize = 4096;

/// Execution state of one warp.
pub struct Warp {
    pub(crate) stream: Box<dyn InstructionStream>,
    /// An instruction fetched but not yet issued (e.g. a load rejected for
    /// structural reasons); retried before fetching further.
    pub(crate) pending: Option<Instr>,
    /// Number of loads issued and not yet completed.
    pub outstanding_loads: u32,
    /// Blocked at a [`Instr::SyncLoads`] with loads outstanding.
    pub waiting_sync: bool,
    /// The warp's trace ended.
    pub done: bool,
    /// Instructions issued by this warp.
    pub instructions: u64,
    /// Instructions issued since the previous global load (for `In`).
    pub since_last_load: u64,
    /// Whether any load has been issued yet (first gap is not counted).
    pub seen_load: bool,
    /// Instructions consumed from the stream so far (excludes stashed
    /// retries). Streams are arbitrary boxed iterators, so a snapshot
    /// cannot serialise them — it records this count instead, and restore
    /// replays a fresh stream past the same number of instructions.
    pub(crate) fetched: u64,
    /// Optional LRU stack of line addresses for reuse-distance profiling.
    pub(crate) reuse_stack: Option<Vec<u64>>,
    /// Lines ever touched by this warp (censored-distance accounting).
    pub(crate) seen_lines: std::collections::HashSet<u64>,
}

impl std::fmt::Debug for Warp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Warp")
            .field("outstanding_loads", &self.outstanding_loads)
            .field("waiting_sync", &self.waiting_sync)
            .field("done", &self.done)
            .field("instructions", &self.instructions)
            .finish()
    }
}

impl Warp {
    /// Wrap an instruction stream into a fresh warp.
    pub fn new(stream: Box<dyn InstructionStream>, track_reuse: bool) -> Self {
        Warp {
            stream,
            pending: None,
            outstanding_loads: 0,
            waiting_sync: false,
            done: false,
            instructions: 0,
            since_last_load: 0,
            seen_load: false,
            fetched: 0,
            reuse_stack: track_reuse.then(Vec::new),
            seen_lines: std::collections::HashSet::new(),
        }
    }

    /// Whether the scheduler may consider this warp for issue.
    #[inline]
    pub fn ready(&self) -> bool {
        !self.done && !self.waiting_sync
    }

    /// Whether the warp still has (or may have) work.
    #[inline]
    pub fn live(&self) -> bool {
        !self.done || self.outstanding_loads > 0
    }

    /// Whether an instruction is stashed for retry (so the next
    /// [`Warp::fetch`] will not consume the stream).
    #[inline]
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Fetch the next instruction to attempt, honouring a stashed one.
    pub fn fetch(&mut self) -> Option<Instr> {
        if let Some(i) = self.pending.take() {
            return Some(i);
        }
        match self.stream.next_instr() {
            Some(i) => {
                self.fetched += 1;
                Some(i)
            }
            None => {
                self.done = true;
                None
            }
        }
    }

    /// Skip the first `n` instructions of a *fresh* stream (snapshot
    /// restore): advances the stream past the instructions the snapshotted
    /// warp had already consumed, without touching any other state.
    pub(crate) fn replay_stream(&mut self, n: u64) {
        for _ in 0..n {
            let i = self.stream.next_instr();
            debug_assert!(i.is_some(), "stream shorter than its snapshot");
        }
        self.fetched = n;
    }

    /// Stash an instruction that could not be issued this cycle.
    pub fn stash(&mut self, i: Instr) {
        debug_assert!(self.pending.is_none());
        self.pending = Some(i);
    }

    /// Record completion of one outstanding load, possibly unblocking a
    /// pending sync.
    pub fn load_completed(&mut self) {
        debug_assert!(self.outstanding_loads > 0);
        self.outstanding_loads -= 1;
        if self.outstanding_loads == 0 {
            self.waiting_sync = false;
        }
    }

    /// Observe a load address in the reuse-distance stack; returns the LRU
    /// stack distance (in unique lines) if this was a *distinct-line*
    /// reuse.
    ///
    /// Immediate repeats (distance 0) are not counted as reuses — they say
    /// nothing about working-set size — and reuses whose distance exceeds
    /// the stack capacity are censored at the capacity (the line was seen
    /// before but fell off the stack), so long-distance workloads like
    /// bfs/cfd still report large values instead of dropping them.
    pub fn observe_reuse(&mut self, line: u64) -> Option<u64> {
        let stack = self.reuse_stack.as_mut()?;
        let dist = if let Some(pos) = stack.iter().position(|&l| l == line) {
            let d = pos as u64;
            stack.remove(pos);
            stack.insert(0, line);
            (d > 0).then_some(d)
        } else {
            stack.insert(0, line);
            if stack.len() > REUSE_STACK_CAP {
                stack.pop();
            }
            self.seen_lines
                .contains(&line)
                .then_some(REUSE_STACK_CAP as u64)
        };
        self.seen_lines.insert(line);
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedStream(Vec<Instr>);
    impl InstructionStream for FixedStream {
        fn next_instr(&mut self) -> Option<Instr> {
            if self.0.is_empty() {
                None
            } else {
                Some(self.0.remove(0))
            }
        }
    }

    #[test]
    fn fetch_prefers_stashed_instruction() {
        let mut w = Warp::new(Box::new(FixedStream(vec![Instr::Alu])), false);
        w.stash(Instr::SyncLoads);
        assert_eq!(w.fetch(), Some(Instr::SyncLoads));
        assert_eq!(w.fetch(), Some(Instr::Alu));
        assert_eq!(w.fetch(), None);
        assert!(w.done);
    }

    #[test]
    fn load_completion_unblocks_sync() {
        let mut w = Warp::new(Box::new(FixedStream(vec![])), false);
        w.outstanding_loads = 2;
        w.waiting_sync = true;
        assert!(!w.ready());
        w.load_completed();
        assert!(!w.ready());
        w.load_completed();
        assert!(w.ready() || w.done); // sync cleared
        assert!(!w.waiting_sync);
    }

    #[test]
    fn reuse_stack_reports_stack_distance() {
        let mut w = Warp::new(Box::new(FixedStream(vec![])), true);
        assert_eq!(w.observe_reuse(1), None);
        assert_eq!(w.observe_reuse(2), None);
        assert_eq!(w.observe_reuse(3), None);
        // Reusing 1 after touching 2 and 3: distance 2.
        assert_eq!(w.observe_reuse(1), Some(2));
        // Immediate repeats carry no working-set information.
        assert_eq!(w.observe_reuse(1), None);
    }

    #[test]
    fn long_distance_reuse_is_censored_not_dropped() {
        let mut w = Warp::new(Box::new(FixedStream(vec![])), true);
        assert_eq!(w.observe_reuse(42), None);
        // Push 42 far beyond the stack capacity.
        for l in 100..(100 + super::REUSE_STACK_CAP as u64 + 10) {
            w.observe_reuse(l);
        }
        // The revisit is censored at the capacity rather than ignored.
        assert_eq!(w.observe_reuse(42), Some(super::REUSE_STACK_CAP as u64));
    }

    #[test]
    fn reuse_tracking_disabled_returns_none() {
        let mut w = Warp::new(Box::new(FixedStream(vec![])), false);
        assert_eq!(w.observe_reuse(1), None);
        assert_eq!(w.observe_reuse(1), None);
    }
}
