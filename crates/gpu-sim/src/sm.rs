//! One streaming multiprocessor: warps, schedulers, L1, issue logic.

use crate::config::GpuConfig;
use crate::instruction::{Instr, KernelSource};
use crate::l1::{sm_local_warp_bit, AccessOutcome, L1Data, MshrWaiter};
use crate::memsys::MemRequester;
use crate::scheduler::WarpScheduler;
use crate::stats::GpuStats;
use crate::warp::Warp;
use crate::WarpTuple;

/// Maximum scheduler candidates probed per cycle (arbitration width).
const MAX_ISSUE_ATTEMPTS: usize = 8;
/// Maximum zero-cost `SyncLoads` skips per candidate per cycle.
const MAX_SYNC_SKIPS: usize = 4;

/// A load-completion event destined for this SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmEvent {
    /// An L1 fill completed for the given MSHR entry.
    Fill {
        /// MSHR entry index.
        mshr: usize,
    },
    /// A load hit's data became available for one warp.
    HitDone {
        /// Scheduler index.
        scheduler: u8,
        /// Warp index within the scheduler.
        warp: u8,
    },
}

/// One streaming multiprocessor.
///
/// Beyond the architectural state, the SM maintains two per-scheduler
/// summaries so that the run loops' "can anything issue?" and "is anything
/// live?" tests are O(schedulers) instead of O(warps):
///
/// * `ready_mask[s]` — bit `w` set iff warp `w` of scheduler `s` has
///   [`Warp::ready`] true; intersected with the vital prefix
///   `tuple.n` it yields the issue candidates of a cycle, and the issue
///   scan walks its set bits instead of probing every slot;
/// * `live_warps[s]` — warps of scheduler `s` with [`Warp::live`] true.
///
/// Both are maintained incrementally at every warp state transition
/// (issue-side blocking, stream exhaustion, load completion); tuple
/// steering needs no recompute because the mask covers all warps and the
/// vital prefix is applied at query time.
pub struct Sm {
    /// SM index within the GPU.
    pub id: usize,
    /// Warp schedulers (baseline: 2).
    pub schedulers: Vec<WarpScheduler>,
    /// Warps, indexed `[scheduler][warp]`.
    pub warps: Vec<Vec<Warp>>,
    /// The L1 data cache.
    pub l1: L1Data,
    pub(crate) hit_latency: u64,
    /// Per-scheduler readiness bitmask (bit `w` = warp `w` is ready).
    pub(crate) ready_mask: Vec<u64>,
    /// Per-scheduler count of live warps.
    pub(crate) live_warps: Vec<u32>,
    /// Monotone version of the SM's observable warp state: bumped on
    /// every ready/live transition and on every instruction pulled from a
    /// stream. A cycle that issues nothing and leaves the version
    /// unchanged touched nothing but reject/stall counters — it will
    /// replay bit-identically until an event arrives (the basis of the
    /// decoupled loop's structural-stall fast-forward).
    pub(crate) version: u64,
    /// Reused scratch for fill completions: [`L1Data::complete_fill_into`]
    /// drains each MSHR entry's waiters into this buffer so the hot path
    /// allocates nothing per fill.
    pub(crate) fill_scratch: Vec<MshrWaiter>,
}

/// Bitmask of the `n` lowest warp slots.
#[inline]
fn warp_mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

impl std::fmt::Debug for Sm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sm").field("id", &self.id).finish()
    }
}

/// Callback used by the SM to schedule future events; implemented by the
/// GPU's event queue.
pub trait EventSink {
    /// Schedule `ev` for SM `sm` at absolute cycle `at`.
    fn schedule(&mut self, at: u64, sm: usize, ev: SmEvent);
}

impl Sm {
    /// Build an SM and instantiate its warps from the kernel source.
    pub fn new(id: usize, cfg: &GpuConfig, kernel: &dyn KernelSource) -> Self {
        let n_warps = kernel
            .warps_per_scheduler()
            .clamp(1, cfg.max_warps_per_scheduler);
        let schedulers = (0..cfg.schedulers_per_sm)
            .map(|_| WarpScheduler::new(n_warps))
            .collect();
        let warps = (0..cfg.schedulers_per_sm)
            .map(|s| {
                (0..n_warps)
                    .map(|w| Warp::new(kernel.stream_for(id, s, w), cfg.track_reuse_distance))
                    .collect()
            })
            .collect();
        debug_assert!(n_warps <= 64, "readiness bitmask is u64-wide");
        // Fresh warps are all ready and live.
        let ready_mask = vec![warp_mask(n_warps); cfg.schedulers_per_sm];
        let live_warps = vec![n_warps as u32; cfg.schedulers_per_sm];
        Sm {
            id,
            schedulers,
            warps,
            l1: L1Data::new(cfg, kernel.n_pcs()),
            hit_latency: cfg.l1_hit_latency,
            ready_mask,
            live_warps,
            version: 0,
            fill_scratch: Vec::new(),
        }
    }

    /// The SM's warp-state version (see the field docs).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Rebuild the derived readiness/liveness structures from the warps
    /// themselves. Used after a snapshot restore writes warp state
    /// directly; the masks are pure functions of [`Warp::ready`] /
    /// [`Warp::live`], so recomputing (rather than serialising) them keeps
    /// the snapshot format minimal.
    pub(crate) fn recompute_activity(&mut self) {
        for (s, warps) in self.warps.iter().enumerate() {
            let mut mask = 0u64;
            let mut live = 0u32;
            for (w, warp) in warps.iter().enumerate() {
                if warp.ready() {
                    mask |= 1u64 << w;
                }
                if warp.live() {
                    live += 1;
                }
            }
            self.ready_mask[s] = mask;
            self.live_warps[s] = live;
        }
    }

    /// Install a warp-tuple on every scheduler of this SM. O(schedulers):
    /// the readiness mask covers all warps, so moving the vital boundary
    /// needs no recompute.
    pub fn set_tuple(&mut self, t: WarpTuple) {
        for sched in self.schedulers.iter_mut() {
            sched.set_tuple(t);
        }
    }

    /// The ready vital warps of scheduler `s`, as a bitmask.
    #[inline]
    fn issue_candidates(&self, s: usize) -> u64 {
        let sched = &self.schedulers[s];
        self.ready_mask[s] & warp_mask(sched.tuple().n.min(sched.n_warps))
    }

    /// Whether any warp still has work (instructions or outstanding
    /// loads). O(schedulers) via the incremental liveness counters.
    pub fn live(&self) -> bool {
        self.live_warps.iter().any(|&c| c > 0)
    }

    /// Whether any scheduler has a ready vital warp, i.e. whether stepping
    /// this SM could have any effect this cycle. O(schedulers).
    pub fn can_issue(&self) -> bool {
        (0..self.schedulers.len()).any(|s| self.issue_candidates(s) != 0)
    }

    /// Number of schedulers that still manage live warps (these accrue
    /// `stall_scheduler_cycles` on cycles with no issue).
    pub fn live_scheduler_count(&self) -> u64 {
        self.live_warps.iter().filter(|&&c| c > 0).count() as u64
    }

    /// Apply `f` to one warp, incrementally maintaining the ready/live
    /// counters across the state transition `f` may cause.
    #[inline]
    fn update_warp<R>(&mut self, sched: usize, w: usize, f: impl FnOnce(&mut Warp) -> R) -> R {
        let warp = &mut self.warps[sched][w];
        let was_ready = warp.ready();
        let was_live = warp.live();
        let r = f(warp);
        let now_ready = warp.ready();
        let now_live = warp.live();
        if was_ready != now_ready {
            let bit = 1u64 << w;
            if now_ready {
                self.ready_mask[sched] |= bit;
            } else {
                self.ready_mask[sched] &= !bit;
            }
            self.version += 1;
        }
        if was_live != now_live {
            if now_live {
                self.live_warps[sched] += 1;
            } else {
                self.live_warps[sched] -= 1;
            }
            self.version += 1;
        }
        r
    }

    /// Advance this SM by one cycle: each scheduler attempts one issue.
    ///
    /// Generic over the memory requester so the parallel step mode can
    /// substitute a per-SM [`crate::memsys::PortRequester`] (append-only,
    /// no shared state) without virtual dispatch on the issue hot path.
    pub fn step<M: MemRequester>(
        &mut self,
        now: u64,
        mem: &mut M,
        events: &mut dyn EventSink,
        stats: &mut GpuStats,
    ) {
        for sched_idx in 0..self.schedulers.len() {
            // With no ready vital warp the candidate scan cannot issue (or
            // have any side effect); the mask makes that check O(1).
            let issued = self.issue_candidates(sched_idx) != 0
                && self.issue_one(sched_idx, now, mem, events, stats);
            let any_live = self.live_warps[sched_idx] > 0;
            stats.bump(|c| {
                if issued {
                    c.busy_scheduler_cycles += 1;
                } else if any_live {
                    c.stall_scheduler_cycles += 1;
                }
            });
        }
    }

    fn issue_one<M: MemRequester>(
        &mut self,
        sched_idx: usize,
        now: u64,
        mem: &mut M,
        events: &mut dyn EventSink,
        stats: &mut GpuStats,
    ) -> bool {
        // GTO priority order: greedy favourite first, then vital warps
        // oldest-first. The scan walks the set bits of the readiness mask
        // (blocked warps cost nothing); at most MAX_ISSUE_ATTEMPTS ready
        // warps are probed per cycle (arbitration width). A probe can only
        // change the probed warp's own state, so the snapshot taken here
        // matches a fresh readiness check at every candidate.
        let sched = &self.schedulers[sched_idx];
        let mut ready = self.issue_candidates(sched_idx);
        let greedy = sched.greedy_warp().filter(|&g| sched.vital(g));
        let mut attempts = 0;
        if let Some(g) = greedy {
            let bit = 1u64 << g;
            if ready & bit != 0 {
                attempts += 1;
                if let Some(kind) = self.try_issue(sched_idx, g, now, mem, events, stats) {
                    self.note_issued(sched_idx, g, kind, stats);
                    return true;
                }
            }
            ready &= !bit;
        }
        while ready != 0 {
            let w_idx = ready.trailing_zeros() as usize;
            ready &= ready - 1;
            attempts += 1;
            if attempts > MAX_ISSUE_ATTEMPTS {
                break;
            }
            if let Some(kind) = self.try_issue(sched_idx, w_idx, now, mem, events, stats) {
                self.note_issued(sched_idx, w_idx, kind, stats);
                return true;
            }
        }
        false
    }

    /// Book-keeping for a successful issue: greedy favourite, instruction
    /// counts, and the load-gap statistics behind the paper's `In`.
    fn note_issued(
        &mut self,
        sched_idx: usize,
        w_idx: usize,
        kind: IssuedKind,
        stats: &mut GpuStats,
    ) {
        self.schedulers[sched_idx].note_issue(w_idx);
        let warp = &mut self.warps[sched_idx][w_idx];
        warp.instructions += 1;
        stats.bump(|c| c.instructions += 1);
        match kind {
            IssuedKind::Load => {
                if warp.seen_load {
                    let gap = warp.since_last_load;
                    stats.bump(|c| {
                        c.in_gap_sum += gap;
                        c.in_gap_count += 1;
                    });
                }
                warp.seen_load = true;
                warp.since_last_load = 0;
                stats.bump(|c| c.loads += 1);
            }
            IssuedKind::Store => {
                warp.since_last_load += 1;
                stats.bump(|c| c.stores += 1);
            }
            IssuedKind::Alu => {
                warp.since_last_load += 1;
            }
        }
    }

    /// Attempt to issue the next instruction of a warp. Returns the kind of
    /// instruction issued, or `None` if the warp could not issue (stalled,
    /// structurally rejected, or ran out of instructions).
    fn try_issue<M: MemRequester>(
        &mut self,
        sched_idx: usize,
        w_idx: usize,
        now: u64,
        mem: &mut M,
        events: &mut dyn EventSink,
        stats: &mut GpuStats,
    ) -> Option<IssuedKind> {
        let polluting = self.schedulers[sched_idx].pollute(w_idx);
        for _ in 0..MAX_SYNC_SKIPS {
            // `fetch` may exhaust the stream (ready/live transition) and a
            // sync with loads outstanding blocks the warp (ready
            // transition); route both through the counter-tracking helper.
            // A fetch that pulls from the stream (rather than re-reading a
            // stashed instruction) advances warp state even when nothing
            // issues, so it bumps the version.
            if !self.warps[sched_idx][w_idx].has_pending() {
                self.version += 1;
            }
            let instr = self.update_warp(sched_idx, w_idx, Warp::fetch)?;
            match instr {
                Instr::Alu => return Some(IssuedKind::Alu),
                Instr::SyncLoads => {
                    let blocked = self.update_warp(sched_idx, w_idx, |warp| {
                        if warp.outstanding_loads > 0 {
                            warp.waiting_sync = true;
                            true
                        } else {
                            false
                        }
                    });
                    if blocked {
                        return None;
                    }
                    // Satisfied syncs are free; keep fetching.
                    continue;
                }
                Instr::Store { line, .. } => {
                    self.l1.access_store(line);
                    mem.write(self.id, line, now, stats);
                    return Some(IssuedKind::Store);
                }
                Instr::Load { line, pc } => {
                    let warp = &mut self.warps[sched_idx][w_idx];
                    if let Some(dist) = warp.observe_reuse(line) {
                        stats.bump(|c| {
                            c.reuse_distance_sum += dist;
                            c.reuse_distance_count += 1;
                        });
                    }
                    let warp_bit = sm_local_warp_bit(sched_idx as u8, w_idx as u8);
                    let waiter = MshrWaiter {
                        scheduler: sched_idx as u8,
                        warp: w_idx as u8,
                        issued_at: now,
                    };
                    match self
                        .l1
                        .access_load(line, warp_bit, polluting, pc, now, waiter, stats)
                    {
                        AccessOutcome::Hit => {
                            let warp = &mut self.warps[sched_idx][w_idx];
                            warp.outstanding_loads += 1;
                            events.schedule(
                                now + self.hit_latency,
                                self.id,
                                SmEvent::HitDone {
                                    scheduler: sched_idx as u8,
                                    warp: w_idx as u8,
                                },
                            );
                            return Some(IssuedKind::Load);
                        }
                        AccessOutcome::Miss { mshr, primary } => {
                            let warp = &mut self.warps[sched_idx][w_idx];
                            warp.outstanding_loads += 1;
                            if primary {
                                // The memory system schedules the fill —
                                // immediately, or (in deferred mode) once
                                // the request is applied in global order.
                                mem.read(self.id, line, now, mshr, events, stats);
                            }
                            return Some(IssuedKind::Load);
                        }
                        AccessOutcome::Reject => {
                            // Structural hazard: stash and let the scheduler
                            // try another warp this cycle.
                            let warp = &mut self.warps[sched_idx][w_idx];
                            warp.stash(instr);
                            return None;
                        }
                    }
                }
            }
        }
        None
    }

    /// Deliver an event (fill or hit completion) to this SM.
    pub fn handle_event(&mut self, ev: SmEvent, now: u64, stats: &mut GpuStats) {
        match ev {
            SmEvent::Fill { mshr } => {
                let mut waiters = std::mem::take(&mut self.fill_scratch);
                self.l1.complete_fill_into(mshr, now, stats, &mut waiters);
                for w in &waiters {
                    self.update_warp(w.scheduler as usize, w.warp as usize, Warp::load_completed);
                }
                waiters.clear();
                self.fill_scratch = waiters;
            }
            SmEvent::HitDone { scheduler, warp } => {
                self.update_warp(scheduler as usize, warp as usize, Warp::load_completed);
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssuedKind {
    Alu,
    Load,
    Store,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::UniformKernel;
    use crate::memsys::MemSystem;

    struct VecSink(Vec<(u64, usize, SmEvent)>);
    impl EventSink for VecSink {
        fn schedule(&mut self, at: u64, sm: usize, ev: SmEvent) {
            self.0.push((at, sm, ev));
        }
    }

    fn setup(kernel: &UniformKernel) -> (Sm, MemSystem, GpuStats, VecSink) {
        let cfg = GpuConfig::scaled(1);
        (
            Sm::new(0, &cfg, kernel),
            MemSystem::new(&cfg),
            GpuStats::new(),
            VecSink(Vec::new()),
        )
    }

    #[test]
    fn alu_instructions_issue_every_cycle() {
        // alu_per_load = 4 means mostly ALU work early on.
        let k = UniformKernel::streaming(1, 4);
        let (mut sm, mut mem, mut st, mut ev) = setup(&k);
        for t in 0..4 {
            sm.step(t, &mut mem, &mut ev, &mut st);
        }
        // 2 schedulers x 4 cycles, all ALU at first.
        assert_eq!(st.total.instructions, 8);
        assert_eq!(st.total.busy_scheduler_cycles, 8);
    }

    #[test]
    fn load_miss_schedules_fill_event() {
        let k = UniformKernel::streaming(1, 0);
        let (mut sm, mut mem, mut st, mut ev) = setup(&k);
        sm.step(0, &mut mem, &mut ev, &mut st);
        assert_eq!(st.total.loads, 2); // one per scheduler
        assert_eq!(ev.0.len(), 2);
        assert!(matches!(ev.0[0].2, SmEvent::Fill { .. }));
    }

    #[test]
    fn warp_stalls_at_sync_until_fill() {
        let k = UniformKernel::streaming(1, 0);
        let (mut sm, mut mem, mut st, mut ev) = setup(&k);
        // Cycle 0: load issues. Cycle 1: sync blocks (load outstanding).
        sm.step(0, &mut mem, &mut ev, &mut st);
        sm.step(1, &mut mem, &mut ev, &mut st);
        assert_eq!(st.total.stall_scheduler_cycles, 2);
        // Deliver the fills; warps resume.
        let events: Vec<_> = ev.0.drain(..).collect();
        for (at, _, e) in events {
            sm.handle_event(e, at, &mut st);
        }
        let before = st.total.instructions;
        sm.step(1_000, &mut mem, &mut ev, &mut st);
        assert!(st.total.instructions > before);
    }

    #[test]
    fn hit_completion_wakes_warp() {
        let k = UniformKernel::resident(1, 0);
        let (mut sm, mut mem, mut st, mut ev) = setup(&k);
        // First load misses; complete it.
        sm.step(0, &mut mem, &mut ev, &mut st);
        let events: Vec<_> = ev.0.drain(..).collect();
        for (at, _, e) in events {
            sm.handle_event(e, at, &mut st);
        }
        // Second load to the same line: must be an L1 hit with a HitDone.
        sm.step(500, &mut mem, &mut ev, &mut st);
        assert_eq!(st.total.l1_hits, 2);
        assert!(ev
            .0
            .iter()
            .any(|(_, _, e)| matches!(e, SmEvent::HitDone { .. })));
    }

    #[test]
    fn non_vital_warps_do_not_issue() {
        let k = UniformKernel::streaming(8, 4);
        let (mut sm, mut mem, mut st, mut ev) = setup(&k);
        sm.set_tuple(WarpTuple::new(1, 1, 8));
        for t in 0..20 {
            sm.step(t, &mut mem, &mut ev, &mut st);
        }
        // Only warp 0 of each scheduler may have issued.
        for sched in &sm.warps {
            for (i, w) in sched.iter().enumerate() {
                if i == 0 {
                    assert!(w.instructions > 0);
                } else {
                    assert_eq!(w.instructions, 0, "warp {i} issued while non-vital");
                }
            }
        }
    }

    #[test]
    fn in_gap_tracks_instructions_between_loads() {
        let k = UniformKernel::streaming(1, 3);
        let (mut sm, mut mem, mut st, mut ev) = setup(&k);
        let mut t = 0;
        while st.total.in_gap_count < 4 && t < 10_000 {
            sm.step(t, &mut mem, &mut ev, &mut st);
            let events: Vec<_> = ev.0.drain(..).collect();
            for (at, _, e) in events {
                sm.handle_event(e, at.max(t), &mut st);
            }
            t += 1;
        }
        assert!(st.total.in_gap_count >= 4);
        // Gap between loads is the 3 ALU instructions (sync is free).
        assert_eq!(st.total.in_gap_sum / st.total.in_gap_count, 3);
    }
}
