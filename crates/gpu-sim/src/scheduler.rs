//! The greedy-then-oldest (GTO) warp scheduler with Poise's vital and
//! pollute bits.
//!
//! Each scheduler manages an age-ordered queue of warps (warp index equals
//! age: all warps of a kernel activate at launch). Poise's modification
//! (paper Fig. 6) adds per-entry *vital* and *pollute* bits derived from the
//! active warp-tuple `{N, p}`: only the `N` oldest warps are arbitrated,
//! and only the `p` oldest carry polluting privileges on their loads.

use crate::WarpTuple;

/// Scheduling state of one warp scheduler (not the warps themselves, which
/// live in the SM so they can be shared with the memory path).
#[derive(Debug, Clone)]
pub struct WarpScheduler {
    /// Number of warp slots populated for this kernel.
    pub n_warps: usize,
    /// Active warp-tuple. Snapshot restore writes this raw (bypassing the
    /// [`WarpScheduler::set_tuple`] clamp) so the restored value is
    /// bit-identical to the saved one.
    pub(crate) tuple: WarpTuple,
    /// Index of the warp currently favoured by the greedy policy.
    pub(crate) greedy: usize,
}

impl WarpScheduler {
    /// Create a scheduler over `n_warps` warps, starting at the maximal
    /// tuple (all warps vital and polluting).
    pub fn new(n_warps: usize) -> Self {
        WarpScheduler {
            n_warps,
            tuple: WarpTuple::max(n_warps),
            greedy: 0,
        }
    }

    /// The active warp-tuple.
    pub fn tuple(&self) -> WarpTuple {
        self.tuple
    }

    /// Install a new warp-tuple (clamped to this scheduler's warp count).
    pub fn set_tuple(&mut self, t: WarpTuple) {
        self.tuple = WarpTuple::new(t.n, t.p, self.n_warps);
    }

    /// Vital bit of warp `w`: participates in arbitration.
    #[inline]
    pub fn vital(&self, w: usize) -> bool {
        w < self.tuple.n
    }

    /// Pollute bit of warp `w`: loads may allocate L1 lines.
    #[inline]
    pub fn pollute(&self, w: usize) -> bool {
        w < self.tuple.p
    }

    /// Record that warp `w` issued; it becomes the greedy favourite.
    #[inline]
    pub fn note_issue(&mut self, w: usize) {
        self.greedy = w;
    }

    /// The warp currently favoured by the greedy policy, if any warp has
    /// issued yet.
    #[inline]
    pub fn greedy_warp(&self) -> Option<usize> {
        (self.greedy < self.n_warps).then_some(self.greedy)
    }

    /// Candidate warps in GTO priority order: the greedy favourite first,
    /// then remaining vital warps oldest-first.
    ///
    /// The returned iterator yields at most `N` distinct warp indices.
    pub fn candidates(&self) -> impl Iterator<Item = usize> + '_ {
        let greedy = if self.vital(self.greedy) {
            Some(self.greedy)
        } else {
            None
        };
        greedy
            .into_iter()
            .chain((0..self.tuple.n.min(self.n_warps)).filter(move |&w| Some(w) != greedy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_start_with_greedy_then_oldest() {
        let mut s = WarpScheduler::new(4);
        s.note_issue(2);
        let order: Vec<_> = s.candidates().collect();
        assert_eq!(order, vec![2, 0, 1, 3]);
    }

    #[test]
    fn candidates_respect_vital_limit() {
        let mut s = WarpScheduler::new(8);
        s.set_tuple(WarpTuple::new(3, 1, 8));
        s.note_issue(5); // no longer vital
        let order: Vec<_> = s.candidates().collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn pollute_bits_cover_p_oldest() {
        let mut s = WarpScheduler::new(8);
        s.set_tuple(WarpTuple::new(6, 2, 8));
        assert!(s.pollute(0) && s.pollute(1));
        assert!(!s.pollute(2));
        assert!(s.vital(5) && !s.vital(6));
    }

    #[test]
    fn set_tuple_clamps_to_warp_count() {
        let mut s = WarpScheduler::new(4);
        s.set_tuple(WarpTuple::new(24, 24, 24));
        assert_eq!(s.tuple(), WarpTuple { n: 4, p: 4 });
    }

    #[test]
    fn greedy_warp_listed_once() {
        let mut s = WarpScheduler::new(4);
        s.note_issue(0);
        let order: Vec<_> = s.candidates().collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }
}
