//! The top-level GPU: SMs + shared memory system + event queues + run loop.
//!
//! ## Run loops and the fast-forward hierarchy
//!
//! Memory-bound phases — exactly the regimes Poise targets — spend most
//! cycles with every vital warp blocked on an outstanding load. The
//! simulator ships three run loops over identical architectural state
//! (selected by [`StepMode`]), each proven **bit-identical** to the next
//! by the differential suite in the `poise` crate:
//!
//! * [`StepMode::Reference`] steps every cycle of every SM.
//! * [`StepMode::EventDriven`] detects globally-dead cycles — no scheduler
//!   on *any* SM has a ready vital warp — in O(SMs × schedulers) via the
//!   [`Sm`] readiness counters and jumps the single global clock to
//!   `min(next event, next controller wake − 1, budget end)`, bulk-
//!   accounting the skipped span. One busy scheduler anywhere pins the
//!   whole machine to stepping, which caps the win at high occupancy.
//! * [`StepMode::PerSm`] (the default) gives every SM its **own local
//!   clock** and lets it run ahead — and skip its own stalled spans —
//!   independently of the others. It also bulk-replays **structural
//!   stalls** (ready warps retrying rejected loads against exhausted
//!   MSHRs, where no "nothing can issue" span ever appears): a stepped
//!   cycle that issues nothing and leaves the SM's warp-state version
//!   unchanged can only have bumped reject/stall counters, so its exact
//!   replicas up to the next event are accounted without stepping.
//!
//! ## The per-SM horizon invariant
//!
//! SMs interact only through two channels, and each bounds how far one SM
//! may run ahead:
//!
//! 1. **The shared memory system.** L2 banks and DRAM partitions are
//!    stateful queues; requests must be serviced in the exact
//!    `(cycle, SM, scheduler)` order the reference loop issues them. In
//!    per-SM mode requests therefore park on per-SM ports
//!    ([`MemSystem::read`] / [`MemSystem::write`] in deferred mode) and
//!    are applied by [`MemSystem::apply_ready`] only once no SM with a
//!    smaller `(local clock, SM id)` key can still issue an
//!    earlier-ordered request. Deferral gives the issuer lookahead: a read
//!    issued at cycle `t` cannot fill before `t + l2_hit_round_trip`, so
//!    [`MemSystem::safe_horizon`] lets the SM keep executing cycles
//!    strictly below that bound while the request's true completion time
//!    is still unknown.
//! 2. **The controller.** Steering and window sampling are global-time
//!    operations, so [`Controller::on_cycle`] fires only at **global
//!    barriers**: the wakes the controller declares via
//!    [`Controller::next_wake`] (all skipped `on_cycle`s are pure no-ops
//!    by that contract), clamped to the budget end. Every SM must reach
//!    the barrier before the controller runs, and all SMs leave the
//!    barrier in lockstep — so steering decisions, window samples and
//!    epoch logs are bit-identical with the stepped loops.
//!
//! An SM at local cycle `c` may therefore execute `c` iff
//! `c < min(next event addressed to it, memory safe horizon, barrier)`.
//! The outer loop repeatedly picks the **laggard** SM (smallest
//! `(clock, id)`), applies newly-safe memory requests, and advances it to
//! its private horizon; the laggard always progresses (its own pending
//! reads are by construction safe to apply), so the loop cannot deadlock.
//! Kernel drain is detected per SM — the cycle after which it has no live
//! warp, no queued event and no unresolved request — and the global
//! completion cycle is `max(per-SM drain) + 1`, exactly where the
//! reference loop's global check fires.
//!
//! Skipped spans are bulk-accounted exactly as the reference loop would:
//! global `cycles` advances at barriers by the epoch length, and every
//! scheduler with live warps accrues `stall_scheduler_cycles` for each
//! skipped local cycle (no scheduler can issue inside a span by
//! construction, and warp state only changes through events or controller
//! steering, neither of which occurs inside a span). All counters — IPC,
//! AML, hit rates, gap statistics — are therefore bit-identical across
//! the three modes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Mutex;

use crate::config::{GpuConfig, StepMode};
use crate::controller::{ControlCtx, Controller};
use crate::energy::EnergyBreakdown;
use crate::instruction::KernelSource;
use crate::memsys::{MemSystem, Port, PortRequester};
use crate::sm::{EventSink, Sm, SmEvent};
use crate::stats::{Counters, GpuStats, SmFastForward};
use crate::threadpool::ThreadPool;

/// A scheduled event: ordered by time, then by insertion sequence for
/// determinism. Queues are per-SM, so the SM id lives in the queue index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct QueuedEvent {
    pub(crate) at: u64,
    pub(crate) seq: u64,
    pub(crate) ev_kind: u8,
    pub(crate) ev_a: u32,
    pub(crate) ev_b: u32,
}

impl QueuedEvent {
    fn pack(at: u64, seq: u64, ev: SmEvent) -> Self {
        match ev {
            SmEvent::Fill { mshr } => QueuedEvent {
                at,
                seq,
                ev_kind: 0,
                ev_a: mshr as u32,
                ev_b: 0,
            },
            SmEvent::HitDone { scheduler, warp } => QueuedEvent {
                at,
                seq,
                ev_kind: 1,
                ev_a: scheduler as u32,
                ev_b: warp as u32,
            },
        }
    }

    fn unpack(&self) -> SmEvent {
        match self.ev_kind {
            0 => SmEvent::Fill {
                mshr: self.ev_a as usize,
            },
            _ => SmEvent::HitDone {
                scheduler: self.ev_a as u8,
                warp: self.ev_b as u8,
            },
        }
    }
}

/// Per-SM event queues. Events only ever target state of their own SM, so
/// per-SM ordering (time, then insertion sequence) fully determines
/// behaviour; the stepped loops drain all queues at each global cycle.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    pub(crate) queues: Vec<BinaryHeap<Reverse<QueuedEvent>>>,
    pub(crate) seqs: Vec<u64>,
}

impl EventQueue {
    fn new(sms: usize) -> Self {
        EventQueue {
            queues: (0..sms).map(|_| BinaryHeap::new()).collect(),
            seqs: vec![0; sms],
        }
    }

    /// Pop the next event for `sm` due at or before `now`, if any.
    fn pop_due(&mut self, sm: usize, now: u64) -> Option<SmEvent> {
        let q = &mut self.queues[sm];
        if q.peek().is_some_and(|r| r.0.at <= now) {
            Some(q.pop().expect("peeked").0.unpack())
        } else {
            None
        }
    }

    /// Time of the next event for `sm`.
    fn next_at(&self, sm: usize) -> Option<u64> {
        self.queues[sm].peek().map(|r| r.0.at)
    }

    /// Time of the next event on any SM.
    fn next_at_any(&self) -> Option<u64> {
        (0..self.queues.len()).filter_map(|i| self.next_at(i)).min()
    }

    fn all_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }
}

impl EventSink for EventQueue {
    fn schedule(&mut self, at: u64, sm: usize, ev: SmEvent) {
        self.seqs[sm] += 1;
        self.queues[sm].push(Reverse(QueuedEvent::pack(at, self.seqs[sm], ev)));
    }
}

/// Event sink scoped to one SM's queue, so the decoupled loop can hold the
/// queue and the SM mutably at once. An SM only ever schedules completions
/// for itself.
struct SmSink<'a> {
    sm: usize,
    q: &'a mut BinaryHeap<Reverse<QueuedEvent>>,
    seq: &'a mut u64,
}

impl EventSink for SmSink<'_> {
    fn schedule(&mut self, at: u64, sm: usize, ev: SmEvent) {
        debug_assert_eq!(sm, self.sm, "SMs only schedule their own events");
        *self.seq += 1;
        self.q.push(Reverse(QueuedEvent::pack(at, *self.seq, ev)));
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Cycles simulated.
    pub cycles: u64,
    /// Cumulative counters.
    pub counters: Counters,
    /// Energy breakdown under the configured energy model.
    pub energy: EnergyBreakdown,
    /// Whether the kernel drained before the cycle budget expired.
    pub completed: bool,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.counters.ipc()
    }
}

/// The simulated GPU.
pub struct Gpu {
    pub(crate) cfg: GpuConfig,
    pub(crate) sms: Vec<Sm>,
    pub(crate) mem: MemSystem,
    pub(crate) events: EventQueue,
    pub(crate) stats: GpuStats,
    pub(crate) cycle: u64,
    pub(crate) kernel_warps: usize,
    /// Whether a previous `run` drained the kernel. A drained machine
    /// replays a degenerate epoch if its run loop is re-entered (the
    /// completion cycle is re-derived one higher each call), so
    /// [`Gpu::resume`] short-circuits on this flag instead — the snapshot
    /// codec persists it precisely so a restored post-drain machine
    /// settles to the same counters as an uninterrupted run.
    pub(crate) drained: bool,
    /// Per-SM local clocks (per-SM mode; equal to `cycle` at barriers).
    pub(crate) clocks: Vec<u64>,
    /// Per-SM drain cycle: the local cycle during which the SM's last
    /// state change occurred, once it has no live warp and no queued
    /// event. `max + 1` is the global completion cycle.
    pub(crate) done_at: Vec<Option<u64>>,
    /// Lazy-deletion min-heap of `(local clock, SM id)` used by the
    /// decoupled loop to pick the laggard and the request-safety frontier
    /// in O(log SMs) instead of rescanning every SM per advance. Owned by
    /// the `Gpu` (rather than rebuilt per epoch) so its allocation is
    /// reused across epochs — `clear()` keeps the capacity.
    pub(crate) frontier_heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Worker pool of [`StepMode::ParallelSm`], built lazily on the first
    /// parallel run and reused across rounds, epochs and `run()` calls so
    /// the per-round cost is a condvar wake, not a thread spawn.
    pub(crate) pool: Option<ThreadPool>,
    /// Per-SM scratch statistics for parallel rounds (each advancing lane
    /// accumulates into its own, merged sequentially in SM id order);
    /// reused across rounds to avoid reallocation.
    pub(crate) lane_scratch: Vec<GpuStats>,
    /// Reused scratch listing the SMs whose port went empty → non-empty
    /// during a parallel round and must be re-registered in the memory
    /// system's front heap.
    pub(crate) reindex_scratch: Vec<usize>,
    /// Global-skip diagnostics of [`StepMode::EventDriven`]:
    /// (spans taken, cycles skipped).
    pub(crate) ff_spans: u64,
    pub(crate) ff_cycles: u64,
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("sms", &self.sms.len())
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl Gpu {
    /// Instantiate a GPU and launch `kernel` on it (one stream per warp).
    pub fn new(cfg: GpuConfig, kernel: &dyn KernelSource) -> Self {
        let sms: Vec<Sm> = (0..cfg.sms).map(|i| Sm::new(i, &cfg, kernel)).collect();
        let mut mem = MemSystem::new(&cfg);
        mem.set_deferred(matches!(
            cfg.step_mode,
            StepMode::PerSm | StepMode::ParallelSm
        ));
        let kernel_warps = kernel
            .warps_per_scheduler()
            .clamp(1, cfg.max_warps_per_scheduler);
        let mut stats = GpuStats::new();
        stats.fast_forward = vec![SmFastForward::default(); cfg.sms];
        Gpu {
            events: EventQueue::new(cfg.sms),
            clocks: vec![0; cfg.sms],
            done_at: vec![None; cfg.sms],
            frontier_heap: BinaryHeap::new(),
            pool: None,
            lane_scratch: Vec::new(),
            reindex_scratch: Vec::new(),
            sms,
            mem,
            stats,
            cycle: 0,
            cfg,
            kernel_warps,
            drained: false,
            ff_spans: 0,
            ff_cycles: 0,
        }
    }

    /// The configuration this GPU was built with.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The SMs (for inspection in tests and tools).
    pub fn sms(&self) -> &[Sm] {
        &self.sms
    }

    /// Cumulative statistics so far.
    pub fn stats(&self) -> &GpuStats {
        &self.stats
    }

    /// Mutable statistics access, e.g. to reset the window between a
    /// warmup and a measurement phase when driving the GPU directly.
    pub fn stats_mut(&mut self) -> &mut GpuStats {
        &mut self.stats
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Aggregate fast-forward diagnostics since construction:
    /// `(spans_taken, cycles_skipped)`, summing the global skips of
    /// [`StepMode::EventDriven`] and the per-SM skips of
    /// [`StepMode::PerSm`] (SM-local cycles, so the sum can exceed the
    /// global cycle count on multi-SM machines). Always `(0, 0)` in
    /// [`StepMode::Reference`].
    pub fn fast_forward_stats(&self) -> (u64, u64) {
        let per_sm = &self.stats.fast_forward;
        (
            self.ff_spans + per_sm.iter().map(|f| f.spans).sum::<u64>(),
            self.ff_cycles + per_sm.iter().map(|f| f.skipped).sum::<u64>(),
        )
    }

    /// Per-SM fast-forward breakdown (spans, skipped SM-cycles, horizon
    /// stalls), indexed by SM id. Only [`StepMode::PerSm`] populates it;
    /// use it to see *why* a workload does not skip (frequent
    /// `horizon_stalls` mean the SM keeps hitting the shared-memory
    /// horizon; zero `spans` mean its schedulers stay busy).
    pub fn fast_forward_breakdown(&self) -> &[SmFastForward] {
        &self.stats.fast_forward
    }

    /// Build the controller's view of the machine at the current cycle.
    fn control_ctx(&mut self) -> ControlCtx<'_> {
        ControlCtx {
            cycle: self.cycle,
            max_warps: self.cfg.max_warps_per_scheduler,
            kernel_warps: self.kernel_warps,
            sms: &mut self.sms,
            stats: &mut self.stats,
            in_declared_quiet_span: false,
        }
    }

    /// Run under `controller` for at most `max_cycles` further cycles, or
    /// until every warp drains. Can be called repeatedly to continue.
    pub fn run(&mut self, controller: &mut dyn Controller, max_cycles: u64) -> SimResult {
        controller.on_kernel_start(&mut self.control_ctx());
        self.run_body(controller, max_cycles)
    }

    /// Continue a run — typically one restored from a snapshot — without
    /// re-firing [`Controller::on_kernel_start`], so that
    /// `run(j); resume(k − j)` is bit-identical to `run(k)` on a machine
    /// whose controller state was carried across (the snapshot codec does
    /// both). A machine whose kernel already drained returns immediately
    /// with the settled counters (re-entering the run loop would replay a
    /// degenerate drain epoch and shift the completion cycle).
    pub fn resume(&mut self, controller: &mut dyn Controller, max_cycles: u64) -> SimResult {
        if self.drained {
            controller.on_kernel_end(&mut self.control_ctx());
            return self.result(true);
        }
        self.run_body(controller, max_cycles)
    }

    fn run_body(&mut self, controller: &mut dyn Controller, max_cycles: u64) -> SimResult {
        let end = self.cycle + max_cycles;
        let completed = match self.cfg.step_mode {
            StepMode::PerSm => self.run_decoupled(controller, end),
            // At one thread the round structure of the parallel loop is
            // pure overhead; the sequential decoupled loop is the same
            // algorithm minus the rounds (bit-identical), so use it.
            // The choice is a pure function of the config — a dry
            // thread budget at `sim_threads > 1` still runs the round
            // loop (inline), it does not silently change the loop.
            StepMode::ParallelSm if self.cfg.sim_threads <= 1 => {
                self.run_decoupled(controller, end)
            }
            StepMode::ParallelSm => self.run_parallel(controller, end),
            StepMode::EventDriven | StepMode::Reference => self.run_stepped(controller, end),
        };
        self.drained = self.drained || completed;
        controller.on_kernel_end(&mut self.control_ctx());
        self.result(completed)
    }

    fn result(&self, completed: bool) -> SimResult {
        SimResult {
            cycles: self.stats.total.cycles,
            counters: self.stats.total,
            energy: EnergyBreakdown::from_counters(
                &self.stats.total,
                &self.cfg.energy,
                self.cfg.sms,
            ),
            completed,
        }
    }

    /// The single-clock loop of [`StepMode::Reference`] and
    /// [`StepMode::EventDriven`]: every SM steps every global cycle (with
    /// the optional globally-stalled skip in between).
    fn run_stepped(&mut self, controller: &mut dyn Controller, end: u64) -> bool {
        let fast_forward = self.cfg.step_mode == StepMode::EventDriven;
        // Debug builds track the controller's declared `next_wake` so the
        // `ControlCtx` methods can assert the quiet-span contract: an
        // `on_cycle(t)` with `t` strictly before the declared wake (or
        // after a declared `None`) must be a pure no-op. The stepped
        // loops are the only place a violation is *observable* — the
        // fast-forwarding loops skip those cycles outright — so this is
        // where third-party controllers get caught before the
        // differential suite has to diagnose a divergence.
        let mut declared_wake: Option<Option<u64>> = None;
        // Cooperative cancellation: the engine's watchdog installs a
        // token on the executing thread; poll it where the controller
        // fires (every stepped cycle). A cancelled run's counters are
        // partial garbage by contract — the caller discards them.
        let cancel = crate::cancel::current();
        while self.cycle < end {
            if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                return false;
            }
            // Deliver all events due at or before this cycle.
            for sm_idx in 0..self.sms.len() {
                while let Some(ev) = self.events.pop_due(sm_idx, self.cycle) {
                    self.sms[sm_idx].handle_event(ev, self.cycle, &mut self.stats);
                }
            }
            // Step every SM.
            for sm in &mut self.sms {
                sm.step(self.cycle, &mut self.mem, &mut self.events, &mut self.stats);
            }
            self.cycle += 1;
            self.stats.bump(|c| c.cycles += 1);
            let mut ctx = self.control_ctx();
            ctx.in_declared_quiet_span = match declared_wake {
                Some(None) => true,
                Some(Some(w)) => ctx.cycle < w,
                None => false,
            };
            controller.on_cycle(&mut ctx);
            if cfg!(debug_assertions) {
                declared_wake = Some(controller.next_wake(self.cycle));
            }
            // Exact drain check: O(SMs × schedulers) with the incremental
            // liveness counters, so the completion cycle is precise (the
            // seed's interval-256 check overcounted up to 255 cycles).
            if self.events.all_empty() && !self.sms.iter().any(|sm| sm.live()) {
                return true;
            }
            if fast_forward {
                self.fast_forward(controller, end);
            }
        }
        false
    }

    /// Jump the global clock across a span in which nothing can happen
    /// ([`StepMode::EventDriven`] only).
    ///
    /// Preconditions established by the caller: `on_cycle(self.cycle)` has
    /// run and the kernel has not drained. The skip triggers only when no
    /// scheduler on any SM has a ready vital warp; the span is bounded so
    /// it never crosses a scheduled event, a controller wake, or the
    /// budget end (the wake bound is `w − 1` because the stepped loop
    /// calls `on_cycle(w)` after stepping cycle `w − 1`, so cycle `w − 1`
    /// must be stepped for the wake to fire at the same point).
    fn fast_forward(&mut self, controller: &dyn Controller, end: u64) {
        if self.sms.iter().any(|sm| sm.can_issue()) {
            return;
        }
        // With live warps and no pending events the machine could only
        // deadlock (cannot happen: a blocked warp always waits on a
        // scheduled completion); stepping wouldn't change that, so the
        // skip is still faithful — but stay conservative and only skip up
        // to a bound we can actually name.
        let next_event = self.events.next_at_any().unwrap_or(u64::MAX);
        let mut target = next_event.min(end);
        if let Some(wake) = controller.next_wake(self.cycle) {
            // Cycle `wake − 1` must be stepped so `on_cycle(wake)` fires
            // in loop order, exactly as the reference loop would.
            target = target.min(wake.saturating_sub(1));
        }
        if target <= self.cycle {
            return;
        }
        let span = target - self.cycle;
        // Bulk-account the span exactly as `span` stepped stall cycles:
        // every cycle bumps `cycles`; each scheduler that still manages
        // live warps bumps `stall_scheduler_cycles` (none can issue).
        let stalled: u64 = self.sms.iter().map(|sm| sm.live_scheduler_count()).sum();
        self.stats.bump(|c| {
            c.cycles += span;
            c.stall_scheduler_cycles += span * stalled;
        });
        self.cycle = target;
        self.ff_spans += 1;
        self.ff_cycles += span;
    }

    /// The decoupled loop of [`StepMode::PerSm`]: between controller
    /// barriers, repeatedly advance the laggard SM to its private horizon,
    /// applying shared-memory requests in global order as their safety
    /// frontier passes (see the module docs for the invariant).
    fn run_decoupled(&mut self, controller: &mut dyn Controller, end: u64) -> bool {
        // All SMs are synchronised at run entry.
        for c in &mut self.clocks {
            *c = self.cycle;
        }
        let mut completed = false;
        // Polled once per controller barrier (epoch), the only points
        // where this loop is globally synchronised; see `run_stepped`.
        let cancel = crate::cancel::current();
        while self.cycle < end {
            if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                return false;
            }
            let epoch_start = self.cycle;
            let barrier = controller
                .next_wake(epoch_start)
                .unwrap_or(u64::MAX)
                .min(end)
                .max(epoch_start + 1);
            self.frontier_heap.clear();
            for i in 0..self.sms.len() {
                if self.done_at[i].is_none() {
                    self.frontier_heap.push(Reverse((epoch_start, i)));
                }
            }
            loop {
                // Also polled per laggard advance: a controller that
                // declares no wakes (e.g. a static tuple) makes the whole
                // budget one epoch, and an overdue run must still be
                // cancellable inside it. Partial counters are discarded
                // by the caller, so breaking mid-epoch is safe.
                if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                    return false;
                }
                // The heap top (stale entries lazily discarded) is both
                // the request-safety frontier — the minimum `(clock, id)`
                // over SMs that may still issue — and the laggard to
                // advance next.
                let top = loop {
                    match self.frontier_heap.peek() {
                        None => break None,
                        Some(&Reverse((c, i))) => {
                            if self.done_at[i].is_some() || self.clocks[i] != c {
                                self.frontier_heap.pop();
                            } else {
                                break Some((c, i));
                            }
                        }
                    }
                };
                let Some((c, i)) = top else {
                    // Every SM drained: flush the remaining (write-only)
                    // requests, which nothing can precede any more.
                    self.mem
                        .apply_ready((u64::MAX, 0), &mut self.events, &mut self.stats);
                    break;
                };
                self.mem
                    .apply_ready((c, i), &mut self.events, &mut self.stats);
                if c >= barrier {
                    break; // the laggard reached the barrier: all did
                }
                self.advance_sm(i, barrier);
                // A lane advance can break early when the watchdog fires
                // mid-advance; check before asserting progress.
                if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                    return false;
                }
                debug_assert!(
                    self.clocks[i] > c || self.done_at[i].is_some(),
                    "laggard must progress"
                );
                if self.done_at[i].is_none() {
                    self.frontier_heap.push(Reverse((self.clocks[i], i)));
                }
            }
            debug_assert_eq!(
                self.mem.pending_requests(),
                0,
                "requests drained at barrier"
            );
            // Every SM is now at `barrier`, or drained for good en route.
            let all_done = self.done_at.iter().all(|d| d.is_some());
            let epoch_end = if all_done {
                completed = true;
                self.done_at
                    .iter()
                    .filter_map(|d| d.map(|c| c + 1))
                    .max()
                    .unwrap_or(epoch_start + 1)
                    .max(epoch_start + 1)
            } else {
                barrier
            };
            self.stats.bump(|c| c.cycles += epoch_end - epoch_start);
            self.cycle = epoch_end;
            for c in &mut self.clocks {
                *c = epoch_end;
            }
            // Fire the controller exactly where the stepped loop would:
            // at the barrier. A pre-barrier drain skips the call — the
            // reference loop's `on_cycle` there is a no-op by the
            // `next_wake` contract.
            if epoch_end == barrier {
                controller.on_cycle(&mut self.control_ctx());
            }
            if completed {
                break;
            }
        }
        completed
    }

    /// Advance SM `i` on its local clock until the barrier, its own drain,
    /// or the conservative memory horizon stops it, skipping stalled
    /// spans in bulk along the way (the sequential laggard advance of
    /// [`StepMode::PerSm`], expressed as a one-off [`Lane`]).
    fn advance_sm(&mut self, i: usize, barrier: u64) {
        let min_fill = self.mem.min_fill_latency();
        {
            let port = &mut self.mem.ports_mut()[i];
            // `apply_ready((clock, i))` just drained every request this SM
            // issued before its current cycle, so its port is empty and
            // untracked — exactly the reindex contract.
            debug_assert!(port.is_empty(), "laggard port drained by apply_ready");
            let mut lane = Lane {
                id: i,
                sm: &mut self.sms[i],
                q: &mut self.events.queues[i],
                seq: &mut self.events.seqs[i],
                port,
                stats: &mut self.stats,
                ff_idx: i,
                clock: self.clocks[i],
                done_at: None,
                barrier,
                min_fill,
            };
            lane.advance();
            self.clocks[i] = lane.clock;
            if lane.done_at.is_some() {
                self.done_at[i] = lane.done_at;
            }
        }
        self.mem.reindex_port(i);
    }

    /// The parallel loop of [`StepMode::ParallelSm`]: the same epochs and
    /// barriers as [`Self::run_decoupled`], but within an epoch the SMs
    /// advance in **rounds** — every SM strictly below its own
    /// conservative horizon advances concurrently on the worker pool,
    /// issuing memory requests onto its private port — and a sequential
    /// reduction between rounds applies the parked requests through
    /// [`MemSystem::apply_ready`] in global `(cycle, SM)` order and merges
    /// the per-lane counters in SM id order.
    ///
    /// **Why this is bit-identical to `PerSm`.** Each SM's execution is a
    /// pure function of its own state and its delivered events. A lane
    /// only executes cycles strictly below `oldest unapplied read +
    /// min_fill_latency`, and no unapplied read can produce a fill before
    /// that bound, so every event a lane can ever receive for the cycles
    /// it executes is already in its queue — per-SM trajectories are
    /// schedule-independent. Requests are applied in the same global key
    /// order (the frontier sequence is non-decreasing in both loops), so
    /// the shared bank/partition state sees the identical request
    /// sequence and produces identical fill times. All architectural
    /// counters are commutative sums, merged in a fixed order. The only
    /// divergence is how skipped spans are *partitioned* (a round
    /// boundary can split one `PerSm` span in two), which moves the
    /// [`SmFastForward`] diagnostics but none of the architectural
    /// accounting — reject replay and stall bulk-accounting are
    /// span-partition-invariant.
    fn run_parallel(&mut self, controller: &mut dyn Controller, end: u64) -> bool {
        if self.pool.is_none() {
            self.pool = Some(ThreadPool::new(self.cfg.sim_threads.saturating_sub(1)));
        }
        if self.lane_scratch.len() != self.cfg.sms {
            self.lane_scratch = (0..self.cfg.sms)
                .map(|_| {
                    let mut s = GpuStats::new();
                    s.fast_forward = vec![SmFastForward::default()];
                    s
                })
                .collect();
        }
        for c in &mut self.clocks {
            *c = self.cycle;
        }
        let mut completed = false;
        let cancel = crate::cancel::current();
        while self.cycle < end {
            if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                return false;
            }
            let epoch_start = self.cycle;
            let barrier = controller
                .next_wake(epoch_start)
                .unwrap_or(u64::MAX)
                .min(end)
                .max(epoch_start + 1);
            loop {
                if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                    return false;
                }
                // The frontier: minimum `(clock, id)` over SMs that may
                // still issue. O(SMs) rescan per round (a round advances
                // many SMs, so there is no laggard heap to maintain).
                let frontier = self
                    .done_at
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.is_none())
                    .map(|(i, _)| (self.clocks[i], i))
                    .min();
                let Some((c, i)) = frontier else {
                    // Every SM drained: flush the remaining (write-only)
                    // requests, which nothing can precede any more.
                    self.mem
                        .apply_ready((u64::MAX, 0), &mut self.events, &mut self.stats);
                    break;
                };
                self.mem
                    .apply_ready((c, i), &mut self.events, &mut self.stats);
                if c >= barrier {
                    break; // the laggard reached the barrier: all did
                }
                self.advance_ready_lanes(barrier);
            }
            debug_assert_eq!(
                self.mem.pending_requests(),
                0,
                "requests drained at barrier"
            );
            // Identical epoch epilogue to `run_decoupled`.
            let all_done = self.done_at.iter().all(|d| d.is_some());
            let epoch_end = if all_done {
                completed = true;
                self.done_at
                    .iter()
                    .filter_map(|d| d.map(|c| c + 1))
                    .max()
                    .unwrap_or(epoch_start + 1)
                    .max(epoch_start + 1)
            } else {
                barrier
            };
            self.stats.bump(|c| c.cycles += epoch_end - epoch_start);
            self.cycle = epoch_end;
            for c in &mut self.clocks {
                *c = epoch_end;
            }
            if epoch_end == barrier {
                controller.on_cycle(&mut self.control_ctx());
            }
            if completed {
                break;
            }
        }
        completed
    }

    /// One parallel round: build a [`Lane`] for every SM strictly below
    /// its lane-local horizon, advance them on the pool (work-stealing
    /// over the ready list, caller participating), then sequentially — in
    /// SM id order — write back clocks/drains, fold the per-lane counter
    /// scratches into the global statistics, and re-register ports that
    /// went empty → non-empty in the memory system's front heap.
    fn advance_ready_lanes(&mut self, barrier: u64) {
        let min_fill = self.mem.min_fill_latency();
        let pool = self.pool.as_mut().expect("pool built at run entry");
        let ports = self.mem.ports_mut();
        let mut lanes: Vec<(Mutex<Lane<'_>>, bool)> = Vec::with_capacity(self.cfg.sms);
        for ((((sm, q), seq), port), scratch) in self
            .sms
            .iter_mut()
            .zip(self.events.queues.iter_mut())
            .zip(self.events.seqs.iter_mut())
            .zip(ports.iter_mut())
            .zip(self.lane_scratch.iter_mut())
        {
            let i = sm.id;
            if self.done_at[i].is_some() {
                continue;
            }
            let clock = self.clocks[i];
            if clock >= barrier {
                continue;
            }
            // The lane-local horizon: conservative (computed from the
            // lane's own unapplied reads, exactly like `safe_horizon`), so
            // a lane at or past it simply sits this round out — the
            // laggard, whose port the reduction just drained, is always
            // below it, so every round makes progress.
            let hz = port.next_read_at().map_or(u64::MAX, |at| at + min_fill);
            if clock >= hz {
                continue;
            }
            scratch.total = Counters::default();
            scratch.window = Counters::default();
            scratch.fast_forward[0] = SmFastForward::default();
            let was_empty = port.is_empty();
            lanes.push((
                Mutex::new(Lane {
                    id: i,
                    sm,
                    q,
                    seq,
                    port,
                    stats: scratch,
                    ff_idx: 0,
                    clock,
                    done_at: None,
                    barrier,
                    min_fill,
                }),
                was_empty,
            ));
        }
        pool.run(lanes.len(), |k| {
            let mut lane = lanes[k].0.try_lock().expect("each lane claimed once");
            lane.advance();
        });
        // Sequential reduction, in SM id order (lanes were built in it).
        self.reindex_scratch.clear();
        for (lane, was_empty) in &mut lanes {
            let lane = lane.get_mut().expect("round finished");
            self.clocks[lane.id] = lane.clock;
            if lane.done_at.is_some() {
                self.done_at[lane.id] = lane.done_at;
            }
            self.stats.total.accumulate(&lane.stats.total);
            self.stats.window.accumulate(&lane.stats.window);
            self.stats.fast_forward[lane.id].accumulate(&lane.stats.fast_forward[0]);
            if *was_empty && !lane.port.is_empty() {
                self.reindex_scratch.push(lane.id);
            }
        }
        drop(lanes);
        for k in 0..self.reindex_scratch.len() {
            self.mem.reindex_port(self.reindex_scratch[k]);
        }
    }
}

/// One SM's decoupled advance, bundling the disjoint `&mut` borrows a
/// worker needs: the SM, its event queue and sequence counter, its private
/// memory port, and a statistics sink (the real one with `ff_idx = id` in
/// the sequential loop; a per-lane scratch with `ff_idx = 0` in parallel
/// rounds, merged afterwards). `Send`, so parallel rounds can move lanes
/// to pool workers.
struct Lane<'a> {
    id: usize,
    sm: &'a mut Sm,
    q: &'a mut BinaryHeap<Reverse<QueuedEvent>>,
    seq: &'a mut u64,
    port: &'a mut Port,
    stats: &'a mut GpuStats,
    /// Index into `stats.fast_forward` for this lane's skip diagnostics.
    ff_idx: usize,
    /// Local clock (in/out).
    clock: u64,
    /// Drain cycle discovered by this advance, if any (out).
    done_at: Option<u64>,
    barrier: u64,
    /// [`MemSystem::min_fill_latency`], hoisted by the caller.
    min_fill: u64,
}

/// Lane advance iterations between cancellation polls: cheap enough to
/// keep watchdogs responsive inside a long parallel round, rare enough to
/// stay invisible on the hot path.
const CANCEL_POLL_MASK: u32 = 0xFFF;

impl Lane<'_> {
    /// The lane-local conservative horizon: first cycle that may not run
    /// until the oldest unapplied read has been applied in global order.
    /// Identical to [`MemSystem::safe_horizon`] — a port is the only
    /// memory state an SM's own reads park on.
    fn horizon(&self) -> u64 {
        self.port
            .next_read_at()
            .map_or(u64::MAX, |at| at + self.min_fill)
    }

    /// Advance until the barrier, the lane's drain, its horizon, or a
    /// cancellation stops it, skipping stalled spans in bulk along the
    /// way. The body is the former sequential `advance_sm`, verbatim up
    /// to the borrow seam: memory requests go through a [`PortRequester`]
    /// over the lane's own port (identical parking semantics; the front
    /// heap is reindexed by the caller afterwards).
    fn advance(&mut self) {
        // Re-read the token here (not at lane construction): on a pool
        // worker this picks up the token the pool re-installed from the
        // submitting thread, so watchdogs fire mid-round inside workers.
        let cancel = crate::cancel::current();
        let mut iters = 0u32;
        let mut clock = self.clock;
        // The conservative horizon: re-queried only while unknown — while
        // advancing, the oldest unapplied read can only change from
        // "none" to "the first read issued here" (later reads queue
        // behind it and applies happen outside the advance).
        let mut hz = self.horizon();
        loop {
            iters = iters.wrapping_add(1);
            if iters & CANCEL_POLL_MASK == 0 && cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                break;
            }
            if clock >= self.barrier {
                break;
            }
            // Deliver every event due at the SM's current cycle (events at
            // the barrier itself belong to the next epoch, after the
            // controller has run — hence the barrier check above).
            while self.q.peek().is_some_and(|r| r.0.at <= clock) {
                let ev = self.q.pop().expect("peeked").0.unpack();
                self.sm.handle_event(ev, clock, self.stats);
            }
            // Drained by a delivery: no live warp, no queued event, and
            // (implied) no unresolved read. The cycle of the last delivery
            // is the SM's drain cycle.
            if !self.sm.live() && self.q.is_empty() {
                debug_assert_eq!(hz, u64::MAX);
                self.done_at = Some(clock);
                break;
            }
            if clock >= hz {
                self.stats.fast_forward[self.ff_idx].horizon_stalls += 1;
                break;
            }
            if self.sm.can_issue() {
                let pre_version = self.sm.version();
                let pre_instr = self.stats.total.instructions;
                let pre_rejects = self.stats.total.l1_rejects;
                self.sm.step(
                    clock,
                    &mut PortRequester {
                        sm: self.id,
                        port: &mut *self.port,
                    },
                    &mut SmSink {
                        sm: self.id,
                        q: &mut *self.q,
                        seq: &mut *self.seq,
                    },
                    self.stats,
                );
                if hz == u64::MAX {
                    hz = self.horizon();
                }
                let drained = !self.sm.live() && self.q.is_empty();
                if drained {
                    self.done_at = Some(clock);
                }
                clock += 1;
                if drained {
                    break;
                }
                // Structural-stall replay: the step issued nothing and
                // changed no warp state (a ready warp kept retrying a
                // structurally rejected load — MSHRs exhausted or merge
                // limit hit). Until an event, the horizon or the barrier
                // intervenes, every following cycle replays it
                // bit-identically, so account the replicas in bulk
                // (reject and stall counters are its only effects).
                if self.stats.total.instructions == pre_instr && self.sm.version() == pre_version {
                    let next_ev = self.q.peek().map_or(u64::MAX, |r| r.0.at);
                    let target = next_ev.min(hz).min(self.barrier);
                    if target > clock {
                        let span = target - clock;
                        let rejects = self.stats.total.l1_rejects - pre_rejects;
                        let stalled = self.sm.live_scheduler_count();
                        self.stats.bump(|c| {
                            c.l1_rejects += rejects * span;
                            c.stall_scheduler_cycles += span * stalled;
                        });
                        let ff = &mut self.stats.fast_forward[self.ff_idx];
                        ff.spans += 1;
                        ff.skipped += span;
                        clock = target;
                    }
                }
            } else {
                // Nothing can issue before the next event, the horizon or
                // the barrier: skip the whole span, bulk-accounting it
                // exactly as that many stepped stall cycles.
                let next_ev = self.q.peek().map_or(u64::MAX, |r| r.0.at);
                let target = next_ev.min(hz).min(self.barrier);
                debug_assert!(target > clock);
                let span = target - clock;
                let stalled = self.sm.live_scheduler_count();
                self.stats
                    .bump(|c| c.stall_scheduler_cycles += span * stalled);
                let ff = &mut self.stats.fast_forward[self.ff_idx];
                ff.spans += 1;
                ff.skipped += span;
                clock = target;
            }
        }
        self.clock = clock;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::FixedTuple;
    use crate::instruction::UniformKernel;

    const ALL_MODES: [StepMode; 4] = [
        StepMode::PerSm,
        StepMode::ParallelSm,
        StepMode::EventDriven,
        StepMode::Reference,
    ];

    /// `cfg` switched to `mode`, with two worker threads when parallel.
    fn cfg_with(mut cfg: GpuConfig, mode: StepMode) -> GpuConfig {
        cfg.step_mode = mode;
        if mode == StepMode::ParallelSm {
            cfg.sim_threads = 2;
        }
        cfg
    }

    /// A finite ALU-only kernel: `warps` warps per scheduler, each with
    /// `instrs` instructions.
    struct FiniteAlu {
        warps: usize,
        instrs: u32,
    }

    struct FiniteStream(u32);

    impl crate::instruction::InstructionStream for FiniteStream {
        fn next_instr(&mut self) -> Option<crate::instruction::Instr> {
            if self.0 == 0 {
                None
            } else {
                self.0 -= 1;
                Some(crate::instruction::Instr::Alu)
            }
        }
    }

    impl KernelSource for FiniteAlu {
        fn stream_for(
            &self,
            _sm: usize,
            _sched: usize,
            _warp: usize,
        ) -> Box<dyn crate::instruction::InstructionStream> {
            Box::new(FiniteStream(self.instrs))
        }
        fn warps_per_scheduler(&self) -> usize {
            self.warps
        }
    }

    #[test]
    fn run_is_deterministic() {
        let kernel = UniformKernel::streaming(8, 3);
        let run = || {
            let mut gpu = Gpu::new(GpuConfig::scaled(2), &kernel);
            let mut ctrl = FixedTuple::max();
            gpu.run(&mut ctrl, 5_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn resident_kernel_outpaces_streaming_kernel() {
        let mut hit_gpu = Gpu::new(GpuConfig::scaled(2), &UniformKernel::resident(8, 2));
        let mut miss_gpu = Gpu::new(GpuConfig::scaled(2), &UniformKernel::streaming(8, 2));
        let hit = hit_gpu.run(&mut FixedTuple::max(), 20_000);
        let miss = miss_gpu.run(&mut FixedTuple::max(), 20_000);
        assert!(
            hit.ipc() > miss.ipc() * 1.3,
            "cache-resident kernel should be much faster: {} vs {}",
            hit.ipc(),
            miss.ipc()
        );
    }

    #[test]
    fn more_warps_hide_latency_for_streaming() {
        let ipc_at = |warps: usize| {
            let mut gpu = Gpu::new(GpuConfig::scaled(2), &UniformKernel::streaming(warps, 8));
            gpu.run(&mut FixedTuple::max(), 20_000).ipc()
        };
        let one = ipc_at(1);
        let many = ipc_at(16);
        assert!(
            many > one * 2.0,
            "TLP must hide memory latency: 1 warp {one}, 16 warps {many}"
        );
    }

    #[test]
    fn aml_grows_under_heavy_load() {
        // Few warps barely load the memory system; many warps queue.
        let aml_at = |warps: usize| {
            let mut gpu = Gpu::new(GpuConfig::scaled(2), &UniformKernel::streaming(warps, 0));
            gpu.run(&mut FixedTuple::max(), 30_000).counters.aml()
        };
        let light = aml_at(1);
        let heavy = aml_at(24);
        assert!(
            heavy > light * 1.2,
            "congestion must raise AML: light {light}, heavy {heavy}"
        );
    }

    #[test]
    fn bounded_kernel_completes() {
        // UniformKernel streams are unbounded, so completion is tested via
        // a custom finite kernel.
        let mut gpu = Gpu::new(
            GpuConfig::scaled(1),
            &FiniteAlu {
                warps: 4,
                instrs: 100,
            },
        );
        let res = gpu.run(&mut FixedTuple::max(), 100_000);
        assert!(res.completed);
        // 1 SM x 2 schedulers x 4 warps x 100 instructions.
        assert_eq!(res.counters.instructions, 800);
    }

    #[test]
    fn drain_cycle_is_exact() {
        // Regression for the seed's interval-256 drain check, which
        // overcounted up to 255 idle cycles in `SimResult.cycles`.
        //
        // 4 warps x 100 ALU instructions per scheduler issue one
        // instruction per scheduler-cycle: cycles 0..=399 issue all 400,
        // cycle 400 discovers the exhausted streams (`fetch -> None`), and
        // the drain is detected after advancing to cycle 401 — in ALL
        // step modes.
        for mode in ALL_MODES {
            let cfg = cfg_with(GpuConfig::scaled(1), mode);
            let mut gpu = Gpu::new(
                cfg,
                &FiniteAlu {
                    warps: 4,
                    instrs: 100,
                },
            );
            let res = gpu.run(&mut FixedTuple::max(), 100_000);
            assert!(res.completed);
            assert_eq!(res.counters.cycles, 401, "{mode:?}");
            assert_eq!(gpu.cycle(), 401, "{mode:?}");
        }
    }

    #[test]
    fn fast_forward_skips_stalled_spans() {
        // A single streaming warp spends almost every cycle blocked on its
        // outstanding load; both fast modes must skip most of them.
        for mode in [StepMode::PerSm, StepMode::ParallelSm, StepMode::EventDriven] {
            let kernel = UniformKernel::streaming(1, 0);
            let cfg = cfg_with(GpuConfig::scaled(1), mode);
            let mut gpu = Gpu::new(cfg, &kernel);
            let res = gpu.run(&mut FixedTuple::max(), 50_000);
            let (spans, skipped) = gpu.fast_forward_stats();
            assert!(
                spans > 100,
                "{mode:?}: expected many skip spans, got {spans}"
            );
            assert!(
                skipped > 25_000,
                "{mode:?}: expected most cycles skipped, got {skipped}"
            );
            assert_eq!(res.counters.cycles, 50_000);
        }
    }

    #[test]
    fn reference_mode_never_skips() {
        let kernel = UniformKernel::streaming(1, 0);
        let mut cfg = GpuConfig::scaled(1);
        cfg.step_mode = StepMode::Reference;
        let mut gpu = Gpu::new(cfg, &kernel);
        gpu.run(&mut FixedTuple::max(), 10_000);
        assert_eq!(gpu.fast_forward_stats(), (0, 0));
    }

    #[test]
    fn per_sm_mode_decouples_sms() {
        // On a multi-SM machine, per-SM mode must (a) stay bit-identical
        // to the reference and (b) skip per SM even though the SMs stay
        // desynchronised (the global skip cannot engage every span).
        let kernel = UniformKernel::streaming(16, 2);
        let run = |mode: StepMode| {
            let mut cfg = GpuConfig::scaled(4);
            cfg.step_mode = mode;
            let mut gpu = Gpu::new(cfg, &kernel);
            let res = gpu.run(&mut FixedTuple::max(), 30_000);
            (
                res.counters,
                res.completed,
                gpu.cycle(),
                gpu.stats().fast_forward.clone(),
            )
        };
        let (pc, pdone, pcyc, breakdown) = run(StepMode::PerSm);
        let (rc, rdone, rcyc, _) = run(StepMode::Reference);
        assert_eq!(pc, rc, "per-SM counters diverged from reference");
        assert_eq!((pdone, pcyc), (rdone, rcyc));
        for (i, f) in breakdown.iter().enumerate() {
            assert!(f.spans > 0, "SM {i} never skipped: {f:?}");
            assert!(
                f.horizon_stalls > 0,
                "SM {i} never hit the memory horizon: {f:?}"
            );
        }
    }

    #[test]
    fn parallel_sm_matches_per_sm_across_thread_counts() {
        // Bit-identity must hold for any thread count — including more
        // threads than SMs, and a 1-thread pool (zero workers, inline).
        let kernel = UniformKernel::streaming(16, 2);
        let run = |mode: StepMode, threads: usize| {
            let mut cfg = GpuConfig::scaled(4);
            cfg.step_mode = mode;
            cfg.sim_threads = threads;
            let mut gpu = Gpu::new(cfg, &kernel);
            let res = gpu.run(&mut FixedTuple::max(), 30_000);
            (res.counters, res.completed, gpu.cycle())
        };
        let base = run(StepMode::PerSm, 1);
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                run(StepMode::ParallelSm, threads),
                base,
                "sim_threads={threads} diverged from PerSm"
            );
        }
    }

    /// An unbounded ALU-only kernel: every lane's horizon is `u64::MAX`
    /// (no loads), so a parallel advance never returns on its own.
    struct InfiniteAlu {
        warps: usize,
    }

    struct InfiniteStream;

    impl crate::instruction::InstructionStream for InfiniteStream {
        fn next_instr(&mut self) -> Option<crate::instruction::Instr> {
            Some(crate::instruction::Instr::Alu)
        }
    }

    impl KernelSource for InfiniteAlu {
        fn stream_for(
            &self,
            _sm: usize,
            _sched: usize,
            _warp: usize,
        ) -> Box<dyn crate::instruction::InstructionStream> {
            Box::new(InfiniteStream)
        }
        fn warps_per_scheduler(&self) -> usize {
            self.warps
        }
    }

    #[test]
    fn watchdog_cancels_inside_parallel_workers() {
        // A controller that never wakes makes the whole budget one epoch,
        // and an ALU-only kernel has no memory horizon — so the very
        // first parallel round would honestly run for ~2^62 cycles. The
        // only way this test can finish is the worker lanes polling the
        // re-installed token mid-advance: it *hangs* (rather than fails)
        // if cancellation does not reach inside parallel workers.
        let token = crate::cancel::CancelToken::new();
        let _guard = crate::cancel::install(Some(token.clone()));
        let watchdog = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                token.cancel();
            })
        };
        let mut cfg = GpuConfig::scaled(4);
        cfg.step_mode = StepMode::ParallelSm;
        cfg.sim_threads = 3;
        let mut gpu = Gpu::new(cfg, &InfiniteAlu { warps: 4 });
        let res = gpu.run(&mut FixedTuple::max(), u64::MAX / 4);
        assert!(!res.completed, "cancelled run must report incompletion");
        watchdog.join().unwrap();
    }

    #[test]
    fn mshr_reject_storms_replay_identically() {
        // 24 warps/scheduler want 48 outstanding loads against 32 MSHRs:
        // ready warps retry structurally rejected loads every cycle, so no
        // mode can ever find a "nothing can issue" span. The decoupled
        // loop must replay those reject cycles in bulk — bit-identically
        // (every retry bumps `l1_rejects`) and actually skipping them.
        let kernel = UniformKernel::streaming(24, 0);
        let run = |mode: StepMode| {
            let cfg = cfg_with(GpuConfig::scaled(2), mode);
            let mut gpu = Gpu::new(cfg, &kernel);
            let mut ctrl = FixedTuple::max();
            let res = gpu.run(&mut ctrl, 20_000);
            (res.counters, gpu.cycle(), gpu.fast_forward_stats().1)
        };
        let (pc, pcyc, pskip) = run(StepMode::PerSm);
        let (rc, rcyc, _) = run(StepMode::Reference);
        let (ec, ecyc, eskip) = run(StepMode::EventDriven);
        let (tc, tcyc, tskip) = run(StepMode::ParallelSm);
        assert_eq!((pc, pcyc), (rc, rcyc), "per-SM diverged in a reject storm");
        assert_eq!(
            (ec, ecyc),
            (rc, rcyc),
            "event-driven diverged in a reject storm"
        );
        assert_eq!(
            (tc, tcyc),
            (rc, rcyc),
            "parallel-SM diverged in a reject storm"
        );
        assert!(
            tskip > 15_000,
            "parallel structural-stall replay must engage too, got {tskip}"
        );
        assert!(rc.l1_rejects > 20_000, "storm must reject heavily");
        assert_eq!(eskip, 0, "the global skip cannot engage in a storm");
        assert!(
            pskip > 15_000,
            "per-SM structural-stall replay must skip most of the storm, got {pskip}"
        );
    }

    /// A controller that acts (resets the window and logs) exactly at
    /// multiples of `period`, declaring its cadence via `next_wake`.
    struct Tick {
        period: u64,
        fired_at: Vec<u64>,
    }

    impl Controller for Tick {
        fn on_cycle(&mut self, ctx: &mut ControlCtx) {
            if ctx.cycle.is_multiple_of(self.period) {
                self.fired_at.push(ctx.cycle);
                ctx.reset_window();
            }
        }

        fn next_wake(&self, now: u64) -> Option<u64> {
            Some((now / self.period + 1) * self.period)
        }
    }

    /// A broken controller: declares a sparse wake cadence but samples
    /// the window on every cycle anyway.
    struct ContractViolator;

    impl Controller for ContractViolator {
        fn on_cycle(&mut self, ctx: &mut ControlCtx) {
            let _ = ctx.window(); // illegal between declared wakes
        }

        fn next_wake(&self, now: u64) -> Option<u64> {
            Some(now + 1_000)
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "next_wake contract violation")]
    fn stepped_loop_catches_next_wake_contract_violations() {
        let kernel = UniformKernel::streaming(2, 1);
        let mut cfg = GpuConfig::scaled(1);
        cfg.step_mode = StepMode::Reference;
        let mut gpu = Gpu::new(cfg, &kernel);
        gpu.run(&mut ContractViolator, 5_000);
    }

    #[test]
    fn compliant_controllers_pass_the_contract_assertion() {
        // The periodic Tick controller declares its cadence correctly and
        // must run clean under the debug assertion in every stepped mode.
        for mode in [StepMode::Reference, StepMode::EventDriven] {
            let kernel = UniformKernel::streaming(2, 1);
            let mut cfg = GpuConfig::scaled(1);
            cfg.step_mode = mode;
            let mut gpu = Gpu::new(cfg, &kernel);
            let mut ctrl = Tick {
                period: 500,
                fired_at: Vec::new(),
            };
            gpu.run(&mut ctrl, 5_000);
            assert!(!ctrl.fired_at.is_empty());
        }
    }

    #[test]
    fn fast_forward_never_crosses_a_controller_wake() {
        // The periodic controller must fire at exactly the same cycles in
        // every mode: skipped spans stop short of each wake, and per-SM
        // epochs barrier exactly on it.
        let run = |mode: StepMode| {
            let kernel = UniformKernel::streaming(2, 1);
            let cfg = cfg_with(GpuConfig::scaled(1), mode);
            let mut gpu = Gpu::new(cfg, &kernel);
            let mut ctrl = Tick {
                period: 777,
                fired_at: Vec::new(),
            };
            let res = gpu.run(&mut ctrl, 20_000);
            (ctrl.fired_at, res.counters, gpu.fast_forward_stats().1)
        };
        let (rf_fired, rf_counters, _) = run(StepMode::Reference);
        for mode in [StepMode::PerSm, StepMode::ParallelSm, StepMode::EventDriven] {
            let (fired, counters, skipped) = run(mode);
            assert_eq!(fired, rf_fired, "{mode:?}");
            assert_eq!(counters, rf_counters, "{mode:?}");
            assert!(skipped > 0, "{mode:?} must engage for this workload");
        }
        // Every wake observed exactly once per period boundary.
        assert!(rf_fired.windows(2).all(|w| w[1] - w[0] == 777));
    }
}
