//! The top-level GPU: SMs + shared memory system + event queue + run loop.
//!
//! ## Event-driven fast-forward
//!
//! Memory-bound phases — exactly the regimes Poise targets — spend most
//! cycles with every vital warp blocked on an outstanding load. The
//! default [`StepMode::EventDriven`] loop detects that state in
//! O(SMs × schedulers) via the [`Sm`] readiness counters and jumps the
//! clock straight to the next point at which anything can change, instead
//! of stepping idle cycles one by one.
//!
//! The skip target is `min(next_event, next_wake − 1, end)`:
//!
//! * **next_event** — the earliest scheduled fill / hit completion; the
//!   loop resumes there to deliver it (a delivery can make warps ready).
//! * **next_wake − 1** — one cycle *before* the controller's declared
//!   wake `w` (see [`Controller::next_wake`]): the stepped loop calls
//!   `on_cycle(w)` after stepping cycle `w − 1`, so cycle `w − 1` must be
//!   stepped, not skipped, for the wake to fire at the same point.
//! * **end** — the cycle budget of this `run` call.
//!
//! Skipped spans are bulk-accounted exactly as the reference loop would
//! have: `cycles` advances by the span, and every scheduler with live
//! warps accrues `stall_scheduler_cycles` (no scheduler can issue during
//! the span by construction, and warp state only changes through events
//! or controller steering, neither of which occurs inside a span). All
//! counters — IPC, AML, hit rates, gap statistics — are therefore
//! **bit-identical** between the two modes; the differential suite in the
//! `poise` crate asserts this for every shipped policy.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::config::{GpuConfig, StepMode};
use crate::controller::{ControlCtx, Controller};
use crate::energy::EnergyBreakdown;
use crate::instruction::KernelSource;
use crate::memsys::MemSystem;
use crate::sm::{EventSink, Sm, SmEvent};
use crate::stats::{Counters, GpuStats};

/// A scheduled event: ordered by time, then by insertion sequence for
/// determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct QueuedEvent {
    at: u64,
    seq: u64,
    sm: usize,
    ev_kind: u8,
    ev_a: u32,
    ev_b: u32,
}

impl QueuedEvent {
    fn pack(at: u64, seq: u64, sm: usize, ev: SmEvent) -> Self {
        match ev {
            SmEvent::Fill { mshr } => QueuedEvent {
                at,
                seq,
                sm,
                ev_kind: 0,
                ev_a: mshr as u32,
                ev_b: 0,
            },
            SmEvent::HitDone { scheduler, warp } => QueuedEvent {
                at,
                seq,
                sm,
                ev_kind: 1,
                ev_a: scheduler as u32,
                ev_b: warp as u32,
            },
        }
    }

    fn unpack(&self) -> SmEvent {
        match self.ev_kind {
            0 => SmEvent::Fill {
                mshr: self.ev_a as usize,
            },
            _ => SmEvent::HitDone {
                scheduler: self.ev_a as u8,
                warp: self.ev_b as u8,
            },
        }
    }
}

#[derive(Debug, Default)]
struct EventQueue {
    heap: BinaryHeap<Reverse<QueuedEvent>>,
    seq: u64,
}

impl EventSink for EventQueue {
    fn schedule(&mut self, at: u64, sm: usize, ev: SmEvent) {
        self.seq += 1;
        self.heap
            .push(Reverse(QueuedEvent::pack(at, self.seq, sm, ev)));
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Cycles simulated.
    pub cycles: u64,
    /// Cumulative counters.
    pub counters: Counters,
    /// Energy breakdown under the configured energy model.
    pub energy: EnergyBreakdown,
    /// Whether the kernel drained before the cycle budget expired.
    pub completed: bool,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.counters.ipc()
    }
}

/// The simulated GPU.
pub struct Gpu {
    cfg: GpuConfig,
    sms: Vec<Sm>,
    mem: MemSystem,
    events: EventQueue,
    stats: GpuStats,
    cycle: u64,
    kernel_warps: usize,
    /// Fast-forward diagnostics: (spans taken, cycles skipped).
    ff_spans: u64,
    ff_cycles: u64,
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("sms", &self.sms.len())
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl Gpu {
    /// Instantiate a GPU and launch `kernel` on it (one stream per warp).
    pub fn new(cfg: GpuConfig, kernel: &dyn KernelSource) -> Self {
        let sms = (0..cfg.sms).map(|i| Sm::new(i, &cfg, kernel)).collect();
        let mem = MemSystem::new(&cfg);
        let kernel_warps = kernel
            .warps_per_scheduler()
            .clamp(1, cfg.max_warps_per_scheduler);
        Gpu {
            sms,
            mem,
            events: EventQueue::default(),
            stats: GpuStats::new(),
            cycle: 0,
            cfg,
            kernel_warps,
            ff_spans: 0,
            ff_cycles: 0,
        }
    }

    /// The configuration this GPU was built with.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The SMs (for inspection in tests and tools).
    pub fn sms(&self) -> &[Sm] {
        &self.sms
    }

    /// Cumulative statistics so far.
    pub fn stats(&self) -> &GpuStats {
        &self.stats
    }

    /// Mutable statistics access, e.g. to reset the window between a
    /// warmup and a measurement phase when driving the GPU directly.
    pub fn stats_mut(&mut self) -> &mut GpuStats {
        &mut self.stats
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Fast-forward diagnostics: `(spans_taken, cycles_skipped)` since
    /// construction. Always `(0, 0)` in [`StepMode::Reference`].
    pub fn fast_forward_stats(&self) -> (u64, u64) {
        (self.ff_spans, self.ff_cycles)
    }

    /// Run under `controller` for at most `max_cycles` further cycles, or
    /// until every warp drains. Can be called repeatedly to continue.
    pub fn run(&mut self, controller: &mut dyn Controller, max_cycles: u64) -> SimResult {
        {
            let mut ctx = ControlCtx {
                cycle: self.cycle,
                max_warps: self.cfg.max_warps_per_scheduler,
                kernel_warps: self.kernel_warps,
                sms: &mut self.sms,
                stats: &mut self.stats,
            };
            controller.on_kernel_start(&mut ctx);
        }

        let end = self.cycle + max_cycles;
        let fast_forward = self.cfg.step_mode == StepMode::EventDriven;
        let mut completed = false;
        while self.cycle < end {
            // Deliver all events due at or before this cycle.
            while let Some(Reverse(top)) = self.events.heap.peek() {
                if top.at > self.cycle {
                    break;
                }
                let Reverse(q) = self.events.heap.pop().expect("peeked");
                self.sms[q.sm].handle_event(q.unpack(), self.cycle, &mut self.stats);
            }
            // Step every SM.
            for sm in &mut self.sms {
                sm.step(self.cycle, &mut self.mem, &mut self.events, &mut self.stats);
            }
            self.cycle += 1;
            self.stats.bump(|c| c.cycles += 1);
            {
                let mut ctx = ControlCtx {
                    cycle: self.cycle,
                    max_warps: self.cfg.max_warps_per_scheduler,
                    kernel_warps: self.kernel_warps,
                    sms: &mut self.sms,
                    stats: &mut self.stats,
                };
                controller.on_cycle(&mut ctx);
            }
            // Exact drain check: O(SMs × schedulers) with the incremental
            // liveness counters, so the completion cycle is precise (the
            // seed's interval-256 check overcounted up to 255 cycles).
            if self.events.heap.is_empty() && !self.sms.iter().any(|sm| sm.live()) {
                completed = true;
                break;
            }
            if fast_forward {
                self.fast_forward(controller, end);
            }
        }

        {
            let mut ctx = ControlCtx {
                cycle: self.cycle,
                max_warps: self.cfg.max_warps_per_scheduler,
                kernel_warps: self.kernel_warps,
                sms: &mut self.sms,
                stats: &mut self.stats,
            };
            controller.on_kernel_end(&mut ctx);
        }

        SimResult {
            cycles: self.stats.total.cycles,
            counters: self.stats.total,
            energy: EnergyBreakdown::from_counters(
                &self.stats.total,
                &self.cfg.energy,
                self.cfg.sms,
            ),
            completed,
        }
    }

    /// Jump the clock across a span in which nothing can happen.
    ///
    /// Preconditions established by the caller: `on_cycle(self.cycle)` has
    /// run and the kernel has not drained. The skip triggers only when no
    /// scheduler on any SM has a ready vital warp; the span is bounded so
    /// it never crosses a scheduled event, a controller wake, or the
    /// budget end (see the module docs for why the wake bound is `w − 1`).
    fn fast_forward(&mut self, controller: &dyn Controller, end: u64) {
        if self.sms.iter().any(|sm| sm.can_issue()) {
            return;
        }
        // With live warps and no pending events the machine could only
        // deadlock (cannot happen: a blocked warp always waits on a
        // scheduled completion); stepping wouldn't change that, so the
        // skip is still faithful — but stay conservative and only skip up
        // to a bound we can actually name.
        let next_event = self.events.heap.peek().map_or(u64::MAX, |Reverse(q)| q.at);
        let mut target = next_event.min(end);
        if let Some(wake) = controller.next_wake(self.cycle) {
            // Cycle `wake − 1` must be stepped so `on_cycle(wake)` fires
            // in loop order, exactly as the reference loop would.
            target = target.min(wake.saturating_sub(1));
        }
        if target <= self.cycle {
            return;
        }
        let span = target - self.cycle;
        // Bulk-account the span exactly as `span` stepped stall cycles:
        // every cycle bumps `cycles`; each scheduler that still manages
        // live warps bumps `stall_scheduler_cycles` (none can issue).
        let stalled: u64 = self.sms.iter().map(|sm| sm.live_scheduler_count()).sum();
        self.stats.bump(|c| {
            c.cycles += span;
            c.stall_scheduler_cycles += span * stalled;
        });
        self.cycle = target;
        self.ff_spans += 1;
        self.ff_cycles += span;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::FixedTuple;
    use crate::instruction::UniformKernel;

    /// A finite ALU-only kernel: `warps` warps per scheduler, each with
    /// `instrs` instructions.
    struct FiniteAlu {
        warps: usize,
        instrs: u32,
    }

    struct FiniteStream(u32);

    impl crate::instruction::InstructionStream for FiniteStream {
        fn next_instr(&mut self) -> Option<crate::instruction::Instr> {
            if self.0 == 0 {
                None
            } else {
                self.0 -= 1;
                Some(crate::instruction::Instr::Alu)
            }
        }
    }

    impl KernelSource for FiniteAlu {
        fn stream_for(
            &self,
            _sm: usize,
            _sched: usize,
            _warp: usize,
        ) -> Box<dyn crate::instruction::InstructionStream> {
            Box::new(FiniteStream(self.instrs))
        }
        fn warps_per_scheduler(&self) -> usize {
            self.warps
        }
    }

    #[test]
    fn run_is_deterministic() {
        let kernel = UniformKernel::streaming(8, 3);
        let run = || {
            let mut gpu = Gpu::new(GpuConfig::scaled(2), &kernel);
            let mut ctrl = FixedTuple::max();
            gpu.run(&mut ctrl, 5_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn resident_kernel_outpaces_streaming_kernel() {
        let mut hit_gpu = Gpu::new(GpuConfig::scaled(2), &UniformKernel::resident(8, 2));
        let mut miss_gpu = Gpu::new(GpuConfig::scaled(2), &UniformKernel::streaming(8, 2));
        let hit = hit_gpu.run(&mut FixedTuple::max(), 20_000);
        let miss = miss_gpu.run(&mut FixedTuple::max(), 20_000);
        assert!(
            hit.ipc() > miss.ipc() * 1.3,
            "cache-resident kernel should be much faster: {} vs {}",
            hit.ipc(),
            miss.ipc()
        );
    }

    #[test]
    fn more_warps_hide_latency_for_streaming() {
        let ipc_at = |warps: usize| {
            let mut gpu = Gpu::new(GpuConfig::scaled(2), &UniformKernel::streaming(warps, 8));
            gpu.run(&mut FixedTuple::max(), 20_000).ipc()
        };
        let one = ipc_at(1);
        let many = ipc_at(16);
        assert!(
            many > one * 2.0,
            "TLP must hide memory latency: 1 warp {one}, 16 warps {many}"
        );
    }

    #[test]
    fn aml_grows_under_heavy_load() {
        // Few warps barely load the memory system; many warps queue.
        let aml_at = |warps: usize| {
            let mut gpu = Gpu::new(GpuConfig::scaled(2), &UniformKernel::streaming(warps, 0));
            gpu.run(&mut FixedTuple::max(), 30_000).counters.aml()
        };
        let light = aml_at(1);
        let heavy = aml_at(24);
        assert!(
            heavy > light * 1.2,
            "congestion must raise AML: light {light}, heavy {heavy}"
        );
    }

    #[test]
    fn bounded_kernel_completes() {
        // UniformKernel streams are unbounded, so completion is tested via
        // a custom finite kernel.
        let mut gpu = Gpu::new(
            GpuConfig::scaled(1),
            &FiniteAlu {
                warps: 4,
                instrs: 100,
            },
        );
        let res = gpu.run(&mut FixedTuple::max(), 100_000);
        assert!(res.completed);
        // 1 SM x 2 schedulers x 4 warps x 100 instructions.
        assert_eq!(res.counters.instructions, 800);
    }

    #[test]
    fn drain_cycle_is_exact() {
        // Regression for the seed's interval-256 drain check, which
        // overcounted up to 255 idle cycles in `SimResult.cycles`.
        //
        // 4 warps x 100 ALU instructions per scheduler issue one
        // instruction per scheduler-cycle: cycles 0..=399 issue all 400,
        // cycle 400 discovers the exhausted streams (`fetch -> None`), and
        // the drain is detected after advancing to cycle 401 — in BOTH
        // step modes.
        for mode in [StepMode::EventDriven, StepMode::Reference] {
            let mut cfg = GpuConfig::scaled(1);
            cfg.step_mode = mode;
            let mut gpu = Gpu::new(
                cfg,
                &FiniteAlu {
                    warps: 4,
                    instrs: 100,
                },
            );
            let res = gpu.run(&mut FixedTuple::max(), 100_000);
            assert!(res.completed);
            assert_eq!(res.counters.cycles, 401, "{mode:?}");
            assert_eq!(gpu.cycle(), 401, "{mode:?}");
        }
    }

    #[test]
    fn fast_forward_skips_stalled_spans() {
        // A single streaming warp spends almost every cycle blocked on its
        // outstanding load; the event-driven loop must skip most of them.
        let kernel = UniformKernel::streaming(1, 0);
        let mut gpu = Gpu::new(GpuConfig::scaled(1), &kernel);
        let res = gpu.run(&mut FixedTuple::max(), 50_000);
        let (spans, skipped) = gpu.fast_forward_stats();
        assert!(spans > 100, "expected many skip spans, got {spans}");
        assert!(
            skipped > 25_000,
            "expected most cycles skipped, got {skipped}"
        );
        assert_eq!(res.counters.cycles, 50_000);
    }

    #[test]
    fn reference_mode_never_skips() {
        let kernel = UniformKernel::streaming(1, 0);
        let mut cfg = GpuConfig::scaled(1);
        cfg.step_mode = StepMode::Reference;
        let mut gpu = Gpu::new(cfg, &kernel);
        gpu.run(&mut FixedTuple::max(), 10_000);
        assert_eq!(gpu.fast_forward_stats(), (0, 0));
    }

    /// A controller that acts (resets the window and logs) exactly at
    /// multiples of `period`, declaring its cadence via `next_wake`.
    struct Tick {
        period: u64,
        fired_at: Vec<u64>,
    }

    impl Controller for Tick {
        fn on_cycle(&mut self, ctx: &mut ControlCtx) {
            if ctx.cycle.is_multiple_of(self.period) {
                self.fired_at.push(ctx.cycle);
                ctx.reset_window();
            }
        }

        fn next_wake(&self, now: u64) -> Option<u64> {
            Some((now / self.period + 1) * self.period)
        }
    }

    #[test]
    fn fast_forward_never_crosses_a_controller_wake() {
        // The periodic controller must fire at exactly the same cycles in
        // both modes: skipped spans stop one cycle short of each wake.
        let run = |mode: StepMode| {
            let kernel = UniformKernel::streaming(2, 1);
            let mut cfg = GpuConfig::scaled(1);
            cfg.step_mode = mode;
            let mut gpu = Gpu::new(cfg, &kernel);
            let mut ctrl = Tick {
                period: 777,
                fired_at: Vec::new(),
            };
            let res = gpu.run(&mut ctrl, 20_000);
            (ctrl.fired_at, res.counters, gpu.fast_forward_stats().1)
        };
        let (ev_fired, ev_counters, skipped) = run(StepMode::EventDriven);
        let (rf_fired, rf_counters, _) = run(StepMode::Reference);
        assert_eq!(ev_fired, rf_fired);
        assert_eq!(ev_counters, rf_counters);
        assert!(skipped > 0, "fast-forward must engage for this workload");
        // Every wake observed exactly once per period boundary.
        assert!(ev_fired.windows(2).all(|w| w[1] - w[0] == 777));
    }
}
