//! The top-level GPU: SMs + shared memory system + event queue + run loop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::config::GpuConfig;
use crate::controller::{ControlCtx, Controller};
use crate::energy::EnergyBreakdown;
use crate::instruction::KernelSource;
use crate::memsys::MemSystem;
use crate::sm::{EventSink, Sm, SmEvent};
use crate::stats::{Counters, GpuStats};

/// A scheduled event: ordered by time, then by insertion sequence for
/// determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct QueuedEvent {
    at: u64,
    seq: u64,
    sm: usize,
    ev_kind: u8,
    ev_a: u32,
    ev_b: u32,
}

impl QueuedEvent {
    fn pack(at: u64, seq: u64, sm: usize, ev: SmEvent) -> Self {
        match ev {
            SmEvent::Fill { mshr } => QueuedEvent {
                at,
                seq,
                sm,
                ev_kind: 0,
                ev_a: mshr as u32,
                ev_b: 0,
            },
            SmEvent::HitDone { scheduler, warp } => QueuedEvent {
                at,
                seq,
                sm,
                ev_kind: 1,
                ev_a: scheduler as u32,
                ev_b: warp as u32,
            },
        }
    }

    fn unpack(&self) -> SmEvent {
        match self.ev_kind {
            0 => SmEvent::Fill {
                mshr: self.ev_a as usize,
            },
            _ => SmEvent::HitDone {
                scheduler: self.ev_a as u8,
                warp: self.ev_b as u8,
            },
        }
    }
}

#[derive(Debug, Default)]
struct EventQueue {
    heap: BinaryHeap<Reverse<QueuedEvent>>,
    seq: u64,
}

impl EventSink for EventQueue {
    fn schedule(&mut self, at: u64, sm: usize, ev: SmEvent) {
        self.seq += 1;
        self.heap.push(Reverse(QueuedEvent::pack(at, self.seq, sm, ev)));
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Cycles simulated.
    pub cycles: u64,
    /// Cumulative counters.
    pub counters: Counters,
    /// Energy breakdown under the configured energy model.
    pub energy: EnergyBreakdown,
    /// Whether the kernel drained before the cycle budget expired.
    pub completed: bool,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.counters.ipc()
    }
}

/// The simulated GPU.
pub struct Gpu {
    cfg: GpuConfig,
    sms: Vec<Sm>,
    mem: MemSystem,
    events: EventQueue,
    stats: GpuStats,
    cycle: u64,
    kernel_warps: usize,
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("sms", &self.sms.len())
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl Gpu {
    /// Instantiate a GPU and launch `kernel` on it (one stream per warp).
    pub fn new(cfg: GpuConfig, kernel: &dyn KernelSource) -> Self {
        let sms = (0..cfg.sms).map(|i| Sm::new(i, &cfg, kernel)).collect();
        let mem = MemSystem::new(&cfg);
        let kernel_warps = kernel
            .warps_per_scheduler()
            .clamp(1, cfg.max_warps_per_scheduler);
        Gpu {
            sms,
            mem,
            events: EventQueue::default(),
            stats: GpuStats::new(),
            cycle: 0,
            cfg,
            kernel_warps,
        }
    }

    /// The configuration this GPU was built with.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The SMs (for inspection in tests and tools).
    pub fn sms(&self) -> &[Sm] {
        &self.sms
    }

    /// Cumulative statistics so far.
    pub fn stats(&self) -> &GpuStats {
        &self.stats
    }

    /// Mutable statistics access, e.g. to reset the window between a
    /// warmup and a measurement phase when driving the GPU directly.
    pub fn stats_mut(&mut self) -> &mut GpuStats {
        &mut self.stats
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Run under `controller` for at most `max_cycles` further cycles, or
    /// until every warp drains. Can be called repeatedly to continue.
    pub fn run(
        &mut self,
        controller: &mut dyn Controller,
        max_cycles: u64,
    ) -> SimResult {
        {
            let mut ctx = ControlCtx {
                cycle: self.cycle,
                max_warps: self.cfg.max_warps_per_scheduler,
                kernel_warps: self.kernel_warps,
                sms: &mut self.sms,
                stats: &mut self.stats,
            };
            controller.on_kernel_start(&mut ctx);
        }

        let end = self.cycle + max_cycles;
        let mut completed = false;
        // Check for drain only periodically: scanning all warps is O(warps).
        let drain_check_interval = 256;
        while self.cycle < end {
            // Deliver all events due at or before this cycle.
            while let Some(Reverse(top)) = self.events.heap.peek() {
                if top.at > self.cycle {
                    break;
                }
                let Reverse(q) = self.events.heap.pop().expect("peeked");
                self.sms[q.sm].handle_event(q.unpack(), self.cycle, &mut self.stats);
            }
            // Step every SM.
            for sm in &mut self.sms {
                sm.step(self.cycle, &mut self.mem, &mut self.events, &mut self.stats);
            }
            self.cycle += 1;
            self.stats.bump(|c| c.cycles += 1);
            {
                let mut ctx = ControlCtx {
                    cycle: self.cycle,
                    max_warps: self.cfg.max_warps_per_scheduler,
                    kernel_warps: self.kernel_warps,
                    sms: &mut self.sms,
                    stats: &mut self.stats,
                };
                controller.on_cycle(&mut ctx);
            }
            if self.cycle % drain_check_interval == 0
                && self.events.heap.is_empty()
                && !self.sms.iter().any(|sm| sm.live())
            {
                completed = true;
                break;
            }
        }

        {
            let mut ctx = ControlCtx {
                cycle: self.cycle,
                max_warps: self.cfg.max_warps_per_scheduler,
                kernel_warps: self.kernel_warps,
                sms: &mut self.sms,
                stats: &mut self.stats,
            };
            controller.on_kernel_end(&mut ctx);
        }

        SimResult {
            cycles: self.stats.total.cycles,
            counters: self.stats.total,
            energy: EnergyBreakdown::from_counters(
                &self.stats.total,
                &self.cfg.energy,
                self.cfg.sms,
            ),
            completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::FixedTuple;
    use crate::instruction::UniformKernel;

    #[test]
    fn run_is_deterministic() {
        let kernel = UniformKernel::streaming(8, 3);
        let run = || {
            let mut gpu = Gpu::new(GpuConfig::scaled(2), &kernel);
            let mut ctrl = FixedTuple::max();
            gpu.run(&mut ctrl, 5_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn resident_kernel_outpaces_streaming_kernel() {
        let mut hit_gpu = Gpu::new(
            GpuConfig::scaled(2),
            &UniformKernel::resident(8, 2),
        );
        let mut miss_gpu = Gpu::new(
            GpuConfig::scaled(2),
            &UniformKernel::streaming(8, 2),
        );
        let hit = hit_gpu.run(&mut FixedTuple::max(), 20_000);
        let miss = miss_gpu.run(&mut FixedTuple::max(), 20_000);
        assert!(
            hit.ipc() > miss.ipc() * 1.3,
            "cache-resident kernel should be much faster: {} vs {}",
            hit.ipc(),
            miss.ipc()
        );
    }

    #[test]
    fn more_warps_hide_latency_for_streaming() {
        let ipc_at = |warps: usize| {
            let mut gpu = Gpu::new(
                GpuConfig::scaled(2),
                &UniformKernel::streaming(warps, 8),
            );
            gpu.run(&mut FixedTuple::max(), 20_000).ipc()
        };
        let one = ipc_at(1);
        let many = ipc_at(16);
        assert!(
            many > one * 2.0,
            "TLP must hide memory latency: 1 warp {one}, 16 warps {many}"
        );
    }

    #[test]
    fn aml_grows_under_heavy_load() {
        // Few warps barely load the memory system; many warps queue.
        let aml_at = |warps: usize| {
            let mut gpu = Gpu::new(
                GpuConfig::scaled(2),
                &UniformKernel::streaming(warps, 0),
            );
            gpu.run(&mut FixedTuple::max(), 30_000).counters.aml()
        };
        let light = aml_at(1);
        let heavy = aml_at(24);
        assert!(
            heavy > light * 1.2,
            "congestion must raise AML: light {light}, heavy {heavy}"
        );
    }

    #[test]
    fn bounded_kernel_completes() {
        // UniformKernel streams are unbounded, so completion is tested via
        // a custom finite kernel.
        struct Finite;
        struct FiniteStream(u32);
        impl crate::instruction::InstructionStream for FiniteStream {
            fn next_instr(&mut self) -> Option<crate::instruction::Instr> {
                if self.0 == 0 {
                    None
                } else {
                    self.0 -= 1;
                    Some(crate::instruction::Instr::Alu)
                }
            }
        }
        impl KernelSource for Finite {
            fn stream_for(
                &self,
                _sm: usize,
                _sched: usize,
                _warp: usize,
            ) -> Box<dyn crate::instruction::InstructionStream> {
                Box::new(FiniteStream(100))
            }
            fn warps_per_scheduler(&self) -> usize {
                4
            }
        }
        let mut gpu = Gpu::new(GpuConfig::scaled(1), &Finite);
        let res = gpu.run(&mut FixedTuple::max(), 100_000);
        assert!(res.completed);
        // 1 SM x 2 schedulers x 4 warps x 100 instructions.
        assert_eq!(res.counters.instructions, 800);
    }
}
