//! Cooperative cancellation for in-flight simulations.
//!
//! A [`CancelToken`] is a shared flag an external watchdog (the
//! experiment engine's per-job deadline enforcement) can raise to ask a
//! running simulation to stop. [`crate::Gpu::run`] polls the current
//! thread's installed token at its controller barriers — every cycle in
//! the stepped loops, every epoch in the decoupled loop — and returns
//! early with `completed = false` when it fires. Cancellation is purely
//! cooperative and lossy by design: a cancelled run's partial counters
//! are garbage and the caller must discard them (the engine never caches
//! or reports a cancelled job's output).
//!
//! The token travels by **thread-local installation** rather than by
//! parameter: the call chain between the engine and `Gpu::run` spans
//! profilers, training and experiment runners whose signatures have
//! nothing to do with cancellation, and several of them fan out over
//! `poise::parallel::parallel_map`, which re-installs the spawning
//! thread's token in its workers so nested fan-outs stay cancellable.
//!
//! Nothing in this module reads the clock; *when* a token fires is the
//! watchdog's business. Simulations that are never cancelled are
//! bit-identical with and without an installed token (the poll is a
//! relaxed atomic load on the cold path of the run loops).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Clones observe the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raise the flag. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has the flag been raised?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Do two tokens share one flag?
    pub fn same_as(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// The token installed on this thread, if any.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Install `token` on this thread until the returned guard drops, which
/// restores whatever was installed before. Pass `None` to shield a
/// region from an inherited token.
pub fn install(token: Option<CancelToken>) -> InstallGuard {
    let previous = CURRENT.with(|c| c.replace(token));
    InstallGuard { previous }
}

/// Restores the previously installed token on drop (see [`install`]).
#[must_use = "dropping the guard immediately uninstalls the token"]
pub struct InstallGuard {
    previous: Option<CancelToken>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.replace(self.previous.take()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_fires_across_clones_and_threads() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let c = t.clone();
        std::thread::scope(|s| {
            s.spawn(move || c.cancel());
        });
        assert!(t.is_cancelled());
        assert!(t.same_as(&t.clone()));
        assert!(!t.same_as(&CancelToken::new()));
    }

    #[test]
    fn install_guard_restores_previous_token() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        let g1 = install(Some(outer.clone()));
        assert!(current().unwrap().same_as(&outer));
        {
            let _g2 = install(Some(inner.clone()));
            assert!(current().unwrap().same_as(&inner));
            {
                let _g3 = install(None);
                assert!(current().is_none(), "None shields the region");
            }
            assert!(current().unwrap().same_as(&inner));
        }
        assert!(current().unwrap().same_as(&outer));
        drop(g1);
        assert!(current().is_none());
    }
}
