//! Architectural configuration for the simulated GPU.
//!
//! [`GpuConfig::baseline`] reproduces Table IIIb of the Poise paper
//! (32 SMs, 2 GTO schedulers/SM, 24 warps/scheduler, 16 KB 4-way L1 with
//! 32 MSHRs, 2.25 MB 24-bank L2, 6 DRAM partitions). [`GpuConfig::scaled`]
//! shrinks the machine proportionally (fewer SMs with a proportionally
//! smaller shared memory system) so that per-SM pressure — the quantity all
//! of Poise's features observe — is preserved while simulation cost drops.

/// Which run loop [`crate::Gpu::run`] uses.
///
/// All modes produce **bit-identical** counters (the differential suite
/// in the `poise` crate enforces this for every shipped policy); they
/// differ only in wall-clock cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepMode {
    /// Decoupled per-SM local clocks: each SM runs ahead independently up
    /// to a conservative horizon (its next event, the shared memory
    /// system's safe horizon, the next controller wake, the budget end)
    /// and skips its own stalled spans, so one busy SM no longer pins the
    /// whole machine to cycle-stepping. The default; see the module docs
    /// of [`crate::gpu`] for the synchronisation invariant.
    #[cfg_attr(not(feature = "reference-step"), default)]
    PerSm,
    /// [`StepMode::PerSm`] with the per-SM advances run on a work-stealing
    /// thread pool of [`GpuConfig::sim_threads`] threads: within each
    /// controller epoch, workers claim laggard SMs and advance each to its
    /// private conservative horizon, buffering the SM's memory requests in
    /// its own port; a sequential reduction then applies them through the
    /// shared memory system in global `(cycle, SM)` order. Bit-identical
    /// to `PerSm` by construction (see [`crate::gpu`] module docs).
    ParallelSm,
    /// Globally event-driven: fast-forward only across spans in which no
    /// warp on *any* SM can issue, jumping straight to the next scheduled
    /// event / controller wake / budget end and bulk-accounting the
    /// skipped cycles. Kept as the intermediate point between the
    /// reference and per-SM loops (and as a cross-check in the
    /// differential suites).
    EventDriven,
    /// Step every cycle. The reference loop the other modes are validated
    /// against; also the default when the `reference-step` feature of
    /// `gpu-sim` is enabled.
    #[cfg_attr(feature = "reference-step", default)]
    Reference,
}

/// How a cache maps a line address to a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetIndexing {
    /// `set = line mod sets` — the "linear" indexing used in the Fig. 12
    /// sensitivity study.
    Linear,
    /// A xor-fold hash of the line address — the "hash set-indexed" L1 of
    /// the baseline (Table IIIb), which spreads strided footprints.
    Hashed,
}

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets.
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (used for bandwidth/energy accounting only; the
    /// simulator addresses whole lines).
    pub line_bytes: usize,
    /// Set index function.
    pub indexing: SetIndexing,
}

impl CacheGeometry {
    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Map a line address to its set.
    pub fn set_of(&self, line: u64) -> usize {
        match self.indexing {
            SetIndexing::Linear => (line % self.sets as u64) as usize,
            SetIndexing::Hashed => {
                // xor-fold upper address bits into the index, in the spirit
                // of GPGPU-Sim's hashed set index function.
                let x = line ^ (line >> 7) ^ (line >> 15) ^ (line >> 23);
                (x % self.sets as u64) as usize
            }
        }
    }
}

/// Shared L2 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Per-bank geometry. Total capacity = banks × geometry capacity.
    pub geometry: CacheGeometry,
    /// Number of address-interleaved banks.
    pub banks: usize,
    /// Tag + data access latency (core cycles).
    pub latency: u64,
    /// Minimum interval between requests serviced by one bank
    /// (core cycles; models the 700 MHz L2 clock of the baseline).
    pub service_interval: u64,
}

/// DRAM configuration (GDDR5-style partitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of memory partitions (channels).
    pub partitions: usize,
    /// Uncontended access latency (core cycles).
    pub latency: u64,
    /// Minimum interval between line transfers per partition (core cycles);
    /// models per-partition bandwidth.
    pub service_interval: u64,
}

/// Per-event energy model, in arbitrary consistent energy units.
///
/// The absolute scale is irrelevant for the paper's Fig. 14, which reports
/// energy normalised to the GTO baseline; the *ratios* between event kinds
/// follow the usual hierarchy (DRAM ≫ L2 ≫ L1 ≫ ALU) and leakage is charged
/// per SM-cycle so that shorter runs dissipate less static power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyConfig {
    /// Dynamic energy per issued ALU instruction.
    pub alu_op: f64,
    /// Dynamic energy per L1 access (hit or miss lookup).
    pub l1_access: f64,
    /// Dynamic energy per L2 access.
    pub l2_access: f64,
    /// Dynamic energy per DRAM line transfer.
    pub dram_access: f64,
    /// Static (leakage) energy per SM per cycle.
    pub leakage_per_sm_cycle: f64,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            alu_op: 1.0,
            l1_access: 4.0,
            l2_access: 16.0,
            dram_access: 160.0,
            leakage_per_sm_cycle: 6.0,
        }
    }
}

/// Top-level configuration of the simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub sms: usize,
    /// Warp schedulers per SM (baseline: 2).
    pub schedulers_per_sm: usize,
    /// Maximum warps managed by one scheduler (baseline: 24).
    pub max_warps_per_scheduler: usize,
    /// L1 data cache geometry (per SM).
    pub l1: CacheGeometry,
    /// L1 hit latency in cycles (load-to-use).
    pub l1_hit_latency: u64,
    /// Number of L1 MSHR entries per SM.
    pub l1_mshrs: usize,
    /// Maximum merged requests per MSHR entry before rejecting.
    pub mshr_merge_limit: usize,
    /// Shared L2 configuration.
    pub l2: L2Config,
    /// One-way crossbar traversal latency (core cycles).
    pub xbar_latency: u64,
    /// DRAM configuration.
    pub dram: DramConfig,
    /// Energy model parameters.
    pub energy: EnergyConfig,
    /// Track per-warp reuse distance (LRU stack distance). Costly; only
    /// enabled for characterisation experiments such as Fig. 4.
    pub track_reuse_distance: bool,
    /// Track per-PC load locality (needed by APCM-style bypass policies).
    pub track_pc_stats: bool,
    /// Which run loop to use (decoupled per-SM clocks, global event-driven
    /// fast-forward, or the cycle-stepped reference; counters are
    /// bit-identical in every mode).
    pub step_mode: StepMode,
    /// Thread count for [`StepMode::ParallelSm`] (1 = effectively
    /// sequential; ignored by the other modes). An **engine** knob, not an
    /// architectural one: it never changes simulated results and is
    /// excluded from the result-cache identity, like `step_mode`. The
    /// pool spawns `sim_threads - 1` workers (the calling thread
    /// participates), capped by the process-wide thread budget
    /// ([`crate::threadpool`]).
    pub sim_threads: usize,
}

impl GpuConfig {
    /// The paper's baseline machine (Table IIIb).
    pub fn baseline() -> Self {
        GpuConfig {
            sms: 32,
            schedulers_per_sm: 2,
            max_warps_per_scheduler: 24,
            l1: CacheGeometry {
                sets: 32,
                ways: 4,
                line_bytes: 128,
                indexing: SetIndexing::Hashed,
            },
            // Load-to-use latency of an L1 hit. Fermi/Kepler-class GPUs
            // expose ~80 cycles between a load and its dependent use even
            // on a hit, which is precisely why warp-level parallelism is
            // needed; small values would let a handful of warps saturate a
            // scheduler and flatten the {N, p} landscape.
            l1_hit_latency: 72,
            l1_mshrs: 32,
            mshr_merge_limit: 8,
            l2: L2Config {
                geometry: CacheGeometry {
                    sets: 96,
                    ways: 8,
                    line_bytes: 128,
                    indexing: SetIndexing::Linear,
                },
                banks: 24,
                latency: 120,
                service_interval: 2,
            },
            xbar_latency: 16,
            dram: DramConfig {
                partitions: 6,
                latency: 220,
                service_interval: 12,
            },
            energy: EnergyConfig::default(),
            track_reuse_distance: false,
            track_pc_stats: false,
            step_mode: StepMode::default(),
            sim_threads: 1,
        }
    }

    /// A proportionally scaled machine with `sms` SMs.
    ///
    /// The shared L2 banks and DRAM partitions shrink with the SM count so
    /// that per-SM cache capacity and per-SM memory bandwidth match the
    /// 32-SM baseline. Used by the experiment harness to keep full figure
    /// sweeps tractable on small hosts; `--set sms=32` restores Table IIIb.
    pub fn scaled(sms: usize) -> Self {
        let mut cfg = Self::baseline();
        cfg.rescale_sms(sms);
        cfg
    }

    /// Rescale the SM count **in place**: shrink the shared L2 banks and
    /// DRAM partitions proportionally (the invariant of [`Self::scaled`])
    /// while leaving every other field — e.g. an already-customised L1
    /// geometry — untouched. The experiment knob overlay uses this so a
    /// later `sms=` assignment preserves earlier edits.
    pub fn rescale_sms(&mut self, sms: usize) {
        let sms = sms.max(1);
        let ratio = sms as f64 / 32.0;
        self.sms = sms;
        self.l2.banks = ((24.0 * ratio).round() as usize).max(1);
        self.dram.partitions = ((6.0 * ratio).round() as usize).max(1);
    }

    /// Scale the L1 capacity by an integral factor, keeping associativity
    /// (used for the Pbest classification runs and the Fig. 12 study).
    pub fn with_l1_scale(mut self, factor: usize) -> Self {
        self.l1.sets *= factor.max(1);
        self
    }

    /// Replace the L1 set-index function (Fig. 12 uses linear indexing).
    pub fn with_l1_indexing(mut self, indexing: SetIndexing) -> Self {
        self.l1.indexing = indexing;
        self
    }

    /// Total warps per SM.
    pub fn warps_per_sm(&self) -> usize {
        self.schedulers_per_sm * self.max_warps_per_scheduler
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_iiib() {
        let cfg = GpuConfig::baseline();
        assert_eq!(cfg.sms, 32);
        assert_eq!(cfg.schedulers_per_sm, 2);
        assert_eq!(cfg.max_warps_per_scheduler, 24);
        // 16 KB L1: 32 sets x 4 ways x 128 B.
        assert_eq!(cfg.l1.capacity_bytes(), 16 * 1024);
        assert_eq!(cfg.l1_mshrs, 32);
        // 2.25 MB L2: 24 banks x 96 sets x 8 ways x 128 B.
        assert_eq!(cfg.l2.banks * cfg.l2.geometry.capacity_bytes(), 2304 * 1024);
        assert_eq!(cfg.dram.partitions, 6);
        assert_eq!(cfg.warps_per_sm(), 48);
    }

    #[test]
    fn scaled_preserves_per_sm_resources() {
        let cfg = GpuConfig::scaled(8);
        assert_eq!(cfg.sms, 8);
        assert_eq!(cfg.l2.banks, 6);
        assert_eq!(cfg.dram.partitions, 2);
        // Per-SM L2 capacity matches baseline's.
        let base = GpuConfig::baseline();
        let per_sm_base = base.l2.banks * base.l2.geometry.capacity_bytes() / base.sms;
        let per_sm_scaled = cfg.l2.banks * cfg.l2.geometry.capacity_bytes() / cfg.sms;
        assert_eq!(per_sm_base, per_sm_scaled);
    }

    #[test]
    fn l1_scale_multiplies_capacity() {
        let cfg = GpuConfig::baseline().with_l1_scale(4);
        assert_eq!(cfg.l1.capacity_bytes(), 64 * 1024);
    }

    #[test]
    fn set_indexing_stays_in_range() {
        let geo = CacheGeometry {
            sets: 32,
            ways: 4,
            line_bytes: 128,
            indexing: SetIndexing::Hashed,
        };
        for line in 0..10_000u64 {
            assert!(geo.set_of(line) < geo.sets);
        }
        let lin = CacheGeometry {
            indexing: SetIndexing::Linear,
            ..geo
        };
        assert_eq!(lin.set_of(33), 1);
    }

    #[test]
    fn hashed_indexing_spreads_strided_addresses() {
        // A power-of-two stride that aliases to one set under linear
        // indexing should spread over several sets under hashing.
        let hashed = CacheGeometry {
            sets: 32,
            ways: 4,
            line_bytes: 128,
            indexing: SetIndexing::Hashed,
        };
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            seen.insert(hashed.set_of(i * 32));
        }
        assert!(seen.len() > 8, "hash should spread strided lines");
    }
}
