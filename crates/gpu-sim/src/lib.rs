//! # gpu-sim — cycle-level GPU simulator substrate
//!
//! A warp-granular, cycle-level simulator of a modern GPU modelled after the
//! baseline used in the Poise paper (Dublish, Nagarajan, Topham; HPCA 2019,
//! Table IIIb): 32 streaming multiprocessors (SMs), two greedy-then-oldest
//! (GTO) warp schedulers per SM with up to 24 warps each, a 16 KB 4-way L1
//! data cache with 32 MSHRs per SM, a banked shared L2, a crossbar
//! interconnect and a multi-partition GDDR5-style DRAM model.
//!
//! The simulator exposes the two control knobs the paper is built around:
//!
//! * **N — vital warps**: the subset of warps that participate in
//!   multithreading (warp scheduler arbitration).
//! * **p — cache-polluting warps**: the subset of vital warps whose load
//!   misses may *allocate* (and therefore evict) L1 lines; the remaining
//!   `N − p` warps may still hit in the L1 but their misses bypass line
//!   reservation and are forwarded to the L2.
//!
//! Control policies (GTO, SWL, PCAL, Poise's hardware inference engine, …)
//! are implemented outside this crate against the [`Controller`] trait; the
//! simulator invokes the controller every cycle and the controller steers
//! warp-tuples, samples windowed performance counters and resets them.
//!
//! ## Fidelity notes
//!
//! Following the paper's own analytical model (Section V-A), warps are the
//! unit of simulation and "each warp instruction generates a single, highly
//! coalesced memory request". Cache state, MSHR merging, queueing at the L2
//! banks and DRAM partitions, and load-use stalls are modelled explicitly;
//! SIMD lanes and instruction fetch/decode are not.
//!
//! ## Example
//!
//! ```
//! use gpu_sim::{Gpu, GpuConfig, FixedTuple, UniformKernel, Instr};
//!
//! // A trivial kernel: every warp alternates ALU work and a streaming load.
//! let kernel = UniformKernel::streaming(8, 4);
//! let cfg = GpuConfig::scaled(2);
//! let mut gpu = Gpu::new(cfg, &kernel);
//! let mut ctrl = FixedTuple::max();
//! let result = gpu.run(&mut ctrl, 10_000);
//! assert!(result.counters.instructions > 0);
//! ```

pub mod cache;
pub mod cancel;
pub mod config;
pub mod controller;
pub mod energy;
pub mod gpu;
pub mod instruction;
pub mod l1;
pub mod memsys;
pub mod scheduler;
pub mod sm;
pub mod snapshot;
pub mod stats;
pub mod threadpool;
pub mod warp;

pub use cache::{CacheLineState, SetAssocCache};
pub use cancel::CancelToken;
pub use config::{
    CacheGeometry, DramConfig, EnergyConfig, GpuConfig, L2Config, SetIndexing, StepMode,
};
pub use controller::{ControlCtx, Controller, FixedTuple};
pub use energy::EnergyBreakdown;
pub use gpu::{Gpu, SimResult};
pub use instruction::{Instr, InstructionStream, KernelSource, UniformKernel};
pub use l1::{AccessOutcome, L1Data};
pub use memsys::{MemRequester, MemSystem};
pub use scheduler::WarpScheduler;
pub use sm::Sm;
pub use snapshot::{SnapshotError, SNAPSHOT_HEADER};
pub use stats::{Counters, GpuStats, WindowSample};
pub use warp::Warp;

/// A warp-tuple `{N, p}`: `n` vital warps of which `p` may pollute the L1.
///
/// Invariant: `1 <= p <= n`. Construct via [`WarpTuple::new`], which clamps
/// its arguments into the valid range for the given scheduler capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WarpTuple {
    /// Number of vital warps permitted to participate in multithreading.
    pub n: usize,
    /// Number of cache-polluting warps permitted to allocate L1 lines.
    pub p: usize,
}

impl WarpTuple {
    /// Builds a tuple, clamping `n` into `[1, max_warps]` and `p` into
    /// `[1, n]`.
    pub fn new(n: usize, p: usize, max_warps: usize) -> Self {
        let n = n.clamp(1, max_warps.max(1));
        let p = p.clamp(1, n);
        WarpTuple { n, p }
    }

    /// The baseline tuple: all warps vital, all polluting.
    pub fn max(max_warps: usize) -> Self {
        WarpTuple {
            n: max_warps.max(1),
            p: max_warps.max(1),
        }
    }

    /// Euclidean distance to another tuple in the {N, p} plane.
    pub fn distance(&self, other: &WarpTuple) -> f64 {
        let dn = self.n as f64 - other.n as f64;
        let dp = self.p as f64 - other.p as f64;
        (dn * dn + dp * dp).sqrt()
    }
}

impl std::fmt::Display for WarpTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.n, self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_tuple_clamps_into_range() {
        let t = WarpTuple::new(100, 50, 24);
        assert_eq!(t, WarpTuple { n: 24, p: 24 });
        let t = WarpTuple::new(0, 0, 24);
        assert_eq!(t, WarpTuple { n: 1, p: 1 });
        let t = WarpTuple::new(10, 15, 24);
        assert_eq!(t, WarpTuple { n: 10, p: 10 });
    }

    #[test]
    fn warp_tuple_distance_is_euclidean() {
        let a = WarpTuple::new(3, 1, 24);
        let b = WarpTuple::new(6, 5, 24);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn warp_tuple_max_uses_capacity() {
        assert_eq!(WarpTuple::max(24), WarpTuple { n: 24, p: 24 });
    }
}
