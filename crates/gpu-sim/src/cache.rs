//! Generic set-associative tag store with LRU replacement.
//!
//! Used directly by the L2 banks and wrapped with MSHRs, pollute-bit bypass
//! and reuse classification by the [L1](crate::l1) module.

use crate::config::CacheGeometry;

/// State of one cache line slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLineState {
    /// No valid data.
    Invalid,
    /// Valid data present.
    Valid,
    /// Reserved for an in-flight fill (tag allocated, data pending).
    Reserved,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Line {
    pub tag: u64,
    pub state: CacheLineState,
    pub lru: u64,
    /// Bitmask of SM-local warp ids that touched this line since fill.
    pub touchers: u64,
}

impl Line {
    fn empty() -> Self {
        Line {
            tag: 0,
            state: CacheLineState::Invalid,
            lru: 0,
            touchers: 0,
        }
    }
}

/// Result of a lookup in the tag store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Valid line present at `(set, way)`.
    Hit { set: usize, way: usize },
    /// Line is reserved for a pending fill at `(set, way)`.
    PendingHit { set: usize, way: usize },
    /// Not present.
    Miss,
}

/// A set-associative, LRU-replaced tag store addressing whole lines.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    pub(crate) geometry: CacheGeometry,
    pub(crate) lines: Vec<Line>,
    pub(crate) stamp: u64,
}

impl SetAssocCache {
    /// Build an empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        SetAssocCache {
            geometry,
            lines: vec![Line::empty(); geometry.sets * geometry.ways],
            stamp: 0,
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    #[inline]
    fn set_slice(&self, set: usize) -> &[Line] {
        let w = self.geometry.ways;
        &self.lines[set * w..(set + 1) * w]
    }

    #[inline]
    pub(crate) fn line_mut(&mut self, set: usize, way: usize) -> &mut Line {
        &mut self.lines[set * self.geometry.ways + way]
    }

    #[inline]
    pub(crate) fn line(&self, set: usize, way: usize) -> &Line {
        &self.lines[set * self.geometry.ways + way]
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Look up a line address without modifying replacement state.
    pub fn probe(&self, line: u64) -> Lookup {
        let set = self.geometry.set_of(line);
        for (way, l) in self.set_slice(set).iter().enumerate() {
            if l.tag == line {
                match l.state {
                    CacheLineState::Valid => return Lookup::Hit { set, way },
                    CacheLineState::Reserved => return Lookup::PendingHit { set, way },
                    CacheLineState::Invalid => {}
                }
            }
        }
        Lookup::Miss
    }

    /// Look up a line and, on hit, refresh its LRU stamp.
    pub fn access(&mut self, line: u64) -> Lookup {
        let res = self.probe(line);
        if let Lookup::Hit { set, way } = res {
            let stamp = self.next_stamp();
            self.line_mut(set, way).lru = stamp;
        }
        res
    }

    /// Choose an eviction victim in the set of `line`: an invalid way if
    /// any, otherwise the least-recently-used non-reserved way. Returns
    /// `None` if every way is reserved for pending fills.
    pub fn pick_victim(&self, line: u64) -> Option<(usize, usize)> {
        let set = self.geometry.set_of(line);
        let mut best: Option<(usize, u64)> = None;
        for (way, l) in self.set_slice(set).iter().enumerate() {
            match l.state {
                CacheLineState::Invalid => return Some((set, way)),
                CacheLineState::Reserved => {}
                CacheLineState::Valid => {
                    if best.is_none_or(|(_, lru)| l.lru < lru) {
                        best = Some((way, l.lru));
                    }
                }
            }
        }
        best.map(|(way, _)| (set, way))
    }

    /// Reserve `(set, way)` for an in-flight fill of `line`.
    ///
    /// # Panics
    /// Panics (debug) if the slot is currently reserved.
    pub fn reserve(&mut self, set: usize, way: usize, line: u64) {
        let stamp = self.next_stamp();
        let l = self.line_mut(set, way);
        debug_assert_ne!(l.state, CacheLineState::Reserved);
        l.tag = line;
        l.state = CacheLineState::Reserved;
        l.lru = stamp;
        l.touchers = 0;
    }

    /// Complete the fill of a previously reserved slot, recording the set of
    /// warps waiting on it as its initial touchers.
    pub fn fill(&mut self, set: usize, way: usize, touchers: u64) {
        let stamp = self.next_stamp();
        let l = self.line_mut(set, way);
        debug_assert_eq!(l.state, CacheLineState::Reserved);
        l.state = CacheLineState::Valid;
        l.lru = stamp;
        l.touchers = touchers;
    }

    /// Insert a valid line immediately (used by the L2 model, where fills
    /// are applied at request time). Evicts the LRU non-reserved way;
    /// silently drops the insert if the set is fully reserved.
    pub fn insert(&mut self, line: u64) {
        if matches!(
            self.probe(line),
            Lookup::Hit { .. } | Lookup::PendingHit { .. }
        ) {
            return;
        }
        self.insert_missing(line);
    }

    /// [`SetAssocCache::insert`] for a line the caller has already probed
    /// as missing, skipping the redundant lookup (the L2 read path calls
    /// this right after its miss lookup).
    pub fn insert_missing(&mut self, line: u64) {
        debug_assert_eq!(self.probe(line), Lookup::Miss);
        if let Some((set, way)) = self.pick_victim(line) {
            let stamp = self.next_stamp();
            let l = self.line_mut(set, way);
            l.tag = line;
            l.state = CacheLineState::Valid;
            l.lru = stamp;
            l.touchers = 0;
        }
    }

    /// Invalidate a line if present (write-evict stores).
    pub fn invalidate(&mut self, line: u64) {
        if let Lookup::Hit { set, way } | Lookup::PendingHit { set, way } = self.probe(line) {
            // Only valid lines are dropped; a reserved line must survive to
            // receive its fill.
            let l = self.line_mut(set, way);
            if l.state == CacheLineState::Valid {
                l.state = CacheLineState::Invalid;
            }
        }
    }

    /// Number of valid lines currently held.
    pub fn valid_lines(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.state == CacheLineState::Valid)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SetIndexing;

    fn geo(sets: usize, ways: usize) -> CacheGeometry {
        CacheGeometry {
            sets,
            ways,
            line_bytes: 128,
            indexing: SetIndexing::Linear,
        }
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut c = SetAssocCache::new(geo(4, 2));
        assert_eq!(c.access(5), Lookup::Miss);
        c.insert(5);
        assert!(matches!(c.access(5), Lookup::Hit { .. }));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = SetAssocCache::new(geo(1, 2));
        c.insert(10);
        c.insert(20);
        // Touch 10 so 20 becomes LRU.
        assert!(matches!(c.access(10), Lookup::Hit { .. }));
        c.insert(30);
        assert!(matches!(c.access(10), Lookup::Hit { .. }));
        assert_eq!(c.access(20), Lookup::Miss);
        assert!(matches!(c.access(30), Lookup::Hit { .. }));
    }

    #[test]
    fn reserved_lines_are_not_victims() {
        let mut c = SetAssocCache::new(geo(1, 2));
        let (s0, w0) = c.pick_victim(1).unwrap();
        c.reserve(s0, w0, 1);
        let (s1, w1) = c.pick_victim(2).unwrap();
        assert_ne!((s0, w0), (s1, w1));
        c.reserve(s1, w1, 2);
        assert_eq!(c.pick_victim(3), None);
    }

    #[test]
    fn fill_makes_reserved_line_valid_with_touchers() {
        let mut c = SetAssocCache::new(geo(2, 2));
        let (s, w) = c.pick_victim(7).unwrap();
        c.reserve(s, w, 7);
        assert!(matches!(c.probe(7), Lookup::PendingHit { .. }));
        c.fill(s, w, 0b101);
        match c.probe(7) {
            Lookup::Hit { set, way } => {
                assert_eq!(c.line(set, way).touchers, 0b101)
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn invalidate_drops_valid_but_not_reserved() {
        let mut c = SetAssocCache::new(geo(2, 2));
        c.insert(3);
        c.invalidate(3);
        assert_eq!(c.probe(3), Lookup::Miss);
        let (s, w) = c.pick_victim(9).unwrap();
        c.reserve(s, w, 9);
        c.invalidate(9);
        assert!(matches!(c.probe(9), Lookup::PendingHit { .. }));
    }

    #[test]
    fn valid_lines_counts_occupancy() {
        let mut c = SetAssocCache::new(geo(4, 4));
        assert_eq!(c.valid_lines(), 0);
        for l in 0..10 {
            c.insert(l);
        }
        assert_eq!(c.valid_lines(), 10);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = SetAssocCache::new(geo(4, 2));
        for l in 0..1000u64 {
            c.insert(l * 3);
        }
        assert!(c.valid_lines() <= 8);
    }
}
