//! A small scoped thread pool with work stealing, plus the process-wide
//! helper-thread budget it draws from.
//!
//! ## The pool
//!
//! [`ThreadPool`] is built once per simulation ([`crate::Gpu`] keeps it
//! across `run()` calls) and reused for every parallel round, so the
//! per-round cost is a condvar wake, not a thread spawn. Each round
//! ([`ThreadPool::run`]) distributes `items` indices over the
//! participants — the calling thread plus the pool's workers — as
//! contiguous chunks with atomic claim cursors; a participant drains its
//! own chunk first (cache-friendly, contention-free) and then steals from
//! whichever chunk has the most work left. The caller's installed
//! [`CancelToken`] is re-installed inside every worker for the duration
//! of the round, so watchdogs fire inside parallel advances too.
//!
//! ## The budget
//!
//! Worker threads are **helpers** accounted against a process-wide budget
//! so that nested parallelism composes instead of oversubscribing: an
//! outer `parallel_map` fan-out and the inner per-SM advance threads draw
//! from the same pot. The budget counts helper threads only — every
//! already-running thread that *calls* into a fan-out participates in the
//! work for free. The cap is `available_parallelism` minus the caller,
//! overridable with the `POISE_THREAD_BUDGET` environment variable
//! (useful for CI and for the sweep fabric, which divides the host
//! between worker processes). [`acquire_helpers`] never blocks: it grants
//! what is available (possibly zero) and callers degrade gracefully to
//! running sequentially on their own thread.

use crate::cancel;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Environment variable overriding the process-wide thread budget
/// (total threads the process should keep busy, including the main one).
pub const BUDGET_ENV: &str = "POISE_THREAD_BUDGET";

/// The process-wide thread budget: total concurrent compute threads this
/// process should use. `POISE_THREAD_BUDGET` if set (and ≥ 1), else
/// [`std::thread::available_parallelism`].
pub fn thread_budget() -> usize {
    std::env::var(BUDGET_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Helper threads currently leased process-wide (for tests/diagnostics).
pub fn helpers_in_use() -> usize {
    HELPERS_IN_USE.load(Ordering::Relaxed)
}

static HELPERS_IN_USE: AtomicUsize = AtomicUsize::new(0);

/// A lease over some number of helper threads; returns them to the
/// process-wide budget on drop.
#[derive(Debug)]
pub struct Lease {
    granted: usize,
}

impl Lease {
    /// How many helpers this lease actually granted (≤ what was asked).
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        if self.granted > 0 {
            HELPERS_IN_USE.fetch_sub(self.granted, Ordering::AcqRel);
        }
    }
}

/// Lease up to `want` helper threads from the process-wide budget.
///
/// Never blocks: the grant is `min(want, budget - 1 - helpers_in_use)`
/// (the `- 1` reserves a slot for the calling thread, which always
/// participates in its own fan-out) and may be zero, in which case the
/// caller simply runs sequentially. First-come first-served by design —
/// fairness across concurrent fan-outs is not a goal; not oversubscribing
/// the host is.
pub fn acquire_helpers(want: usize) -> Lease {
    let cap = thread_budget().saturating_sub(1);
    loop {
        let used = HELPERS_IN_USE.load(Ordering::Acquire);
        let take = want.min(cap.saturating_sub(used));
        if take == 0 {
            return Lease { granted: 0 };
        }
        if HELPERS_IN_USE
            .compare_exchange(used, used + take, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return Lease { granted: take };
        }
    }
}

/// One round's item distribution: contiguous chunks with atomic claim
/// cursors. Claiming is a `fetch_add` on the owner's cursor; stealing is
/// the same `fetch_add` on the victim's. Overshoot past a chunk's end is
/// harmless (bounded by the number of concurrent stealers) — `remaining`
/// saturates.
struct Chunks {
    /// Claim cursor per chunk (next unclaimed global index).
    cursors: Vec<AtomicUsize>,
    /// Exclusive end per chunk.
    ends: Vec<usize>,
}

impl Chunks {
    fn new(items: usize, parts: usize) -> Self {
        let parts = parts.max(1);
        let per = items / parts;
        let extra = items % parts;
        let mut cursors = Vec::with_capacity(parts);
        let mut ends = Vec::with_capacity(parts);
        let mut start = 0;
        for p in 0..parts {
            let len = per + usize::from(p < extra);
            cursors.push(AtomicUsize::new(start));
            ends.push(start + len);
            start += len;
        }
        debug_assert_eq!(start, items);
        Chunks { cursors, ends }
    }

    fn claim(&self, chunk: usize) -> Option<usize> {
        let i = self.cursors[chunk].fetch_add(1, Ordering::Relaxed);
        (i < self.ends[chunk]).then_some(i)
    }

    fn remaining(&self, chunk: usize) -> usize {
        self.ends[chunk].saturating_sub(self.cursors[chunk].load(Ordering::Relaxed))
    }

    /// Participant `who`'s drive loop: drain the own chunk, then steal
    /// from the fullest chunk until everything is claimed.
    fn drive(&self, who: usize, f: &(dyn Fn(usize) + Sync)) {
        while let Some(i) = self.claim(who) {
            f(i);
        }
        loop {
            let victim = (0..self.cursors.len())
                .filter(|&c| c != who)
                .max_by_key(|&c| self.remaining(c))
                .filter(|&c| self.remaining(c) > 0);
            let Some(v) = victim else { break };
            // Claim one item at a time so concurrent stealers rebalance.
            match self.claim(v) {
                Some(i) => f(i),
                None => continue, // lost the race; re-pick a victim
            }
        }
    }
}

/// The lifetime-erased per-round task handed to workers. Soundness: the
/// submitting thread blocks in [`ThreadPool::run`] until every worker has
/// finished the round, so the erased borrow never outlives the closure.
type Task = &'static (dyn Fn(usize) + Sync);

struct PoolState {
    task: Option<Task>,
    /// Round number; workers run each round exactly once.
    round: u64,
    /// Workers still executing the current round.
    active: usize,
    /// A worker panicked during the current round.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work: Condvar,
    done: Condvar,
}

/// A persistent pool of parked worker threads (see the module docs).
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Budget lease backing the workers, held for the pool's lifetime.
    _lease: Lease,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl ThreadPool {
    /// Build a pool with up to `want_workers` helper threads, bounded by
    /// the process-wide budget (possibly zero workers, in which case
    /// [`Self::run`] executes inline on the caller).
    pub fn new(want_workers: usize) -> Self {
        Self::from_lease(acquire_helpers(want_workers))
    }

    /// Test-only: a pool with exactly `n` workers regardless of the host
    /// budget, so the cross-thread paths (condvar hand-off, stealing,
    /// panic propagation) really execute even on single-core hosts.
    #[cfg(test)]
    pub(crate) fn with_forced_workers(n: usize) -> Self {
        HELPERS_IN_USE.fetch_add(n, Ordering::AcqRel);
        Self::from_lease(Lease { granted: n })
    }

    fn from_lease(lease: Lease) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                task: None,
                round: 0,
                active: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..lease.granted())
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("poise-sm-{w}"))
                    .spawn(move || worker_loop(&shared, w + 1))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            _lease: lease,
        }
    }

    /// Number of helper threads (participants are `workers() + 1`: the
    /// calling thread drives chunk 0).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Run `f(i)` for every `i in 0..items`, distributed over the caller
    /// plus the workers with chunked work stealing. Blocks until all
    /// items are done. `f` must tolerate concurrent invocation for
    /// distinct `i` (it is `Sync`). Panics in `f` are propagated to the
    /// caller after the round drains.
    pub fn run(&mut self, items: usize, f: impl Fn(usize) + Sync) {
        let chunks = Chunks::new(items, self.workers() + 1);
        let token = cancel::current();
        let body = move |who: usize| {
            let _guard = cancel::install(token.clone());
            chunks.drive(who, &f);
        };
        if self.handles.is_empty() {
            body(0);
            return;
        }
        let task: &(dyn Fn(usize) + Sync) = &body;
        // SAFETY: we block below until `active == 0`, i.e. until no worker
        // can still hold this borrow; see `Task`.
        let task: Task = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        };
        {
            let mut st = self.shared.state.lock().unwrap();
            st.task = Some(task);
            st.round += 1;
            st.active = self.handles.len();
            st.panicked = false;
        }
        self.shared.work.notify_all();
        let main_panic = catch_unwind(AssertUnwindSafe(|| body(0))).err();
        let mut st = self.shared.state.lock().unwrap();
        while st.active > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.task = None;
        let worker_panicked = st.panicked;
        drop(st);
        if let Some(p) = main_panic {
            std::panic::resume_unwind(p);
        }
        if worker_panicked {
            panic!("a thread-pool worker panicked during a parallel round");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, who: usize) {
    let mut last_round = 0u64;
    loop {
        let task = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.round != last_round {
                    if let Some(t) = st.task {
                        last_round = st.round;
                        break t;
                    }
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        let panicked = catch_unwind(AssertUnwindSafe(|| task(who))).is_err();
        let mut st = shared.state.lock().unwrap();
        st.active -= 1;
        if panicked {
            st.panicked = true;
        }
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::CancelToken;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn all_items_run_exactly_once() {
        let mut pool = ThreadPool::with_forced_workers(3);
        assert_eq!(pool.workers(), 3);
        for items in [0usize, 1, 7, 64, 1000] {
            let hits: Vec<AtomicU64> = (0..items).map(|_| AtomicU64::new(0)).collect();
            pool.run(items, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        // Exhaust the budget so the pool gets no helpers.
        let hog = acquire_helpers(usize::MAX);
        let mut pool = ThreadPool::new(4);
        assert_eq!(pool.workers(), 0);
        let count = AtomicU64::new(0);
        pool.run(10, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
        drop(hog);
    }

    #[test]
    fn cancel_token_reaches_pool_workers() {
        let token = CancelToken::new();
        let _g = cancel::install(Some(token.clone()));
        let mut pool = ThreadPool::with_forced_workers(2);
        let seen = AtomicU64::new(0);
        let outer = token.clone();
        pool.run(16, |_| {
            if cancel::current().is_some_and(|t| t.same_as(&outer)) {
                seen.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(seen.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn lease_returns_to_budget_on_drop() {
        let before = helpers_in_use();
        let lease = acquire_helpers(1);
        // On a 1-core budget the grant may be 0; either way drop restores.
        let granted = lease.granted();
        assert_eq!(helpers_in_use(), before + granted);
        drop(lease);
        assert_eq!(helpers_in_use(), before);
    }

    #[test]
    fn worker_panic_propagates() {
        let mut pool = ThreadPool::with_forced_workers(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |i| {
                if i == 5 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err());
        // The pool survives a panicked round.
        let count = AtomicU64::new(0);
        pool.run(4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn chunks_balance_and_steal() {
        let c = Chunks::new(10, 3);
        assert_eq!(c.ends, vec![4, 7, 10]);
        // Drain chunk 0, then steal everything else from participant 0.
        let seen = Mutex::new(Vec::new());
        c.drive(0, &|i| seen.lock().unwrap().push(i));
        let mut got = seen.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
