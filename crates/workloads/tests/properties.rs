//! Property-based tests of the synthetic kernel generator and the trace
//! recorder/replayer.

use gpu_sim::{Instr, KernelSource};
use proptest::prelude::*;
use workloads::{record_kernel, AccessMix, KernelSpec, TraceData, TraceRef};

fn mix_strategy() -> impl Strategy<Value = AccessMix> {
    (
        0usize..16,                             // alu_per_load
        1usize..4,                              // mlp
        0usize..8,                              // ind_gap
        (1usize..64, 1usize..4, 0.0f64..=0.95), // hot lines/repeat/frac
        1usize..2_000,                          // cold lines
        (1usize..128, 0.0f64..=0.5),            // shared lines/frac
        0.0f64..=0.3,                           // stream frac
        0.0f64..=0.3,                           // store frac
    )
        .prop_map(|(alu, mlp, gap, (hl, hr, hf), cl, (sl, sf), stf, stof)| {
            let mut stream = stf;
            if sf + stream > 0.95 {
                stream = 0.95 - sf;
            }
            AccessMix {
                alu_per_load: alu,
                mlp,
                ind_gap: gap,
                hot_lines: hl,
                hot_repeat: hr,
                hot_frac: hf,
                cold_lines: cl,
                shared_lines: sl,
                shared_frac: sf,
                stream_frac: stream,
                store_frac: stof,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streams are deterministic: the same (spec, position) yields the
    /// same instructions.
    #[test]
    fn generator_is_deterministic(mix in mix_strategy(), seed in 0u64..1_000) {
        let spec = KernelSpec::steady("p", mix, seed);
        let take = |spec: &KernelSpec| -> Vec<Instr> {
            let mut s = spec.stream_for(1, 0, 3);
            (0..300).filter_map(|_| s.next_instr()).collect()
        };
        prop_assert_eq!(take(&spec), take(&spec));
    }

    /// The emitted load density tracks the requested instruction mix: a
    /// full pattern period contains exactly `mlp` memory ops.
    #[test]
    fn load_density_matches_mix(mix in mix_strategy(), seed in 0u64..1_000) {
        let spec = KernelSpec::steady("p", mix, seed);
        let mut s = spec.stream_for(0, 0, 0);
        let period = mix.alu_per_load + mix.mlp + mix.ind_gap;
        let periods = 40usize;
        let mut mem = 0usize;
        let mut counted = 0usize;
        // Count issued (non-sync) instructions.
        while counted < period * periods {
            match s.next_instr() {
                Some(Instr::Load { .. }) | Some(Instr::Store { .. }) => {
                    mem += 1;
                    counted += 1;
                }
                Some(Instr::Alu) => counted += 1,
                Some(Instr::SyncLoads) => {}
                None => break,
            }
        }
        prop_assert_eq!(mem, mix.mlp * periods);
    }

    /// Distinct warps never share private (hot/stream) addresses.
    #[test]
    fn private_addresses_are_disjoint(mix in mix_strategy(), seed in 0u64..1_000) {
        let spec = KernelSpec::steady("p", mix, seed);
        let collect = |sm: usize, w: usize| {
            let mut s = spec.stream_for(sm, 0, w);
            let mut v = std::collections::HashSet::new();
            for _ in 0..500 {
                if let Some(Instr::Load { line, pc }) | Some(Instr::Store { line, pc }) =
                    s.next_instr()
                {
                    // Only private classes (hot = 2, cold = 3 is per-SM,
                    // stream = 1 private).
                    if pc == workloads::spec::pcs::HOT || pc == workloads::spec::pcs::STREAM {
                        v.insert(line);
                    }
                }
            }
            v
        };
        let a = collect(0, 0);
        let b = collect(0, 1);
        prop_assert!(a.is_disjoint(&b));
    }

    /// Bounded traces end; unbounded traces do not (within a horizon).
    #[test]
    fn trace_len_semantics(mix in mix_strategy(), len in 10u64..200) {
        let bounded = KernelSpec::steady("p", mix, 1).with_trace_len(len);
        let mut s = bounded.stream_for(0, 0, 0);
        let mut n = 0u64;
        while s.next_instr().is_some() {
            n += 1;
            prop_assert!(n <= len + len / 2 + 8, "stream must end near len");
        }
        let unbounded = KernelSpec::steady("p", mix, 1);
        let mut u = unbounded.stream_for(0, 0, 0);
        for _ in 0..500 {
            prop_assert!(u.next_instr().is_some());
        }
    }

    /// Jittered family members keep fractions valid (the suites rely on
    /// this for arbitrary benchmark seeds).
    #[test]
    fn suite_families_have_valid_fractions(idx in 0usize..118) {
        for bench in workloads::evaluation_suite() {
            if let Some(k) = bench.kernels.get(idx) {
                let m = k.synthetic().expect("suites are synthetic").base_mix();
                prop_assert!((0.0..=1.0).contains(&m.hot_frac));
                prop_assert!(m.shared_frac + m.stream_frac <= 0.96);
                prop_assert!(m.store_frac <= 1.0);
                prop_assert!((1..=24).contains(&KernelSource::warps_per_scheduler(k)));
            }
        }
    }

    /// Trace encode → decode is the identity on recorded trace data, for
    /// arbitrary generator mixes and recording geometries.
    #[test]
    fn trace_text_round_trips(
        mix in mix_strategy(),
        seed in 0u64..1_000,
        sms in 1usize..3,
        scheds in 1usize..3,
        warps in 1usize..5,
        cap in 1usize..300,
    ) {
        let spec = KernelSpec::steady("rt", mix, seed).with_warps(warps);
        let data = record_kernel(&spec, "rt", sms, scheds, cap);
        let back = TraceData::from_text(&data.to_text()).expect("decode");
        prop_assert_eq!(&data, &back);
        // And the digest is a function of the content alone.
        let a = TraceRef::from_data(data.clone());
        let b = TraceRef::from_data(back);
        prop_assert_eq!(a.digest, b.digest);
    }

    /// Replaying a recorded trace reproduces the live generator's stream
    /// exactly, instruction by instruction, for every recorded warp — and
    /// ends exactly at the recording horizon.
    #[test]
    fn recorder_replayer_streams_are_bit_identical(
        mix in mix_strategy(),
        seed in 0u64..1_000,
        cap in 1usize..400,
    ) {
        let spec = KernelSpec::steady("rr", mix, seed).with_warps(2);
        let tref = TraceRef::from_data(record_kernel(&spec, "rr", 1, 2, cap));
        for (sched, warp) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)] {
            let mut live = spec.stream_for(0, sched, warp);
            let mut replay = tref.stream_for(0, sched, warp);
            // The recorder pulled exactly `cap` Instrs (the generator is
            // unbounded), so replay matches for `cap` and then ends.
            for i in 0..cap {
                prop_assert_eq!(
                    replay.next_instr(),
                    live.next_instr(),
                    "diverged at warp ({}, {}) instr {}", sched, warp, i
                );
            }
            prop_assert_eq!(replay.next_instr(), None);
        }
    }

    /// Corrupting any single line of an encoded trace never yields a
    /// *different valid* trace: decoding either fails or (for the rare
    /// benign edits, e.g. within-run ALU splits) preserves the replayed
    /// instruction stream... in practice deletion must simply never
    /// round-trip to the original.
    #[test]
    fn dropping_a_line_is_detected(mix in mix_strategy(), seed in 0u64..100, victim in 1usize..40) {
        let spec = KernelSpec::steady("c", mix, seed).with_warps(2);
        let data = record_kernel(&spec, "c", 1, 1, 60);
        let text = data.to_text();
        let lines: Vec<&str> = text.lines().collect();
        prop_assume!(victim < lines.len());
        let mutated: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        match TraceData::from_text(&mutated) {
            Err(_) => {}
            Ok(decoded) => {
                prop_assert!(decoded != data, "a dropped line must not decode to the original")
            }
        }
    }
}
