//! Property-based tests of the synthetic kernel generator.

use gpu_sim::{Instr, KernelSource};
use proptest::prelude::*;
use workloads::{AccessMix, KernelSpec};

fn mix_strategy() -> impl Strategy<Value = AccessMix> {
    (
        0usize..16,                             // alu_per_load
        1usize..4,                              // mlp
        0usize..8,                              // ind_gap
        (1usize..64, 1usize..4, 0.0f64..=0.95), // hot lines/repeat/frac
        1usize..2_000,                          // cold lines
        (1usize..128, 0.0f64..=0.5),            // shared lines/frac
        0.0f64..=0.3,                           // stream frac
        0.0f64..=0.3,                           // store frac
    )
        .prop_map(|(alu, mlp, gap, (hl, hr, hf), cl, (sl, sf), stf, stof)| {
            let mut stream = stf;
            if sf + stream > 0.95 {
                stream = 0.95 - sf;
            }
            AccessMix {
                alu_per_load: alu,
                mlp,
                ind_gap: gap,
                hot_lines: hl,
                hot_repeat: hr,
                hot_frac: hf,
                cold_lines: cl,
                shared_lines: sl,
                shared_frac: sf,
                stream_frac: stream,
                store_frac: stof,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streams are deterministic: the same (spec, position) yields the
    /// same instructions.
    #[test]
    fn generator_is_deterministic(mix in mix_strategy(), seed in 0u64..1_000) {
        let spec = KernelSpec::steady("p", mix, seed);
        let take = |spec: &KernelSpec| -> Vec<Instr> {
            let mut s = spec.stream_for(1, 0, 3);
            (0..300).filter_map(|_| s.next_instr()).collect()
        };
        prop_assert_eq!(take(&spec), take(&spec));
    }

    /// The emitted load density tracks the requested instruction mix: a
    /// full pattern period contains exactly `mlp` memory ops.
    #[test]
    fn load_density_matches_mix(mix in mix_strategy(), seed in 0u64..1_000) {
        let spec = KernelSpec::steady("p", mix, seed);
        let mut s = spec.stream_for(0, 0, 0);
        let period = mix.alu_per_load + mix.mlp + mix.ind_gap;
        let periods = 40usize;
        let mut mem = 0usize;
        let mut counted = 0usize;
        // Count issued (non-sync) instructions.
        while counted < period * periods {
            match s.next_instr() {
                Some(Instr::Load { .. }) | Some(Instr::Store { .. }) => {
                    mem += 1;
                    counted += 1;
                }
                Some(Instr::Alu) => counted += 1,
                Some(Instr::SyncLoads) => {}
                None => break,
            }
        }
        prop_assert_eq!(mem, mix.mlp * periods);
    }

    /// Distinct warps never share private (hot/stream) addresses.
    #[test]
    fn private_addresses_are_disjoint(mix in mix_strategy(), seed in 0u64..1_000) {
        let spec = KernelSpec::steady("p", mix, seed);
        let collect = |sm: usize, w: usize| {
            let mut s = spec.stream_for(sm, 0, w);
            let mut v = std::collections::HashSet::new();
            for _ in 0..500 {
                if let Some(Instr::Load { line, pc }) | Some(Instr::Store { line, pc }) =
                    s.next_instr()
                {
                    // Only private classes (hot = 2, cold = 3 is per-SM,
                    // stream = 1 private).
                    if pc == workloads::spec::pcs::HOT || pc == workloads::spec::pcs::STREAM {
                        v.insert(line);
                    }
                }
            }
            v
        };
        let a = collect(0, 0);
        let b = collect(0, 1);
        prop_assert!(a.is_disjoint(&b));
    }

    /// Bounded traces end; unbounded traces do not (within a horizon).
    #[test]
    fn trace_len_semantics(mix in mix_strategy(), len in 10u64..200) {
        let bounded = KernelSpec::steady("p", mix, 1).with_trace_len(len);
        let mut s = bounded.stream_for(0, 0, 0);
        let mut n = 0u64;
        while s.next_instr().is_some() {
            n += 1;
            prop_assert!(n <= len + len / 2 + 8, "stream must end near len");
        }
        let unbounded = KernelSpec::steady("p", mix, 1);
        let mut u = unbounded.stream_for(0, 0, 0);
        for _ in 0..500 {
            prop_assert!(u.next_instr().is_some());
        }
    }

    /// Jittered family members keep fractions valid (the suites rely on
    /// this for arbitrary benchmark seeds).
    #[test]
    fn suite_families_have_valid_fractions(idx in 0usize..118) {
        for bench in workloads::evaluation_suite() {
            if let Some(k) = bench.kernels.get(idx) {
                let m = k.base_mix();
                prop_assert!((0.0..=1.0).contains(&m.hot_frac));
                prop_assert!(m.shared_frac + m.stream_frac <= 0.96);
                prop_assert!(m.store_frac <= 1.0);
                prop_assert!((1..=24).contains(&k.warps_per_scheduler));
            }
        }
    }
}
