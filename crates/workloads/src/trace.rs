//! The trace-driven kernel backend: a compact, versioned per-warp trace
//! format, a replayer ([`TraceKernel`] / [`TraceRef`]), a **recorder**
//! that can dump any [`KernelSource`] to a trace, and an importer for a
//! simple Accel-Sim-style text format.
//!
//! ## Why traces
//!
//! The Poise paper evaluates on real CUDA workloads replayed through
//! GPGPU-Sim. The synthetic generator in [`crate::spec`] covers the
//! paper's characterised locality shapes, but a trace backend opens the
//! simulator to *recorded* workloads: dumps of the synthetic generator
//! itself (a bit-exact regression artefact), hand-written scenarios, or
//! imports of Accel-Sim-style kernel traces.
//!
//! ## The format (`poise trace v1`)
//!
//! Line-oriented text, one file per kernel:
//!
//! ```text
//! # poise trace v1
//! name <kernel name>
//! warps_per_scheduler <w>
//! n_pcs <k>
//! geometry <sms> <schedulers>
//! warp <sm> <scheduler> <warp>
//! a <count>          # run-length-encoded span of ALU instructions
//! l <line-hex> <pc>  # global load of one cache line
//! s <line-hex> <pc>  # global store of one cache line
//! y                  # SyncLoads dependence barrier
//! end
//! ...one block per warp, all sms × schedulers × w of them...
//! end-trace
//! ```
//!
//! The op alphabet is exactly the simulator's [`Instr`] alphabet; ALU
//! spans are run-length encoded because they dominate instruction counts
//! while carrying no payload. The trailing `end-trace` marker makes a
//! truncated file detectable.
//!
//! ## Replay semantics
//!
//! A trace records a *finite* stream per warp for a fixed geometry. The
//! replayer maps a requested `(sm, scheduler)` position onto the recorded
//! geometry **modulo**, so a trace recorded at 1 SM can drive a larger
//! machine (every SM replays the recorded SM's streams, sharing its
//! absolute line addresses through the L2 — deterministic, and documented
//! as part of the workload's meaning). Warps whose recorded ops run out
//! simply finish, like a [`crate::KernelSpec`] with a `trace_len`.
//!
//! Replaying a trace recorded from a synthetic kernel at the *same*
//! geometry is **bit-identical** to the live generator for as many
//! instructions as were recorded — the correctness oracle
//! `crates/core/tests/trace_replay.rs` pins this for every shipped
//! controller under both step modes.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::digest::sha256_hex_bytes;
use gpu_sim::{Instr, InstructionStream, KernelSource};

/// Current trace-format version tag (the first line of every file).
pub const TRACE_HEADER: &str = "# poise trace v1";

/// One recorded operation. ALU instructions are run-length encoded; the
/// other variants map 1:1 onto [`Instr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// `count` consecutive ALU instructions (`count >= 1`).
    AluRun(u32),
    /// A global load of one cache line.
    Load {
        /// Line address.
        line: u64,
        /// Static load-site identifier.
        pc: u32,
    },
    /// A global store of one cache line.
    Store {
        /// Line address.
        line: u64,
        /// Static store-site identifier.
        pc: u32,
    },
    /// The `SyncLoads` dependence barrier.
    Sync,
}

/// Errors from decoding or loading a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The file does not start with the v1 header.
    BadHeader,
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// The file ended before the `end-trace` marker (torn write, partial
    /// download, …).
    Truncated,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadHeader => write!(f, "not a poise trace (missing `{TRACE_HEADER}`)"),
            TraceError::Parse { line, msg } => write!(f, "trace parse error at line {line}: {msg}"),
            TraceError::Truncated => write!(f, "trace truncated (missing `end-trace` marker)"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A fully decoded trace: per-warp op streams for a fixed geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceData {
    /// Kernel name carried in the file.
    pub name: String,
    /// Warps launched per scheduler.
    pub warps_per_scheduler: usize,
    /// Number of distinct static load/store sites.
    pub n_pcs: usize,
    /// Recorded SM count.
    pub sms: usize,
    /// Recorded schedulers per SM.
    pub schedulers: usize,
    /// `ops[warp_index(sm, sched, warp)]`, dense over the geometry.
    ops: Vec<Vec<TraceOp>>,
}

impl TraceData {
    fn warp_index(&self, sm: usize, scheduler: usize, warp: usize) -> usize {
        let sm = sm % self.sms;
        let scheduler = scheduler % self.schedulers;
        (sm * self.schedulers + scheduler) * self.warps_per_scheduler
            + (warp % self.warps_per_scheduler)
    }

    /// The recorded ops of one warp (geometry folded modulo, like replay).
    pub fn warp_ops(&self, sm: usize, scheduler: usize, warp: usize) -> &[TraceOp] {
        &self.ops[self.warp_index(sm, scheduler, warp)]
    }

    /// Total instructions across all warps (ALU runs expanded).
    pub fn total_instructions(&self) -> u64 {
        self.ops
            .iter()
            .flatten()
            .map(|op| match op {
                TraceOp::AluRun(n) => u64::from(*n),
                _ => 1,
            })
            .sum()
    }

    /// Serialise to the v1 text format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{TRACE_HEADER}");
        let _ = writeln!(s, "name {}", self.name);
        let _ = writeln!(s, "warps_per_scheduler {}", self.warps_per_scheduler);
        let _ = writeln!(s, "n_pcs {}", self.n_pcs);
        let _ = writeln!(s, "geometry {} {}", self.sms, self.schedulers);
        for sm in 0..self.sms {
            for sched in 0..self.schedulers {
                for warp in 0..self.warps_per_scheduler {
                    let _ = writeln!(s, "warp {sm} {sched} {warp}");
                    for op in self.warp_ops(sm, sched, warp) {
                        match op {
                            TraceOp::AluRun(n) => {
                                let _ = writeln!(s, "a {n}");
                            }
                            TraceOp::Load { line, pc } => {
                                let _ = writeln!(s, "l {line:x} {pc}");
                            }
                            TraceOp::Store { line, pc } => {
                                let _ = writeln!(s, "s {line:x} {pc}");
                            }
                            TraceOp::Sync => {
                                let _ = writeln!(s, "y");
                            }
                        }
                    }
                    let _ = writeln!(s, "end");
                }
            }
        }
        let _ = writeln!(s, "end-trace");
        s
    }

    /// Decode the v1 text format. Any malformed, out-of-range or missing
    /// content is an error (a corrupt trace must never silently replay as
    /// a different workload).
    pub fn from_text(text: &str) -> Result<TraceData, TraceError> {
        let mut lines = text.lines().enumerate();
        let perr = |line: usize, msg: String| TraceError::Parse {
            line: line + 1,
            msg,
        };
        let mut next_line = |expect: &str| -> Result<(usize, &str), TraceError> {
            lines
                .next()
                .ok_or(TraceError::Truncated)
                .map(|(i, l)| (i, l.trim_end()))
                .and_then(|(i, l)| {
                    if l.is_empty() {
                        Err(perr(i, format!("empty line (expected {expect})")))
                    } else {
                        Ok((i, l))
                    }
                })
        };

        let (_, header) = next_line("header")?;
        if header != TRACE_HEADER {
            return Err(TraceError::BadHeader);
        }
        let field = |want: &str, got: (usize, &str)| -> Result<String, TraceError> {
            let (i, l) = got;
            l.strip_prefix(want)
                .and_then(|r| r.strip_prefix(' '))
                .map(|r| r.to_string())
                .ok_or_else(|| perr(i, format!("expected `{want} ...`, got {l:?}")))
        };
        let name = field("name", next_line("name")?)?;
        let parse_usize = |s: &str, i: usize, what: &str| -> Result<usize, TraceError> {
            s.parse()
                .map_err(|_| perr(i, format!("invalid {what}: {s:?}")))
        };
        let got = next_line("warps_per_scheduler")?;
        let warps_per_scheduler =
            parse_usize(&field("warps_per_scheduler", got)?, got.0, "warp count")?;
        let got = next_line("n_pcs")?;
        let n_pcs = parse_usize(&field("n_pcs", got)?, got.0, "pc count")?;
        // Bounded like the geometry below: the simulator allocates per-PC
        // tracking state of this size per SM, so a corrupt header must be
        // a parse error, not an allocation abort.
        if n_pcs > 1 << 16 {
            return Err(perr(got.0, format!("implausible n_pcs ({n_pcs})")));
        }
        let (gi, gl) = next_line("geometry")?;
        let geom = field("geometry", (gi, gl))?;
        let mut it = geom.split_whitespace();
        let sms = parse_usize(it.next().unwrap_or(""), gi, "SM count")?;
        let schedulers = parse_usize(it.next().unwrap_or(""), gi, "scheduler count")?;
        if it.next().is_some() {
            return Err(perr(gi, "trailing tokens after geometry".into()));
        }
        if warps_per_scheduler == 0 || sms == 0 || schedulers == 0 {
            return Err(perr(gi, "geometry fields must be positive".into()));
        }
        let n_warps = sms * schedulers * warps_per_scheduler;
        if n_warps > 1 << 20 {
            return Err(perr(gi, format!("implausible geometry ({n_warps} warps)")));
        }

        let mut ops: Vec<Vec<TraceOp>> = Vec::with_capacity(n_warps);
        for expected in 0..n_warps {
            let (wi, wl) = next_line("warp")?;
            let hdr = field("warp", (wi, wl))?;
            let mut it = hdr.split_whitespace();
            let sm = parse_usize(it.next().unwrap_or(""), wi, "warp sm")?;
            let sched = parse_usize(it.next().unwrap_or(""), wi, "warp scheduler")?;
            let warp = parse_usize(it.next().unwrap_or(""), wi, "warp index")?;
            let idx = (sm * schedulers + sched) * warps_per_scheduler + warp;
            if sm >= sms || sched >= schedulers || warp >= warps_per_scheduler || idx != expected {
                return Err(perr(
                    wi,
                    format!("warp {sm}/{sched}/{warp} out of order or out of geometry"),
                ));
            }
            let mut warp_ops = Vec::new();
            loop {
                let (oi, ol) = next_line("op or end")?;
                let mut toks = ol.split_whitespace();
                match toks.next() {
                    Some("end") => break,
                    Some("a") => {
                        let n: u32 = toks
                            .next()
                            .and_then(|t| t.parse().ok())
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| perr(oi, format!("invalid ALU run: {ol:?}")))?;
                        warp_ops.push(TraceOp::AluRun(n));
                    }
                    Some(k @ ("l" | "s")) => {
                        let line = toks
                            .next()
                            .and_then(|t| u64::from_str_radix(t, 16).ok())
                            .ok_or_else(|| perr(oi, format!("invalid line address: {ol:?}")))?;
                        let pc: u32 = toks
                            .next()
                            .and_then(|t| t.parse().ok())
                            .filter(|&pc| (pc as usize) < n_pcs.max(1))
                            .ok_or_else(|| perr(oi, format!("invalid pc: {ol:?}")))?;
                        warp_ops.push(if k == "l" {
                            TraceOp::Load { line, pc }
                        } else {
                            TraceOp::Store { line, pc }
                        });
                    }
                    Some("y") => warp_ops.push(TraceOp::Sync),
                    _ => return Err(perr(oi, format!("unknown op {ol:?}"))),
                }
                if toks.next().is_some() {
                    return Err(perr(oi, format!("trailing tokens in {ol:?}")));
                }
            }
            ops.push(warp_ops);
        }
        let (_, last) = next_line("end-trace")?;
        if last != "end-trace" {
            return Err(TraceError::Truncated);
        }
        Ok(TraceData {
            name,
            warps_per_scheduler,
            n_pcs,
            sms,
            schedulers,
            ops,
        })
    }
}

// ---------------------------------------------------------------------------
// Recorder.
// ---------------------------------------------------------------------------

/// Record `source` into a trace: pull up to `max_ops_per_warp`
/// instructions from every warp stream of the `sms × schedulers` grid and
/// run-length encode the ALU spans.
///
/// The recorded trace replays **bit-identically** to the live source at
/// the same geometry, for as long as the recording lasts — so
/// `max_ops_per_warp` must exceed what a simulation will consume. A warp
/// can issue at most one instruction per cycle and emits at most one
/// (free) sync per issued instruction, so `2 × cycle_budget + 4` per warp
/// is always enough.
pub fn record_kernel(
    source: &dyn KernelSource,
    name: &str,
    sms: usize,
    schedulers: usize,
    max_ops_per_warp: usize,
) -> TraceData {
    assert!(sms >= 1 && schedulers >= 1 && max_ops_per_warp >= 1);
    let warps = source.warps_per_scheduler();
    let mut ops = Vec::with_capacity(sms * schedulers * warps);
    for sm in 0..sms {
        for sched in 0..schedulers {
            for warp in 0..warps {
                let mut stream = source.stream_for(sm, sched, warp);
                let mut warp_ops: Vec<TraceOp> = Vec::new();
                for _ in 0..max_ops_per_warp {
                    let Some(instr) = stream.next_instr() else {
                        break;
                    };
                    match instr {
                        Instr::Alu => match warp_ops.last_mut() {
                            Some(TraceOp::AluRun(n)) => *n += 1,
                            _ => warp_ops.push(TraceOp::AluRun(1)),
                        },
                        Instr::Load { line, pc } => warp_ops.push(TraceOp::Load { line, pc }),
                        Instr::Store { line, pc } => warp_ops.push(TraceOp::Store { line, pc }),
                        Instr::SyncLoads => warp_ops.push(TraceOp::Sync),
                    }
                }
                ops.push(warp_ops);
            }
        }
    }
    TraceData {
        name: name.to_string(),
        warps_per_scheduler: warps,
        n_pcs: source.n_pcs(),
        sms,
        schedulers,
        ops,
    }
}

// ---------------------------------------------------------------------------
// Replayer.
// ---------------------------------------------------------------------------

/// A loaded, content-addressed trace workload: the replayer plus the
/// identity (`name`, SHA-256 `digest` of the encoded bytes) that keys it
/// in experiment caches. Cheap to clone (the decoded ops are shared).
///
/// Equality is by content digest: two `TraceRef`s loaded from identical
/// bytes are the same workload wherever the files live, and editing a
/// trace file yields a different workload (and thus different cache
/// keys) on the next load.
#[derive(Clone)]
pub struct TraceRef {
    /// SHA-256 of the encoded trace bytes.
    pub digest: String,
    /// Where the trace was loaded from (informational; not part of the
    /// workload's identity).
    pub path: PathBuf,
    data: Arc<TraceData>,
}

/// Alias emphasising the `KernelSource` role of a loaded trace.
pub type TraceKernel = TraceRef;

impl TraceRef {
    /// Load and decode a trace file.
    pub fn load(path: impl AsRef<Path>) -> Result<TraceRef, TraceError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)?;
        let text = String::from_utf8_lossy(&bytes);
        let data = TraceData::from_text(&text)?;
        Ok(TraceRef {
            digest: sha256_hex_bytes(&bytes),
            path: path.to_path_buf(),
            data: Arc::new(data),
        })
    }

    /// Wrap in-memory trace data (digesting its canonical encoding), e.g.
    /// straight out of [`record_kernel`] without touching the filesystem.
    pub fn from_data(data: TraceData) -> TraceRef {
        let digest = sha256_hex_bytes(data.to_text().as_bytes());
        TraceRef {
            digest,
            path: PathBuf::new(),
            data: Arc::new(data),
        }
    }

    /// Encode and write the trace to `path`, returning the loaded-back
    /// reference (whose digest matches what a later [`TraceRef::load`]
    /// will compute). The write is atomic (temp file + rename), so an
    /// interrupted re-record leaves the previous trace intact instead of
    /// a truncated file.
    pub fn write(data: &TraceData, path: impl AsRef<Path>) -> Result<TraceRef, TraceError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
        std::fs::write(&tmp, data.to_text())?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        TraceRef::load(path)
    }

    /// The kernel name recorded in the trace.
    pub fn name(&self) -> &str {
        &self.data.name
    }

    /// The decoded trace.
    pub fn data(&self) -> &TraceData {
        &self.data
    }
}

impl fmt::Debug for TraceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Identity only — never the op streams (this repr enters job spec
        // texts and progress labels).
        f.debug_struct("TraceRef")
            .field("name", &self.data.name)
            .field("digest", &self.digest)
            .field("warps_per_scheduler", &self.data.warps_per_scheduler)
            .field("n_pcs", &self.data.n_pcs)
            .field("geometry", &(self.data.sms, self.data.schedulers))
            .finish()
    }
}

impl PartialEq for TraceRef {
    fn eq(&self, other: &Self) -> bool {
        self.digest == other.digest
    }
}

impl KernelSource for TraceRef {
    fn stream_for(&self, sm: usize, scheduler: usize, warp: usize) -> Box<dyn InstructionStream> {
        Box::new(TraceStream {
            data: Arc::clone(&self.data),
            warp: self.data.warp_index(sm, scheduler, warp),
            pos: 0,
            alu_left: 0,
        })
    }

    fn warps_per_scheduler(&self) -> usize {
        self.data.warps_per_scheduler
    }

    fn n_pcs(&self) -> usize {
        self.data.n_pcs.max(1)
    }
}

/// Lazy per-warp replay cursor: an index into the shared decoded ops plus
/// the remaining length of the current ALU run. No per-stream copy of the
/// trace is made.
struct TraceStream {
    data: Arc<TraceData>,
    warp: usize,
    pos: usize,
    alu_left: u32,
}

impl InstructionStream for TraceStream {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.alu_left > 0 {
            self.alu_left -= 1;
            return Some(Instr::Alu);
        }
        let op = self.data.ops[self.warp].get(self.pos)?;
        self.pos += 1;
        Some(match *op {
            TraceOp::AluRun(n) => {
                self.alu_left = n - 1;
                Instr::Alu
            }
            TraceOp::Load { line, pc } => Instr::Load { line, pc },
            TraceOp::Store { line, pc } => Instr::Store { line, pc },
            TraceOp::Sync => Instr::SyncLoads,
        })
    }
}

// ---------------------------------------------------------------------------
// Accel-Sim-style importer.
// ---------------------------------------------------------------------------

/// Import a simple Accel-Sim-style kernel trace (the `.traceg` text shape:
/// `warp = <id>` headers followed by instruction lines
/// `PC mask dest_num [regs...] OPCODE src_num [regs...] [width addr...]`).
///
/// The importer understands a documented subset:
///
/// * `-key = value` metadata, `#BEGIN_TB`/`#END_TB`, `thread block = …`
///   and `insts = …` lines are skipped;
/// * opcodes starting `LD`/`LDG`/`LDL` become loads, `ST`/`STG`/`STL`
///   stores — taking the first `0x…` token as the byte address (folded to
///   a 128-byte line) and the instruction PC as the load site;
/// * opcodes containing `BAR` become [`Instr::SyncLoads`];
/// * everything else becomes one ALU instruction.
///
/// Warps are laid out round-robin over `schedulers_per_sm` schedulers of
/// as many SMs as needed, at most `warps_per_scheduler` warps each.
/// Distinct instruction PCs are densely renumbered so per-PC policies
/// (APCM) see a compact site space.
pub fn import_accelsim(
    text: &str,
    name: &str,
    schedulers_per_sm: usize,
    warps_per_scheduler: usize,
) -> Result<TraceData, TraceError> {
    assert!(schedulers_per_sm >= 1 && warps_per_scheduler >= 1);
    let mut warps: Vec<Vec<TraceOp>> = Vec::new();
    let mut current: Option<Vec<TraceOp>> = None;
    let mut pc_map: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let dense_pc = |raw: u64, map: &mut std::collections::HashMap<u64, u32>| -> u32 {
        let next = map.len() as u32;
        *map.entry(raw).or_insert(next)
    };

    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty()
            || line.starts_with('-')
            || line.starts_with('#')
            || line.starts_with("thread block")
            || line.starts_with("insts")
        {
            continue;
        }
        if let Some(rest) = line.strip_prefix("warp") {
            let rest = rest.trim_start_matches([' ', '=']).trim();
            rest.parse::<u64>().map_err(|_| TraceError::Parse {
                line: i + 1,
                msg: format!("invalid warp header {line:?}"),
            })?;
            if let Some(w) = current.take() {
                warps.push(w);
            }
            current = Some(Vec::new());
            continue;
        }
        let Some(ops) = current.as_mut() else {
            return Err(TraceError::Parse {
                line: i + 1,
                msg: "instruction before any `warp = …` header".into(),
            });
        };
        let toks: Vec<&str> = line.split_whitespace().collect();
        // PC mask dest_num [dest_regs]*dest_num OPCODE ...
        let parse = || -> Option<(u64, &str, Option<u64>)> {
            let pc = u64::from_str_radix(toks.first()?, 16).ok()?;
            let dest_num: usize = toks.get(2)?.parse().ok()?;
            let opcode = toks.get(3 + dest_num)?;
            let addr = toks
                .iter()
                .find(|t| t.starts_with("0x"))
                .and_then(|t| u64::from_str_radix(&t[2..], 16).ok());
            Some((pc, opcode, addr))
        };
        let Some((pc, opcode, addr)) = parse() else {
            return Err(TraceError::Parse {
                line: i + 1,
                msg: format!("unparseable instruction {line:?}"),
            });
        };
        let op = opcode.split('.').next().unwrap_or(opcode);
        if op.starts_with("LD") || op.starts_with("ST") {
            let line_addr = addr.ok_or_else(|| TraceError::Parse {
                line: i + 1,
                msg: format!("memory instruction without an address: {raw:?}"),
            })? >> 7;
            let pc = dense_pc(pc, &mut pc_map);
            ops.push(if op.starts_with("LD") {
                TraceOp::Load {
                    line: line_addr,
                    pc,
                }
            } else {
                TraceOp::Store {
                    line: line_addr,
                    pc,
                }
            });
            // Accel-Sim traces carry no explicit dependence token; treat
            // every load group as immediately consumed (conservative:
            // memory-latency-bound replay).
            if op.starts_with("LD") {
                ops.push(TraceOp::Sync);
            }
        } else if op.contains("BAR") {
            ops.push(TraceOp::Sync);
        } else {
            match ops.last_mut() {
                Some(TraceOp::AluRun(n)) => *n += 1,
                _ => ops.push(TraceOp::AluRun(1)),
            }
        }
    }
    if let Some(w) = current.take() {
        warps.push(w);
    }
    if warps.is_empty() {
        return Err(TraceError::Parse {
            line: 1,
            msg: "no warps found".into(),
        });
    }

    // Lay the imported warps out over the requested machine shape.
    let per_sm = schedulers_per_sm * warps_per_scheduler;
    let sms = warps.len().div_ceil(per_sm);
    let mut ops = vec![Vec::new(); sms * per_sm];
    for (i, w) in warps.into_iter().enumerate() {
        ops[i] = w;
    }
    Ok(TraceData {
        name: name.to_string(),
        warps_per_scheduler,
        n_pcs: pc_map.len().max(1),
        sms,
        schedulers: schedulers_per_sm,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessMix, KernelSpec};

    fn sample_data() -> TraceData {
        record_kernel(
            &KernelSpec::steady("t", AccessMix::memory_sensitive(), 9).with_warps(2),
            "t",
            1,
            2,
            200,
        )
    }

    #[test]
    fn text_round_trip_is_exact() {
        let data = sample_data();
        let back = TraceData::from_text(&data.to_text()).unwrap();
        assert_eq!(data, back);
    }

    #[test]
    fn replay_matches_live_generator() {
        let spec = KernelSpec::steady("t", AccessMix::memory_sensitive(), 3).with_warps(4);
        let data = record_kernel(&spec, "t", 2, 2, 500);
        let tref = TraceRef::from_data(data);
        for (sm, sched, warp) in [(0, 0, 0), (1, 1, 3), (0, 1, 2)] {
            let mut live = spec.stream_for(sm, sched, warp);
            let mut replay = tref.stream_for(sm, sched, warp);
            for i in 0..500 {
                assert_eq!(
                    replay.next_instr(),
                    live.next_instr(),
                    "divergence at {sm}/{sched}/{warp} instr {i}"
                );
            }
        }
    }

    #[test]
    fn replay_folds_geometry_modulo() {
        let spec = KernelSpec::steady("t", AccessMix::memory_sensitive(), 3).with_warps(2);
        let tref = TraceRef::from_data(record_kernel(&spec, "t", 1, 2, 100));
        let take = |sm: usize| -> Vec<Option<Instr>> {
            let mut s = tref.stream_for(sm, 0, 1);
            (0..50).map(|_| s.next_instr()).collect()
        };
        assert_eq!(take(0), take(5), "SMs beyond the geometry fold modulo");
    }

    #[test]
    fn finite_replay_ends() {
        let tref = TraceRef::from_data(sample_data());
        let mut s = tref.stream_for(0, 0, 0);
        let mut n = 0;
        while s.next_instr().is_some() {
            n += 1;
            assert!(n <= 100_000, "replay must terminate");
        }
        assert!(n >= 200, "recorded 200 ops must expand to >= 200 instrs");
    }

    #[test]
    fn digest_identifies_content_not_location() {
        let data = sample_data();
        let dir = std::env::temp_dir().join(format!("poise-trace-test-{}", std::process::id()));
        let a = TraceRef::write(&data, dir.join("a.trace")).unwrap();
        let b = TraceRef::write(&data, dir.join("sub/b.trace")).unwrap();
        assert_eq!(a, b, "same bytes, same workload");
        assert_eq!(a.digest, TraceRef::from_data(data).digest);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_traces_error() {
        let text = sample_data().to_text();
        // Truncation: drop the end-trace marker (and some tail).
        let cut = &text[..text.len() - 30];
        assert!(matches!(
            TraceData::from_text(cut),
            Err(TraceError::Truncated) | Err(TraceError::Parse { .. })
        ));
        // Wrong header.
        assert!(matches!(
            TraceData::from_text("# other format\n"),
            Err(TraceError::BadHeader)
        ));
        // Implausible n_pcs is a parse error, not an allocation request
        // forwarded to the simulator's per-PC tracking.
        let huge_pcs = text.replacen("n_pcs 4", "n_pcs 999999999999", 1);
        assert_ne!(huge_pcs, text);
        assert!(matches!(
            TraceData::from_text(&huge_pcs),
            Err(TraceError::Parse { .. })
        ));
        // Garbage op line: error names the line.
        let garbled = text.replacen("\ny\n", "\nq zzz\n", 1);
        match TraceData::from_text(&garbled) {
            Err(TraceError::Parse { line, .. }) => assert!(line > 4),
            other => panic!("expected parse error, got {other:?}"),
        }
        // Out-of-range pc.
        let bad_pc = text.replacen(" 2\n", " 99\n", 1);
        if bad_pc != text {
            assert!(TraceData::from_text(&bad_pc).is_err());
        }
        // Trailing garbage on any op line — including loads/stores — is
        // rejected, not silently dropped.
        for (needle, replacement) in [("\ny\n", "\ny junk\n"), ("\nl ", "\nl deadbeef 0 junk\nl ")]
        {
            let garbled = text.replacen(needle, replacement, 1);
            assert_ne!(garbled, text, "test needle {needle:?} must occur");
            assert!(
                matches!(
                    TraceData::from_text(&garbled),
                    Err(TraceError::Parse { .. })
                ),
                "trailing tokens in {needle:?} line must be a parse error"
            );
        }
    }

    #[test]
    fn importer_understands_accelsim_subset() {
        let text = "\
-kernel name = vecadd
#BEGIN_TB
thread block = 0,0,0
warp = 0
insts = 5
0008 ffffffff 1 R1 IMAD 0
0010 ffffffff 1 R2 LDG.E 1 R1 4 0x7f0000000200
0018 ffffffff 0 BAR.SYNC 0
0020 ffffffff 0 STG.E 1 R2 4 0x7f0000000400
0028 ffffffff 1 R3 EXIT 0
warp = 1
0008 ffffffff 1 R1 IMAD 0
0010 ffffffff 1 R2 LDG.E 1 R1 4 0x7f0000000280
#END_TB
";
        let data = import_accelsim(text, "vecadd", 2, 4).unwrap();
        assert_eq!(data.sms, 1);
        assert_eq!(data.warps_per_scheduler, 4);
        let w0 = data.warp_ops(0, 0, 0);
        assert!(matches!(w0[0], TraceOp::AluRun(1)));
        assert!(matches!(w0[1], TraceOp::Load { line, pc: 0 } if line == 0x7f0000000200 >> 7));
        assert!(matches!(w0[2], TraceOp::Sync)); // implicit load consumer
        assert!(matches!(w0[3], TraceOp::Sync)); // BAR.SYNC
        assert!(matches!(w0[4], TraceOp::Store { pc: 1, .. }));
        assert_eq!(data.n_pcs, 2);
        // Unheadered instructions are an error.
        assert!(import_accelsim("0008 ffffffff 0 NOP 0\n", "x", 2, 4).is_err());
        // Round-trips through the native format.
        let back = TraceData::from_text(&data.to_text()).unwrap();
        assert_eq!(data, back);
    }
}
