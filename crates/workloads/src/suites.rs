//! Named benchmark suites mirroring the paper's Table IIIa workloads.
//!
//! Each paper benchmark is replaced by a synthetic kernel (family) whose
//! locality profile follows the published characterisation — see the crate
//! docs and DESIGN.md for the substitution argument. Multi-kernel
//! applications (`ii` has 118 kernels, `ss` 164, `pvr` 248, …) are built by
//! deterministic parameter jitter around a base mix, giving the regression
//! a realistically diverse population.
//!
//! ## Footprint calibration
//!
//! The baseline L1 holds 128 lines per SM and the L2's per-SM share is
//! 576 lines; 48 warps run per SM. The knobs are therefore set so that:
//!
//! * `48 × hot_lines ≫ 128` — per-warp hot sets thrash the baseline L1
//!   (the pathology Poise relieves) but a few polluting warps' hot sets
//!   fit, giving the high `hp` at small `p` that Fig. 4 reports;
//! * `cold_lines` (a per-SM array swept by all warps) sets reuse distance
//!   and the L2/DRAM pressure: smaller than the 64× L1 (8192 lines) for
//!   high-Pbest benchmarks, far larger for bfs/cfd-style low-Pbest ones;
//! * `shared_lines ≲ 128` — the inter-warp tile survives in the L1 when
//!   polluting warps keep refetching it, giving non-polluting warps their
//!   `hnp` hits (the syr2k/cfd shape).

use crate::spec::{AccessMix, Benchmark, KernelSpec, Phase};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministically jitter a base mix into the `idx`-th family member.
fn jitter(base: &AccessMix, bench_seed: u64, idx: u64) -> (AccessMix, usize) {
    let mut rng = SmallRng::seed_from_u64(
        bench_seed
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add(idx),
    );
    let scale = |rng: &mut SmallRng, v: usize, lo: f64, hi: f64| -> usize {
        ((v as f64 * rng.gen_range(lo..hi)).round() as usize).max(1)
    };
    let shift = |rng: &mut SmallRng, v: f64, amt: f64| -> f64 {
        (v + rng.gen_range(-amt..amt)).clamp(0.0, 0.95)
    };
    let mut m = *base;
    m.hot_lines = scale(&mut rng, m.hot_lines, 0.6, 1.6);
    m.cold_lines = scale(&mut rng, m.cold_lines, 0.5, 2.0);
    m.shared_lines = scale(&mut rng, m.shared_lines, 0.7, 1.4);
    m.alu_per_load = scale(&mut rng, m.alu_per_load.max(1), 0.6, 1.5);
    m.hot_frac = shift(&mut rng, m.hot_frac, 0.10);
    m.shared_frac = shift(&mut rng, m.shared_frac, 0.08);
    m.stream_frac = shift(&mut rng, m.stream_frac, 0.04);
    if m.shared_frac + m.stream_frac > 0.95 {
        m.stream_frac = 0.95 - m.shared_frac;
    }
    // Occasional partial occupancy, exercising the paper's tuple scaling.
    let warps = match rng.gen_range(0..6u32) {
        0 => 16,
        1 => 12,
        _ => 24,
    };
    (m, warps)
}

/// Build a jittered kernel family.
fn family(name: &str, base: AccessMix, count: usize, seed: u64) -> Benchmark {
    let kernels: Vec<KernelSpec> = (0..count)
        .map(|i| {
            let (mix, warps) = jitter(&base, seed, i as u64);
            KernelSpec::steady(format!("{name}#{i}"), mix, seed ^ (i as u64) << 1).with_warps(warps)
        })
        .collect();
    Benchmark::new(name, kernels)
}

/// An intra-warp-locality-dominated mix (the `ii` shape: ~97% intra-warp
/// hits, small per-warp hot set, negligible sharing, moderate cold sweep).
fn intra_heavy() -> AccessMix {
    AccessMix {
        alu_per_load: 2,
        mlp: 2,
        ind_gap: 1,
        hot_lines: 12,
        hot_repeat: 2,
        hot_frac: 0.85,
        cold_lines: 400,
        shared_lines: 16,
        shared_frac: 0.03,
        stream_frac: 0.03,
        store_frac: 0.03,
    }
}

/// An inter-warp-locality-dominated mix (the `syr2k` shape: ~60%
/// inter-warp hits via a shared tile, heavily memory-bound).
fn inter_heavy() -> AccessMix {
    AccessMix {
        alu_per_load: 1,
        mlp: 2,
        ind_gap: 0,
        hot_lines: 6,
        hot_repeat: 2,
        hot_frac: 0.5,
        cold_lines: 1500,
        shared_lines: 72,
        shared_frac: 0.55,
        stream_frac: 0.03,
        store_frac: 0.03,
    }
}

/// The training suite (Table IIIa): gco, pvr, ccl — fully disjoint from
/// the evaluation suite, spanning a spectrum of memory sensitivity
/// (Pbest 3.43x / 2.07x / 1.49x).
pub fn training_suite() -> Vec<Benchmark> {
    let gco = AccessMix {
        // Graph colouring: irregular, strong per-warp locality on
        // adjacency chunks, some shared frontier, DRAM-heavy sweep.
        alu_per_load: 2,
        mlp: 2,
        ind_gap: 1,
        hot_lines: 12,
        hot_repeat: 2,
        hot_frac: 0.7,
        cold_lines: 500,
        shared_lines: 32,
        shared_frac: 0.15,
        stream_frac: 0.04,
        store_frac: 0.05,
    };
    let pvr = AccessMix {
        // Page-view rank (MapReduce): hash-bucket reuse plus scan traffic.
        alu_per_load: 3,
        mlp: 2,
        ind_gap: 1,
        hot_lines: 10,
        hot_repeat: 2,
        hot_frac: 0.6,
        cold_lines: 800,
        shared_lines: 48,
        shared_frac: 0.25,
        stream_frac: 0.08,
        store_frac: 0.06,
    };
    let ccl = AccessMix {
        // Component labelling: weaker locality, more streaming.
        alu_per_load: 5,
        mlp: 1,
        ind_gap: 2,
        hot_lines: 8,
        hot_repeat: 2,
        hot_frac: 0.5,
        cold_lines: 3500,
        shared_lines: 40,
        shared_frac: 0.18,
        stream_frac: 0.15,
        store_frac: 0.07,
    };
    vec![
        family("gco", gco, 12, 101),
        family("pvr", pvr, 248, 102),
        family("ccl", ccl, 17, 103),
    ]
}

/// A two-phase monolithic kernel: alternates between an intra-heavy and an
/// inter-heavy regime. These model the paper's syrk/gsmv/mvt/atax
/// observation that Poise's periodic re-prediction captures phase changes
/// that kernel-granularity offline profiling (Static-Best) cannot.
fn phased_kernel(name: &str, seed: u64, phase_len: u64) -> KernelSpec {
    let mut a = intra_heavy();
    a.hot_lines = 16;
    a.hot_frac = 0.9;
    a.alu_per_load = 2;
    let mut b = inter_heavy();
    b.shared_frac = 0.5;
    b.cold_lines = 1500;
    KernelSpec::phased(
        name,
        vec![
            Phase {
                mix: a,
                instructions: phase_len,
            },
            Phase {
                mix: b,
                instructions: phase_len,
            },
        ],
        seed,
    )
}

/// The evaluation suite (Table IIIa): eleven benchmarks unseen during
/// training, listed in the paper's order (sorted by Pbest).
pub fn evaluation_suite() -> Vec<Benchmark> {
    let mut suite = Vec::new();

    // syr2k — Pbest 14.1x: extremely memory-bound, inter-warp dominated,
    // optimum close to the SWL diagonal.
    suite.push(Benchmark::new(
        "syr2k",
        vec![KernelSpec::steady("syr2k#0", inter_heavy(), 201)],
    ));

    // syrk — Pbest 9.0x, monolithic kernel with phase changes.
    suite.push(Benchmark::new(
        "syrk",
        vec![phased_kernel("syrk#0", 202, 30_000)],
    ));

    // mm — Pbest 6.2x, 23 kernels, strongest Poise win (2.94x): intra-heavy
    // and severely memory-bound.
    let mm = AccessMix {
        alu_per_load: 1,
        mlp: 2,
        ind_gap: 0,
        hot_lines: 16,
        hot_repeat: 2,
        hot_frac: 0.9,
        cold_lines: 500,
        shared_lines: 32,
        shared_frac: 0.08,
        stream_frac: 0.02,
        store_frac: 0.03,
    };
    suite.push(family("mm", mm, 23, 203));

    // ii — Pbest 5.9x, 118 kernels, 97% intra-warp hits.
    suite.push(family("ii", intra_heavy(), 118, 204));

    // gsmv — Pbest 3.2x, 2 monolithic phased kernels.
    suite.push(Benchmark::new(
        "gsmv",
        vec![
            phased_kernel("gsmv#0", 205, 24_000),
            phased_kernel("gsmv#1", 206, 40_000),
        ],
    ));

    // mvt — Pbest 3.0x, 1 monolithic phased kernel.
    suite.push(Benchmark::new(
        "mvt",
        vec![phased_kernel("mvt#0", 207, 32_000)],
    ));

    // bicg — Pbest 2.9x, optimum close to the SWL diagonal.
    let mut bicg = inter_heavy();
    bicg.alu_per_load = 2;
    bicg.shared_frac = 0.6;
    bicg.cold_lines = 1200;
    suite.push(Benchmark::new(
        "bicg",
        vec![
            KernelSpec::steady("bicg#0", bicg, 208),
            KernelSpec::steady("bicg#1", bicg, 209).with_warps(16),
        ],
    ));

    // ss — Pbest 2.85x, 164 kernels, moderate mixed locality.
    let ss = AccessMix {
        alu_per_load: 4,
        mlp: 2,
        ind_gap: 1,
        hot_lines: 10,
        hot_repeat: 2,
        hot_frac: 0.6,
        cold_lines: 600,
        shared_lines: 40,
        shared_frac: 0.2,
        stream_frac: 0.08,
        store_frac: 0.05,
    };
    suite.push(family("ss", ss, 164, 210));

    // atax — Pbest 2.7x, 2 monolithic phased kernels.
    suite.push(Benchmark::new(
        "atax",
        vec![
            phased_kernel("atax#0", 211, 28_000),
            phased_kernel("atax#1", 212, 36_000),
        ],
    ));

    // bfs — Pbest 1.55x, 24 kernels, 77% intra / 23% inter, very long
    // reuse distances that defeat even large caches.
    let bfs = AccessMix {
        alu_per_load: 4,
        mlp: 1,
        ind_gap: 2,
        hot_lines: 20,
        hot_repeat: 2,
        hot_frac: 0.55,
        cold_lines: 16_000,
        shared_lines: 24,
        shared_frac: 0.15,
        stream_frac: 0.06,
        store_frac: 0.05,
    };
    suite.push(family("bfs", bfs, 24, 213));

    // kmeans — Pbest 1.42x, 8 kernels, weak sensitivity (streaming plus
    // more compute per load).
    let kmeans = AccessMix {
        alu_per_load: 7,
        mlp: 1,
        ind_gap: 3,
        hot_lines: 6,
        hot_repeat: 2,
        hot_frac: 0.45,
        cold_lines: 20_000,
        shared_lines: 48,
        shared_frac: 0.25,
        stream_frac: 0.18,
        store_frac: 0.07,
    };
    suite.push(family("kmeans", kmeans, 8, 214));

    suite
}

/// The four kernels characterised in Fig. 4, at their published
/// intra/inter-warp splits and reuse distances (ii 97%/3% R=236;
/// bfs 77%/23% R=1136; syr2k 40%/60% R=240; cfd 2%/98% R=3161).
pub fn fig4_kernels() -> Vec<KernelSpec> {
    let ii = intra_heavy();
    let bfs = AccessMix {
        alu_per_load: 4,
        mlp: 1,
        ind_gap: 2,
        hot_lines: 20,
        hot_repeat: 2,
        hot_frac: 0.55,
        cold_lines: 16_000,
        shared_lines: 24,
        shared_frac: 0.15,
        stream_frac: 0.06,
        store_frac: 0.05,
    };
    let syr2k = inter_heavy();
    let cfd = AccessMix {
        // cfd: 2% intra / 98% inter — negligible per-warp reuse, all
        // locality on a shared flux tile, enormous cold sweep.
        alu_per_load: 2,
        mlp: 2,
        ind_gap: 1,
        hot_lines: 2,
        hot_repeat: 1,
        hot_frac: 0.04,
        cold_lines: 24_000,
        shared_lines: 64,
        shared_frac: 0.5,
        stream_frac: 0.03,
        store_frac: 0.04,
    };
    vec![
        KernelSpec::steady("ii", ii, 301),
        KernelSpec::steady("bfs", bfs, 302),
        KernelSpec::steady("syr2k", syr2k, 303),
        KernelSpec::steady("cfd", cfd, 304),
    ]
}

/// The compute-insensitive suite of Fig. 16 (`Pbest < 20%`): long ALU
/// stretches between loads (In above Poise's Imax cut-off) and small
/// footprints.
pub fn compute_insensitive_suite() -> Vec<Benchmark> {
    let names: [(&str, usize, u64); 7] = [
        ("wc", 60, 401),
        ("covar", 80, 402),
        ("gramschm", 70, 403),
        ("sradv2", 90, 404),
        ("hybridsort", 65, 405),
        ("hotspot", 100, 406),
        ("pathfinder", 75, 407),
    ];
    names
        .iter()
        .map(|&(name, alu, seed)| {
            let mut mix = AccessMix::compute_intensive();
            mix.alu_per_load = alu;
            Benchmark::new(
                name,
                vec![KernelSpec::steady(format!("{name}#0"), mix, seed)],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iiia_kernel_counts_are_respected() {
        let train = training_suite();
        let counts: Vec<(String, usize)> = train
            .iter()
            .map(|b| (b.name.clone(), b.kernels.len()))
            .collect();
        assert_eq!(
            counts,
            vec![
                ("gco".to_string(), 12),
                ("pvr".to_string(), 248),
                ("ccl".to_string(), 17)
            ]
        );
        assert_eq!(train.iter().map(|b| b.kernels.len()).sum::<usize>(), 277);

        let eval = evaluation_suite();
        assert_eq!(eval.iter().map(|b| b.kernels.len()).sum::<usize>(), 346);
        let by_name = |n: &str| {
            eval.iter()
                .find(|b| b.name == n)
                .unwrap_or_else(|| panic!("{n} missing"))
                .kernels
                .len()
        };
        assert_eq!(by_name("ii"), 118);
        assert_eq!(by_name("ss"), 164);
        assert_eq!(by_name("mm"), 23);
        assert_eq!(by_name("bfs"), 24);
        assert_eq!(by_name("syr2k"), 1);
    }

    #[test]
    fn training_and_evaluation_are_disjoint() {
        let train: std::collections::HashSet<String> =
            training_suite().iter().map(|b| b.name.clone()).collect();
        for b in evaluation_suite() {
            assert!(!train.contains(&b.name));
        }
    }

    #[test]
    fn jitter_is_deterministic_and_diverse() {
        let base = intra_heavy();
        let (a1, w1) = jitter(&base, 42, 7);
        let (a2, w2) = jitter(&base, 42, 7);
        assert_eq!(a1, a2);
        assert_eq!(w1, w2);
        let (b, _) = jitter(&base, 42, 8);
        assert_ne!(a1, b);
    }

    #[test]
    fn compute_insensitive_kernels_have_high_in() {
        for b in compute_insensitive_suite() {
            let mix = b.kernels[0].synthetic().unwrap().base_mix();
            // In ~ alu_per_load + ind_gap per load; must exceed Imax = 49.
            assert!(mix.alu_per_load + mix.ind_gap > 49, "{}", b.name);
        }
    }

    #[test]
    fn fig4_kernels_cover_the_four_benchmarks() {
        let names: Vec<String> = fig4_kernels().iter().map(|k| k.name.clone()).collect();
        assert_eq!(names, vec!["ii", "bfs", "syr2k", "cfd"]);
    }

    #[test]
    fn fig4_reuse_distance_ordering_matches_paper() {
        // Paper: R(ii) = 236 < R(bfs) = 1136 < R(cfd) = 3161; syr2k = 240.
        let ks = fig4_kernels();
        let cold = |i: usize| ks[i].base_mix().cold_lines;
        assert!(cold(0) < cold(1), "ii < bfs");
        assert!(cold(1) < cold(3), "bfs < cfd");
    }

    #[test]
    fn phased_kernels_alternate_phases() {
        let k = phased_kernel("x", 1, 1000);
        assert_eq!(k.phases.len(), 2);
        assert!(k.phases[0].mix.hot_frac > k.phases[1].mix.hot_frac);
    }
}
