//! # workloads — kernel workloads for the Poise reproduction
//!
//! The Poise paper evaluates on CUDA benchmarks (Rodinia, Polybench, Mars
//! MapReduce, the Graph suite) executed under GPGPU-Sim. This crate
//! provides the kernels the reproduction runs instead, behind one
//! identity type — [`Workload`] — with **two backends**:
//!
//! * **Synthetic** ([`spec`]): generated kernels whose memory behaviour
//!   is tuned to match what the paper reports about each benchmark — the
//!   intra-/inter-warp locality split and reuse distance of Fig. 4, the
//!   kernel counts and `Pbest` (speedup with a 64× L1) ordering of
//!   Table IIIa, the monolithic phase-changing kernels of Section VII-D,
//!   and the compute-intensive suite of Fig. 16. A [`KernelSpec`]
//!   describes one kernel as a sequence of [`Phase`]s, each with an
//!   [`AccessMix`]: how many ALU instructions separate loads (the paper's
//!   `In`), how many loads issue back-to-back (memory-level parallelism),
//!   how far a load's consumer trails it (instruction concurrency), and
//!   where loads go — a small *hot* per-warp set, a large per-SM *cold*
//!   sweep, a per-SM *shared* set or a *streaming* region.
//!
//! * **Trace replay** ([`trace`]): recorded per-warp instruction streams
//!   in a compact versioned text format, replayed through the same
//!   [`gpu_sim::InstructionStream`] seam. Traces come from the
//!   **recorder** (which can dump any [`gpu_sim::KernelSource`] —
//!   including the synthetic generator, giving a bit-exact replay
//!   oracle), or from the Accel-Sim-style importer
//!   ([`trace::import_accelsim`]). A loaded trace is identified by the
//!   SHA-256 of its file contents, so experiment caches key trace
//!   workloads by *content*, not location.
//!
//! Both backends implement [`gpu_sim::KernelSource`] and are
//! deterministic: synthetic kernels given their seed, traces given their
//! bytes. Everything above the simulator (profiler, trainer, experiment
//! engine, figures) takes [`Workload`] and treats the two identically.

pub mod digest;
pub mod spec;
pub mod suites;
pub mod trace;
pub mod workload;

pub use spec::{AccessMix, Benchmark, KernelSpec, Phase};
pub use suites::{compute_insensitive_suite, evaluation_suite, fig4_kernels, training_suite};
pub use trace::{import_accelsim, record_kernel, TraceData, TraceError, TraceKernel, TraceRef};
pub use workload::Workload;

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{FixedTuple, Gpu, GpuConfig, KernelSource};

    #[test]
    fn all_suite_kernels_run() {
        let cfg = GpuConfig::scaled(1);
        for bench in training_suite()
            .iter()
            .chain(evaluation_suite().iter())
            .take(4)
        {
            let k = &bench.kernels[0];
            let mut gpu = Gpu::new(cfg.clone(), k);
            let res = gpu.run(&mut FixedTuple::max(), 2_000);
            assert!(
                res.counters.instructions > 0,
                "kernel {} of {} issued nothing",
                k.name(),
                bench.name
            );
        }
    }

    #[test]
    fn kernels_expose_pcs() {
        let suite = evaluation_suite();
        assert!(suite[0].kernels[0].n_pcs() >= 4);
    }

    #[test]
    fn recorded_suite_kernel_replays_through_workload() {
        // The two backends are interchangeable behind Workload: a recorded
        // suite kernel drives the simulator exactly like its generator.
        let bench = &evaluation_suite()[0];
        let spec = bench.kernels[0].synthetic().unwrap().clone();
        let trace = trace::record_kernel(&spec, spec.name.as_str(), 1, 2, 3_000);
        let workload = Workload::from(TraceRef::from_data(trace));
        let cfg = GpuConfig::scaled(1);
        let run = |w: &Workload| {
            let mut gpu = Gpu::new(cfg.clone(), w);
            gpu.run(&mut FixedTuple::max(), 1_000).counters
        };
        assert_eq!(run(&Workload::from(spec)), run(&workload));
    }
}
