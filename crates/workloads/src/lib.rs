//! # workloads — synthetic GPU kernels for the Poise reproduction
//!
//! The Poise paper evaluates on CUDA benchmarks (Rodinia, Polybench, Mars
//! MapReduce, the Graph suite) executed under GPGPU-Sim. Neither the
//! binaries nor their traces are usable here, so this crate generates
//! *synthetic* kernels whose memory behaviour is tuned to match what the
//! paper reports about each benchmark: the intra-/inter-warp locality split
//! and reuse distance of Fig. 4, the kernel counts and `Pbest` (speedup
//! with a 64× L1) ordering of Table IIIa, the monolithic phase-changing
//! kernels called out in Section VII-D, and the compute-intensive suite of
//! Fig. 16.
//!
//! A [`KernelSpec`] describes one kernel as a sequence of [`Phase`]s, each
//! with an [`AccessMix`]: how many ALU instructions separate loads (the
//! paper's `In`), how many loads issue back-to-back (memory-level
//! parallelism), how far a load's consumer trails it (instruction
//! concurrency), and where loads go — a small *hot* per-warp set (short
//! reuse distance → intra-warp locality), a large *cold* per-warp set
//! (long reuse distance → thrashing pressure), a per-SM *shared* set
//! (inter-warp locality) or a *streaming* region (no reuse).
//!
//! Kernels implement [`gpu_sim::KernelSource`] and are deterministic given
//! their seed.

pub mod spec;
pub mod suites;

pub use spec::{AccessMix, Benchmark, KernelSpec, Phase};
pub use suites::{compute_insensitive_suite, evaluation_suite, fig4_kernels, training_suite};

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{FixedTuple, Gpu, GpuConfig, KernelSource};

    #[test]
    fn all_suite_kernels_run() {
        let cfg = GpuConfig::scaled(1);
        for bench in training_suite()
            .iter()
            .chain(evaluation_suite().iter())
            .take(4)
        {
            let k = &bench.kernels[0];
            let mut gpu = Gpu::new(cfg.clone(), k);
            let res = gpu.run(&mut FixedTuple::max(), 2_000);
            assert!(
                res.counters.instructions > 0,
                "kernel {} of {} issued nothing",
                k.name,
                bench.name
            );
        }
    }

    #[test]
    fn kernels_expose_pcs() {
        let suite = evaluation_suite();
        assert!(suite[0].kernels[0].n_pcs() >= 4);
    }
}
