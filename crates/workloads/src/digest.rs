//! Self-contained SHA-256 (FIPS 180-4).
//!
//! The build environment has no registry access, and content digests must
//! stay stable across Rust releases — unlike `std::hash::DefaultHasher`,
//! which is explicitly unstable. The implementation lives here (rather
//! than in the `poise` core crate, which re-exports it) because trace
//! workloads identify themselves by the digest of their trace file: the
//! digest is part of a [`crate::TraceRef`]'s identity, and therefore of
//! every cache key derived from it.

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 hasher.
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        while !data.is_empty() {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, c) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }

    /// Finish and return the digest as 64 lowercase hex characters.
    pub fn finish_hex(mut self) -> String {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // The length block bypasses `total_len` accounting by design.
        let block_start = self.buf_len;
        self.buf[block_start..block_start + 8].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = String::with_capacity(64);
        for s in self.state {
            out.push_str(&format!("{s:08x}"));
        }
        out
    }
}

/// SHA-256 of a string, as hex.
pub fn sha256_hex(s: &str) -> String {
    sha256_hex_bytes(s.as_bytes())
}

/// SHA-256 of raw bytes, as hex.
pub fn sha256_hex_bytes(data: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(data);
    h.finish_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_matches_known_vectors() {
        // FIPS 180-4 test vectors.
        assert_eq!(
            sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Multi-block input exercising the buffering path.
        let long = "a".repeat(1000);
        let mut h = Sha256::new();
        for chunk in long.as_bytes().chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish_hex(), sha256_hex(&long));
    }
}
