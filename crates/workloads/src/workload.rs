//! The [`Workload`] abstraction: the one kernel-identity type everything
//! above `gpu-sim` speaks.
//!
//! A workload is either a *synthetic* kernel (a [`KernelSpec`] realised
//! lazily by the deterministic generator) or a *trace* (a recorded or
//! imported instruction stream replayed by [`crate::trace::TraceRef`]).
//! Profilers, trainers, experiment runners, the job engine and the figure
//! registry all take `&Workload`; the simulator below stays on the
//! [`KernelSource`] seam and never knows which backend produced its
//! streams.
//!
//! ## Identity
//!
//! A workload's identity — what experiment cache keys hash — is its
//! [`Workload::spec_line`]: the full field-wise `KernelSpec` for a
//! synthetic kernel, and the *content digest* of the trace file for a
//! trace. Editing a trace file therefore invalidates exactly that
//! workload's cached results on the next load, the same way editing a
//! synthetic spec does.

use crate::spec::KernelSpec;
use crate::trace::TraceRef;
use gpu_sim::{InstructionStream, KernelSource};

/// One kernel workload: a synthetic spec or a recorded trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// A synthetic kernel realised by the generator in [`crate::spec`].
    Synthetic(KernelSpec),
    /// A recorded/imported trace replayed from a trace file.
    Trace(TraceRef),
}

impl Workload {
    /// The kernel's display name.
    pub fn name(&self) -> &str {
        match self {
            Workload::Synthetic(s) => &s.name,
            Workload::Trace(t) => t.name(),
        }
    }

    /// The canonical one-line identity used in job spec texts (and thus
    /// cache keys): every [`KernelSpec`] field for a synthetic kernel,
    /// the content digest (not the path) for a trace.
    pub fn spec_line(&self) -> String {
        match self {
            Workload::Synthetic(s) => format!("kernel {s:?}"),
            Workload::Trace(t) => format!("trace {t:?}"),
        }
    }

    /// The synthetic spec, if this workload is one.
    pub fn synthetic(&self) -> Option<&KernelSpec> {
        match self {
            Workload::Synthetic(s) => Some(s),
            Workload::Trace(_) => None,
        }
    }

    /// Mutable access to the synthetic spec, if this workload is one
    /// (used by tests to perturb job inputs).
    pub fn synthetic_mut(&mut self) -> Option<&mut KernelSpec> {
        match self {
            Workload::Synthetic(s) => Some(s),
            Workload::Trace(_) => None,
        }
    }

    /// The trace reference, if this workload is one.
    pub fn trace(&self) -> Option<&TraceRef> {
        match self {
            Workload::Synthetic(_) => None,
            Workload::Trace(t) => Some(t),
        }
    }
}

impl From<KernelSpec> for Workload {
    fn from(spec: KernelSpec) -> Self {
        Workload::Synthetic(spec)
    }
}

impl From<TraceRef> for Workload {
    fn from(t: TraceRef) -> Self {
        Workload::Trace(t)
    }
}

impl KernelSource for Workload {
    fn stream_for(&self, sm: usize, scheduler: usize, warp: usize) -> Box<dyn InstructionStream> {
        match self {
            Workload::Synthetic(s) => s.stream_for(sm, scheduler, warp),
            Workload::Trace(t) => t.stream_for(sm, scheduler, warp),
        }
    }

    fn warps_per_scheduler(&self) -> usize {
        match self {
            Workload::Synthetic(s) => KernelSource::warps_per_scheduler(s),
            Workload::Trace(t) => KernelSource::warps_per_scheduler(t),
        }
    }

    fn n_pcs(&self) -> usize {
        match self {
            Workload::Synthetic(s) => KernelSource::n_pcs(s),
            Workload::Trace(t) => KernelSource::n_pcs(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::record_kernel;
    use crate::AccessMix;

    #[test]
    fn spec_line_distinguishes_backends_and_contents() {
        let a = Workload::from(KernelSpec::steady("k", AccessMix::memory_sensitive(), 1));
        let b = Workload::from(KernelSpec::steady("k", AccessMix::memory_sensitive(), 2));
        assert_ne!(a.spec_line(), b.spec_line(), "seed must enter the line");
        assert!(a.spec_line().starts_with("kernel "));

        let spec = KernelSpec::steady("k", AccessMix::memory_sensitive(), 1).with_warps(2);
        let t1 = Workload::from(TraceRef::from_data(record_kernel(&spec, "k", 1, 1, 50)));
        let t2 = Workload::from(TraceRef::from_data(record_kernel(&spec, "k", 1, 1, 60)));
        assert!(t1.spec_line().starts_with("trace "));
        assert!(t1.spec_line().contains(t1.trace().unwrap().digest.as_str()));
        assert_ne!(t1.spec_line(), t2.spec_line(), "content keys the trace");
        assert_ne!(a.spec_line(), t1.spec_line());
    }

    #[test]
    fn workload_delegates_kernel_source() {
        let spec = KernelSpec::steady("k", AccessMix::memory_sensitive(), 7).with_warps(3);
        let w = Workload::from(spec.clone());
        assert_eq!(KernelSource::warps_per_scheduler(&w), 3);
        assert_eq!(KernelSource::n_pcs(&w), crate::spec::pcs::COUNT);
        let mut a = w.stream_for(0, 0, 1);
        let mut b = spec.stream_for(0, 0, 1);
        for _ in 0..100 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }
}
