//! Kernel specifications and the deterministic instruction-stream
//! generator.

use crate::workload::Workload;
use gpu_sim::{Instr, InstructionStream, KernelSource};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Static load-site (PC) identifiers assigned by the generator, one per
/// access class, so per-PC policies (APCM) can distinguish them.
pub mod pcs {
    /// Loads to the per-SM shared region.
    pub const SHARED: u32 = 0;
    /// Streaming loads (no reuse).
    pub const STREAM: u32 = 1;
    /// Loads to the per-warp hot set.
    pub const HOT: u32 = 2;
    /// Loads to the per-warp cold set.
    pub const COLD: u32 = 3;
    /// Number of distinct PCs emitted.
    pub const COUNT: usize = 4;
}

/// Where loads go and how densely they appear, for one phase of a kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessMix {
    /// ALU instructions preceding each load group (drives the paper's
    /// `In`, instructions between adjacent global loads).
    pub alu_per_load: usize,
    /// Loads issued back-to-back per dependency group (memory-level
    /// parallelism).
    pub mlp: usize,
    /// Independent ALU instructions between the load group and its first
    /// consumer (instruction concurrency; low for memory-sensitive code).
    pub ind_gap: usize,
    /// Per-warp hot working set in lines (short-reuse intra-warp locality).
    pub hot_lines: usize,
    /// Consecutive accesses to each hot line before advancing (controls
    /// how much intra-warp reuse survives thrashing).
    pub hot_repeat: usize,
    /// Fraction of private loads that target the hot set (the rest walk
    /// the cold buffer).
    pub hot_frac: f64,
    /// Per-SM cold buffer in lines (a large array swept by all warps from
    /// random offsets — long reuse distance, the thrashing and
    /// L2/DRAM-pressure knob).
    pub cold_lines: usize,
    /// Per-SM shared working set in lines (inter-warp locality).
    pub shared_lines: usize,
    /// Fraction of loads that target the shared set.
    pub shared_frac: f64,
    /// Fraction of loads that stream (unique lines, no reuse).
    pub stream_frac: f64,
    /// Fraction of memory operations that are stores.
    pub store_frac: f64,
}

impl AccessMix {
    /// A memory-sensitive default: dependent loads, modest ALU padding,
    /// mixed hot/cold private footprint.
    pub fn memory_sensitive() -> Self {
        AccessMix {
            alu_per_load: 4,
            mlp: 2,
            ind_gap: 1,
            hot_lines: 16,
            hot_repeat: 2,
            hot_frac: 0.8,
            cold_lines: 256,
            shared_lines: 48,
            shared_frac: 0.15,
            stream_frac: 0.05,
            store_frac: 0.05,
        }
    }

    /// A compute-intensive default: long ALU stretches, tiny footprint.
    pub fn compute_intensive() -> Self {
        AccessMix {
            alu_per_load: 80,
            mlp: 1,
            ind_gap: 16,
            hot_lines: 4,
            hot_repeat: 4,
            hot_frac: 0.9,
            cold_lines: 32,
            shared_lines: 16,
            shared_frac: 0.2,
            stream_frac: 0.1,
            store_frac: 0.1,
        }
    }

    fn validate(&self) {
        assert!(self.mlp >= 1, "mlp must be at least 1");
        assert!(self.hot_lines >= 1 && self.cold_lines >= 1 && self.shared_lines >= 1);
        assert!(self.hot_repeat >= 1);
        for f in [
            self.hot_frac,
            self.shared_frac,
            self.stream_frac,
            self.store_frac,
        ] {
            assert!((0.0..=1.0).contains(&f), "fractions must be in [0,1]");
        }
        assert!(
            self.shared_frac + self.stream_frac <= 1.0,
            "class fractions must not exceed 1"
        );
    }
}

/// One phase of a kernel: an access mix active for a number of
/// instructions per warp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// The mix active during this phase.
    pub mix: AccessMix,
    /// Instructions per warp before moving to the next phase. Phases
    /// cycle; use a single phase for steady-state kernels.
    pub instructions: u64,
}

/// A complete synthetic kernel description.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Human-readable name, e.g. `"ii#17"`.
    pub name: String,
    /// Warps launched per scheduler (occupancy), 1..=24.
    pub warps_per_scheduler: usize,
    /// Phases cycled through during execution; must be non-empty.
    pub phases: Vec<Phase>,
    /// Optional per-warp trace length; `None` runs until the cycle budget.
    pub trace_len: Option<u64>,
    /// Seed for the deterministic per-warp generators.
    pub seed: u64,
}

impl KernelSpec {
    /// Single-phase kernel with the given mix.
    pub fn steady(name: impl Into<String>, mix: AccessMix, seed: u64) -> Self {
        mix.validate();
        KernelSpec {
            name: name.into(),
            warps_per_scheduler: 24,
            phases: vec![Phase {
                mix,
                instructions: u64::MAX,
            }],
            trace_len: None,
            seed,
        }
    }

    /// Multi-phase kernel cycling through the given phases.
    pub fn phased(name: impl Into<String>, phases: Vec<Phase>, seed: u64) -> Self {
        assert!(!phases.is_empty(), "a kernel needs at least one phase");
        for p in &phases {
            p.mix.validate();
        }
        KernelSpec {
            name: name.into(),
            warps_per_scheduler: 24,
            phases,
            trace_len: None,
            seed,
        }
    }

    /// Builder: set occupancy (warps per scheduler).
    pub fn with_warps(mut self, warps: usize) -> Self {
        assert!((1..=24).contains(&warps));
        self.warps_per_scheduler = warps;
        self
    }

    /// Builder: bound each warp's trace.
    pub fn with_trace_len(mut self, len: u64) -> Self {
        self.trace_len = Some(len);
        self
    }

    /// The mix of the first phase (convenient for single-phase kernels).
    pub fn base_mix(&self) -> &AccessMix {
        &self.phases[0].mix
    }
}

impl KernelSource for KernelSpec {
    fn stream_for(&self, sm: usize, scheduler: usize, warp: usize) -> Box<dyn InstructionStream> {
        Box::new(SpecStream::new(self, sm, scheduler, warp))
    }

    fn warps_per_scheduler(&self) -> usize {
        self.warps_per_scheduler
    }

    fn n_pcs(&self) -> usize {
        pcs::COUNT
    }
}

/// Address-space layout (line addresses are abstract 64-bit identifiers):
/// per-warp private regions and stream regions are disjoint by
/// construction; the shared region is per SM so that inter-warp locality
/// is visible to the per-SM L1.
#[derive(Debug)]
struct AddressSpace {
    hot_base: u64,
    cold_base: u64,
    stream_base: u64,
    shared_base: u64,
}

impl AddressSpace {
    fn new(sm: usize, scheduler: usize, warp: usize) -> Self {
        let warp_uid = ((sm as u64) << 16) | ((scheduler as u64) << 8) | warp as u64;
        AddressSpace {
            hot_base: (warp_uid + 1) << 26,
            // The cold buffer is per SM: all warps of an SM sweep the same
            // large array from desynchronised offsets.
            cold_base: ((sm as u64 + 1) << 52) + (1 << 40),
            stream_base: ((warp_uid + 1) << 26) + (2 << 20),
            shared_base: (sm as u64 + 1) << 52,
        }
    }
}

/// Deterministic per-warp instruction stream realising a [`KernelSpec`].
struct SpecStream {
    phases: Vec<Phase>,
    trace_len: Option<u64>,
    addr: AddressSpace,
    rng: SmallRng,
    phase_idx: usize,
    instr_in_phase: u64,
    emitted: u64,
    /// Position inside the repeating iteration pattern.
    slot: IterSlot,
    hot_pos: u64,
    hot_rep: usize,
    cold_pos: u64,
    shared_pos: u64,
    stream_pos: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum IterSlot {
    /// Leading ALU block, `k` remaining.
    Alu(usize),
    /// Load group, `k` remaining.
    Mem(usize),
    /// Trailing independent ALU block, `k` remaining.
    Gap(usize),
    /// The dependence barrier.
    Sync,
}

impl SpecStream {
    fn new(spec: &KernelSpec, sm: usize, scheduler: usize, warp: usize) -> Self {
        let seed = spec
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(((sm as u64) << 32) ^ ((scheduler as u64) << 16) ^ warp as u64);
        let mix = spec.phases[0].mix;
        let mut rng = SmallRng::seed_from_u64(seed);
        // Desynchronise warps within the shared and cold regions so reuse
        // is temporal, not lock-step.
        let shared_pos = rng.gen_range(0..spec.phases[0].mix.shared_lines as u64);
        let cold_pos = rng.gen_range(0..spec.phases[0].mix.cold_lines as u64);
        SpecStream {
            phases: spec.phases.clone(),
            trace_len: spec.trace_len,
            addr: AddressSpace::new(sm, scheduler, warp),
            rng,
            phase_idx: 0,
            instr_in_phase: 0,
            emitted: 0,
            slot: IterSlot::Alu(mix.alu_per_load),
            hot_pos: 0,
            hot_rep: 0,
            cold_pos,
            shared_pos,
            stream_pos: 0,
        }
    }

    fn mix(&self) -> AccessMix {
        self.phases[self.phase_idx].mix
    }

    fn advance_phase_if_due(&mut self) {
        let dur = self.phases[self.phase_idx].instructions;
        if self.instr_in_phase >= dur {
            self.instr_in_phase = 0;
            self.phase_idx = (self.phase_idx + 1) % self.phases.len();
            let mix = self.mix();
            self.slot = IterSlot::Alu(mix.alu_per_load);
        }
    }

    fn next_address(&mut self, mix: &AccessMix) -> (u64, u32) {
        let r: f64 = self.rng.gen();
        if r < mix.shared_frac {
            let line = self.addr.shared_base + self.shared_pos % mix.shared_lines as u64;
            self.shared_pos += 1;
            (line, pcs::SHARED)
        } else if r < mix.shared_frac + mix.stream_frac {
            let line = self.addr.stream_base + self.stream_pos;
            self.stream_pos += 1;
            (line, pcs::STREAM)
        } else if self.rng.gen::<f64>() < mix.hot_frac {
            let line = self.addr.hot_base + self.hot_pos % mix.hot_lines as u64;
            self.hot_rep += 1;
            if self.hot_rep >= mix.hot_repeat {
                self.hot_rep = 0;
                self.hot_pos += 1;
            }
            (line, pcs::HOT)
        } else {
            let line = self.addr.cold_base + self.cold_pos % mix.cold_lines as u64;
            self.cold_pos += 1;
            (line, pcs::COLD)
        }
    }
}

impl InstructionStream for SpecStream {
    fn next_instr(&mut self) -> Option<Instr> {
        if let Some(len) = self.trace_len {
            if self.emitted >= len {
                return None;
            }
        }
        self.advance_phase_if_due();
        let mix = self.mix();
        loop {
            match self.slot {
                IterSlot::Alu(0) => {
                    self.slot = IterSlot::Mem(mix.mlp);
                }
                IterSlot::Alu(k) => {
                    self.slot = IterSlot::Alu(k - 1);
                    self.emitted += 1;
                    self.instr_in_phase += 1;
                    return Some(Instr::Alu);
                }
                IterSlot::Mem(0) => {
                    self.slot = IterSlot::Gap(mix.ind_gap);
                }
                IterSlot::Mem(k) => {
                    self.slot = IterSlot::Mem(k - 1);
                    self.emitted += 1;
                    self.instr_in_phase += 1;
                    let (line, pc) = self.next_address(&mix);
                    let is_store = self.rng.gen::<f64>() < mix.store_frac;
                    return Some(if is_store {
                        Instr::Store { line, pc }
                    } else {
                        Instr::Load { line, pc }
                    });
                }
                IterSlot::Gap(0) => {
                    self.slot = IterSlot::Sync;
                }
                IterSlot::Gap(k) => {
                    self.slot = IterSlot::Gap(k - 1);
                    self.emitted += 1;
                    self.instr_in_phase += 1;
                    return Some(Instr::Alu);
                }
                IterSlot::Sync => {
                    self.slot = IterSlot::Alu(mix.alu_per_load);
                    // Syncs are free (consume no issue slot) but still mark
                    // the dependence point.
                    return Some(Instr::SyncLoads);
                }
            }
        }
    }
}

/// A named group of workloads executed in sequence (a benchmark
/// application). Synthetic kernels and trace replays mix freely — every
/// member is a [`Workload`].
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Suite-qualified benchmark name, e.g. `"ii"`.
    pub name: String,
    /// The workloads, in launch order.
    pub kernels: Vec<Workload>,
}

impl Benchmark {
    /// Build a benchmark from workloads (synthetic [`KernelSpec`]s and
    /// [`crate::TraceRef`]s both convert).
    pub fn new<I>(name: impl Into<String>, kernels: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<Workload>,
    {
        let kernels: Vec<Workload> = kernels.into_iter().map(Into::into).collect();
        assert!(!kernels.is_empty());
        Benchmark {
            name: name.into(),
            kernels,
        }
    }

    /// Deterministically subsample at most `cap` kernels, evenly spaced
    /// across the launch order (used to bound experiment cost; the paper's
    /// kernel counts are preserved in the full definitions).
    pub fn capped(&self, cap: usize) -> Benchmark {
        if self.kernels.len() <= cap || cap == 0 {
            return self.clone();
        }
        let step = self.kernels.len() as f64 / cap as f64;
        let kernels = (0..cap)
            .map(|i| self.kernels[(i as f64 * step) as usize].clone())
            .collect();
        Benchmark {
            name: self.name.clone(),
            kernels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(spec: &KernelSpec, n: usize) -> Vec<Instr> {
        let mut s = spec.stream_for(0, 0, 0);
        (0..n).map(|_| s.next_instr().unwrap()).collect()
    }

    #[test]
    fn stream_is_deterministic() {
        let spec = KernelSpec::steady("t", AccessMix::memory_sensitive(), 7);
        assert_eq!(collect(&spec, 500), collect(&spec, 500));
    }

    #[test]
    fn different_seeds_differ() {
        let a = KernelSpec::steady("a", AccessMix::memory_sensitive(), 1);
        let b = KernelSpec::steady("b", AccessMix::memory_sensitive(), 2);
        assert_ne!(collect(&a, 500), collect(&b, 500));
    }

    #[test]
    fn pattern_contains_all_slots() {
        let mut mix = AccessMix::memory_sensitive();
        mix.store_frac = 0.5;
        let spec = KernelSpec::steady("t", mix, 3);
        let instrs = collect(&spec, 2_000);
        assert!(instrs.iter().any(|i| matches!(i, Instr::Alu)));
        assert!(instrs.iter().any(|i| matches!(i, Instr::Load { .. })));
        assert!(instrs.iter().any(|i| matches!(i, Instr::Store { .. })));
        assert!(instrs.iter().any(|i| matches!(i, Instr::SyncLoads)));
    }

    #[test]
    fn alu_per_load_controls_gap() {
        let mut mix = AccessMix::memory_sensitive();
        mix.alu_per_load = 10;
        mix.mlp = 1;
        mix.ind_gap = 0;
        let spec = KernelSpec::steady("t", mix, 3);
        let instrs = collect(&spec, 120);
        // Pattern: 10 Alu, 1 mem, sync → 12 slots per iteration.
        let loads = instrs
            .iter()
            .filter(|i| matches!(i, Instr::Load { .. } | Instr::Store { .. }))
            .count();
        assert!((9..=11).contains(&loads), "got {loads} mem ops");
    }

    #[test]
    fn trace_len_bounds_stream() {
        let spec = KernelSpec::steady("t", AccessMix::memory_sensitive(), 3).with_trace_len(50);
        let mut s = spec.stream_for(0, 0, 0);
        let mut n = 0;
        while s.next_instr().is_some() {
            n += 1;
            assert!(n <= 60, "stream must terminate");
        }
        assert!(n >= 50);
    }

    #[test]
    fn hot_addresses_recur_cold_streams_do_not() {
        let mut mix = AccessMix::memory_sensitive();
        mix.shared_frac = 0.0;
        mix.stream_frac = 1.0;
        mix.store_frac = 0.0;
        let spec = KernelSpec::steady("t", mix, 3);
        let mut seen = std::collections::HashSet::new();
        let mut s = spec.stream_for(0, 0, 0);
        for _ in 0..2000 {
            if let Some(Instr::Load { line, .. }) = s.next_instr() {
                assert!(seen.insert(line), "streaming load repeated a line");
            }
        }
    }

    #[test]
    fn shared_addresses_are_per_sm() {
        let mut mix = AccessMix::memory_sensitive();
        mix.shared_frac = 1.0;
        mix.stream_frac = 0.0;
        mix.store_frac = 0.0;
        let spec = KernelSpec::steady("t", mix, 3);
        let lines = |sm: usize, warp: usize| {
            let mut s = spec.stream_for(sm, 0, warp);
            let mut v = std::collections::HashSet::new();
            for _ in 0..1000 {
                if let Some(Instr::Load { line, .. }) = s.next_instr() {
                    v.insert(line);
                }
            }
            v
        };
        let a = lines(0, 0);
        let b = lines(0, 1);
        let c = lines(1, 0);
        assert!(!a.is_disjoint(&b), "same-SM warps must share lines");
        assert!(a.is_disjoint(&c), "different SMs must not share lines");
    }

    #[test]
    fn phases_switch_the_mix() {
        let mut dense = AccessMix::memory_sensitive();
        dense.alu_per_load = 0;
        dense.mlp = 1;
        dense.ind_gap = 0;
        let mut sparse = dense;
        sparse.alu_per_load = 50;
        let spec = KernelSpec::phased(
            "t",
            vec![
                Phase {
                    mix: dense,
                    instructions: 100,
                },
                Phase {
                    mix: sparse,
                    instructions: 100,
                },
            ],
            3,
        );
        // Dense phase: pattern [Load, Sync] → 100 counted instructions span
        // 200 emitted items. Sparse phase: [50xAlu, Load, Sync] → ~2 loads
        // per 100 counted instructions.
        let instrs = collect(&spec, 320);
        let dense_loads = instrs[..180]
            .iter()
            .filter(|i| matches!(i, Instr::Load { .. } | Instr::Store { .. }))
            .count();
        let sparse_loads = instrs[210..310]
            .iter()
            .filter(|i| matches!(i, Instr::Load { .. } | Instr::Store { .. }))
            .count();
        assert!(
            dense_loads > sparse_loads * 5,
            "dense phase {dense_loads} vs sparse {sparse_loads}"
        );
    }

    #[test]
    fn capped_subsamples_evenly() {
        let kernels: Vec<KernelSpec> = (0..10)
            .map(|i| KernelSpec::steady(format!("k{i}"), AccessMix::memory_sensitive(), i))
            .collect();
        let b = Benchmark::new("b", kernels);
        let c = b.capped(3);
        assert_eq!(c.kernels.len(), 3);
        assert_eq!(c.kernels[0].name(), "k0");
        assert!(b.capped(20).kernels.len() == 10);
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn invalid_fractions_panic() {
        let mut mix = AccessMix::memory_sensitive();
        mix.shared_frac = 1.5;
        let _ = KernelSpec::steady("bad", mix, 0);
    }
}
