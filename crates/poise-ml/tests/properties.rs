//! Property-based tests of the ML framework: regression recovery,
//! scoring invariants, scaling round-trips and analytical-model
//! monotonicity.

use gpu_sim::WarpTuple;
use poise_ml::{
    analytical::{AnalyticalParams, ReducedParams},
    scoring, NbRegression, ScoringWeights, SpeedupGrid,
};
use proptest::prelude::*;

proptest! {
    /// A noiseless log-linear relationship is recovered regardless of the
    /// true coefficients (within a sane range).
    #[test]
    fn nb_regression_recovers_coefficients(
        b0 in -1.0f64..1.0,
        b1 in -0.8f64..0.8,
    ) {
        let xs: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![1.0, i as f64 / 20.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| (b0 + b1 * r[1]).exp()).collect();
        let m = NbRegression::fit(&xs, &ys, 1e-9).expect("fit");
        prop_assert!((m.weights[0] - b0).abs() < 0.05, "b0 {} vs {}", m.weights[0], b0);
        prop_assert!((m.weights[1] - b1).abs() < 0.05, "b1 {} vs {}", m.weights[1], b1);
    }

    /// Predictions are always positive and finite.
    #[test]
    fn nb_prediction_positive_finite(
        w in proptest::collection::vec(-3.0f64..3.0, 8),
        x in proptest::collection::vec(-5.0f64..5.0, 8),
    ) {
        let m = NbRegression { weights: w, dispersion: 0.1, iterations: 1 };
        let p = m.predict(&x);
        prop_assert!(p.is_finite() && p > 0.0);
    }

    /// Eq. 12 scores are convex combinations of neighbourhood speedups:
    /// min(neighbourhood) <= score <= max(neighbourhood).
    #[test]
    fn score_bounded_by_neighbourhood(
        vals in proptest::collection::vec(0.5f64..2.0, 36),
    ) {
        let mut g = SpeedupGrid::new(8);
        let mut it = vals.into_iter();
        for n in 1..=8usize {
            for p in 1..=n {
                if let Some(v) = it.next() {
                    g.set(n, p, v);
                }
            }
        }
        let w = ScoringWeights::default();
        for n in 1..=8usize {
            for p in 1..=n {
                if let Some(score) = g.score(n, p, &w) {
                    // Collect the neighbourhood values present.
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for i in -1i64..=1 {
                        for j in -1i64..=1 {
                            let (a, b) = (n as i64 + i, p as i64 + j);
                            if a >= 1 && b >= 1 && b <= a {
                                if let Some(v) = g.get(a as usize, b as usize) {
                                    lo = lo.min(v);
                                    hi = hi.max(v);
                                }
                            }
                        }
                    }
                    prop_assert!(score >= lo - 1e-12 && score <= hi + 1e-12);
                }
            }
        }
    }

    /// The best-scored tuple is always a profiled point in the domain.
    #[test]
    fn best_scored_in_domain(
        pts in proptest::collection::vec((1usize..=12, 1usize..=12, 0.5f64..2.0), 1..40),
    ) {
        let mut g = SpeedupGrid::new(12);
        for (n, p, v) in pts {
            if p <= n {
                g.set(n, p, v);
            }
        }
        if let Some((t, _)) = g.best_scored(&ScoringWeights::default()) {
            prop_assert!(t.p <= t.n && t.n <= 12);
            prop_assert!(g.get(t.n, t.p).is_some());
        }
    }

    /// Scaling to capacity and back never moves a tuple by more than one
    /// warp per axis (rounding), and stays in the occupancy domain.
    #[test]
    fn tuple_scaling_bounded_error(
        avail in 2usize..=24,
        n in 1usize..=24,
        p in 1usize..=24,
    ) {
        let t = WarpTuple::new(n.min(avail), p.min(avail), avail);
        let up = scoring::scale_tuple(t, avail, 24);
        prop_assert!(up.n <= 24 && up.p <= up.n);
        let down = scoring::reverse_scale_tuple(up, avail, 24);
        prop_assert!(down.n <= avail);
        let err_n = (down.n as i64 - t.n as i64).abs();
        let err_p = (down.p as i64 - t.p as i64).abs();
        prop_assert!(err_n <= 1 && err_p <= 1, "{t} -> {up} -> {down}");
    }

    /// Analytical model: Tstall is never negative and weakly increases
    /// with the miss rate (all else fixed).
    #[test]
    fn analytical_stall_monotone_in_miss_rate(
        m1 in 0.0f64..=1.0,
        m2 in 0.0f64..=1.0,
        n in 1.0f64..48.0,
    ) {
        let (lo_m, hi_m) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        let base = |mo: f64| AnalyticalParams {
            n,
            mo,
            lo: 400.0,
            kmshr: 32.0,
            id: 3.0,
            tpipe: 2.0,
        };
        prop_assert!(base(lo_m).t_stall() >= 0.0);
        prop_assert!(base(hi_m).t_stall() + 1e-9 >= base(lo_m).t_stall() - 400.0 * 0.0);
        // Tmem itself is monotone.
        prop_assert!(base(hi_m).t_mem() + 1e-9 >= base(lo_m).t_mem());
    }

    /// mu_p_np grows with the polluting warps' hit-rate gain.
    #[test]
    fn objective_monotone_in_delta_hp(
        mp1 in 0.0f64..0.9,
        mp2 in 0.0f64..0.9,
    ) {
        let (better, worse) = if mp1 <= mp2 { (mp1, mp2) } else { (mp2, mp1) };
        let mk = |mp: f64| ReducedParams {
            base: AnalyticalParams {
                n: 24.0,
                mo: 0.8,
                lo: 400.0,
                kmshr: 32.0,
                id: 3.0,
                tpipe: 2.0,
            },
            p: 2.0,
            mp,
            mnp: 0.95,
            l_prime: 390.0,
        };
        let a = mk(better).mu_p_np();
        let b = mk(worse).mu_p_np();
        if let (Some(a), Some(b)) = (a, b) {
            prop_assert!(a + 1e-12 >= b, "lower mp must score higher: {a} vs {b}");
        }
    }
}
