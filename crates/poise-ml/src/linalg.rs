//! Small dense linear algebra: Gaussian elimination with partial pivoting.
//!
//! The IRLS updates of the Negative Binomial regression solve an 8×8
//! normal-equation system per iteration; nothing heavier is needed.

/// Solve `A x = b` in place for a square system.
///
/// Returns `None` when the matrix is numerically singular (pivot below
/// `1e-12` after partial pivoting).
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = a.len();
    assert!(a.iter().all(|row| row.len() == n), "A must be square");
    assert_eq!(b.len(), n, "dimension mismatch");

    for col in 0..n {
        // Partial pivoting: pick the largest |pivot| in this column.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        let pivot = a[col][col];
        for row in (col + 1)..n {
            let factor = a[row][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            // `a[row]` and `a[col]` are distinct rows (row > col), but the
            // borrow checker cannot see that through the nested Vec, so
            // index in place and silence the iterator lint.
            #[allow(clippy::needless_range_loop)]
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Compute `Xᵀ W X + λI` and `Xᵀ W z` for a weighted least-squares step.
///
/// `x` is row-major (one row per observation), `w` the per-observation
/// weights, `z` the working response, `ridge` the L2 regulariser added to
/// the normal-matrix diagonal.
pub fn weighted_normal_equations(
    x: &[Vec<f64>],
    w: &[f64],
    z: &[f64],
    ridge: f64,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let k = x.first().map_or(0, |r| r.len());
    let mut xtx = vec![vec![0.0; k]; k];
    let mut xtz = vec![0.0; k];
    for (row, (&wi, &zi)) in x.iter().zip(w.iter().zip(z.iter())) {
        for i in 0..k {
            let wxi = wi * row[i];
            xtz[i] += wxi * zi;
            for j in i..k {
                xtx[i][j] += wxi * row[j];
            }
        }
    }
    // Mirror the upper triangle; rows `i` and `j` alias through the
    // nested Vec, so plain indexing is the clearest form here.
    #[allow(clippy::needless_range_loop)]
    for i in 0..k {
        for j in 0..i {
            xtx[i][j] = xtx[j][i];
        }
        xtx[i][i] += ridge;
    }
    (xtx, xtz)
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_general_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(a, vec![2.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn normal_equations_match_manual_computation() {
        // One observation x=[1,2], w=2, z=3:
        // XtWX = [[2,4],[4,8]], XtWz = [6,12].
        let (xtx, xtz) = weighted_normal_equations(&[vec![1.0, 2.0]], &[2.0], &[3.0], 0.0);
        assert_eq!(xtx, vec![vec![2.0, 4.0], vec![4.0, 8.0]]);
        assert_eq!(xtz, vec![6.0, 12.0]);
    }

    #[test]
    fn ridge_adds_to_diagonal() {
        let (xtx, _) = weighted_normal_equations(&[vec![1.0, 0.0]], &[1.0], &[0.0], 0.5);
        assert_eq!(xtx[0][0], 1.5);
        assert_eq!(xtx[1][1], 0.5);
    }

    #[test]
    fn weighted_least_squares_recovers_coefficients() {
        // y = 2 + 3x fit through noiseless points.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, i as f64]).collect();
        let zs: Vec<f64> = (0..10).map(|i| 2.0 + 3.0 * i as f64).collect();
        let ws = vec![1.0; 10];
        let (a, b) = weighted_normal_equations(&xs, &ws, &zs, 0.0);
        let beta = solve(a, b).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-9);
        assert!((beta[1] - 3.0).abs() < 1e-9);
    }
}
