//! Neighbourhood scoring of profiled {N, p} grids (Equation 12) and the
//! tuple scaling applied to training targets.
//!
//! Training on the raw best-performing tuple is brittle when that peak sits
//! beside a performance cliff: a small prediction error then lands in a
//! slowdown region. Equation 12 instead scores each point by an
//! ω-weighted sum of its own speedup and its neighbours', normalised over
//! the neighbours actually present (boundary points have fewer), and
//! training targets the best-*scoring* tuple.

use gpu_sim::WarpTuple;

/// The ω weights of Equation 12: own cell, edge neighbours (offset 1) and
/// corner neighbours (offset 2), defaulting to the paper's (1, 0.50, 0.25).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoringWeights(pub [f64; 3]);

impl Default for ScoringWeights {
    fn default() -> Self {
        ScoringWeights([1.0, 0.50, 0.25])
    }
}

/// A profiled speedup surface over the triangular domain
/// `1 <= p <= n <= max_n` (speedups are relative to the GTO baseline).
#[derive(Debug, Clone)]
pub struct SpeedupGrid {
    max_n: usize,
    /// Row-major `[n][p]`, `None` where not profiled.
    cells: Vec<Vec<Option<f64>>>,
}

impl SpeedupGrid {
    /// An empty grid for tuples up to `max_n`.
    pub fn new(max_n: usize) -> Self {
        assert!(max_n >= 1);
        SpeedupGrid {
            max_n,
            cells: (0..=max_n).map(|n| vec![None; n + 1]).collect(),
        }
    }

    /// Largest `n` (and `p`) representable.
    pub fn max_n(&self) -> usize {
        self.max_n
    }

    /// Record the speedup of tuple `(n, p)`.
    ///
    /// # Panics
    /// Panics if the tuple is outside the triangular domain.
    pub fn set(&mut self, n: usize, p: usize, speedup: f64) {
        assert!(
            (1..=self.max_n).contains(&n) && (1..=n).contains(&p),
            "tuple ({n}, {p}) outside domain (max_n = {})",
            self.max_n
        );
        self.cells[n][p] = Some(speedup);
    }

    /// The speedup at `(n, p)`, if profiled.
    pub fn get(&self, n: usize, p: usize) -> Option<f64> {
        self.cells.get(n)?.get(p).copied()?
    }

    /// Iterate over all profiled `(n, p, speedup)` points.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.cells.iter().enumerate().flat_map(|(n, row)| {
            row.iter()
                .enumerate()
                .filter_map(move |(p, s)| s.map(|s| (n, p, s)))
        })
    }

    /// The best-performing profiled tuple (global optimum of the surface).
    pub fn best_performance(&self) -> Option<(WarpTuple, f64)> {
        self.iter()
            .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(n, p, s)| (WarpTuple { n, p }, s))
    }

    /// The best tuple restricted to the `p == n` diagonal (what SWL, which
    /// couples the two knobs, can reach).
    pub fn best_diagonal(&self) -> Option<(WarpTuple, f64)> {
        (1..=self.max_n)
            .filter_map(|n| self.get(n, n).map(|s| (WarpTuple { n, p: n }, s)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Equation 12: the ω-weighted neighbourhood score of `(a, b)`,
    /// normalised by the weights of the neighbours present.
    pub fn score(&self, a: usize, b: usize, w: &ScoringWeights) -> Option<f64> {
        self.get(a, b)?;
        let mut acc = 0.0;
        let mut norm = 0.0;
        for i in -1i64..=1 {
            for j in -1i64..=1 {
                let (n, p) = (a as i64 + i, b as i64 + j);
                if n < 1 || p < 1 || p > n {
                    continue;
                }
                if let Some(s) = self.get(n as usize, p as usize) {
                    let weight = w.0[(i.unsigned_abs() + j.unsigned_abs()) as usize];
                    acc += weight * s;
                    norm += weight;
                }
            }
        }
        (norm > 0.0).then(|| acc / norm)
    }

    /// The best-*scoring* tuple (the training target of Section V-C).
    pub fn best_scored(&self, w: &ScoringWeights) -> Option<(WarpTuple, f64)> {
        self.iter()
            .filter_map(|(n, p, _)| self.score(n, p, w).map(|s| (WarpTuple { n, p }, s)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }
}

/// Scale a target tuple from a kernel's available warps to the scheduler
/// capacity (Section V-C "Scaling"): kernels limited by occupancy train on
/// targets normalised to `max_warps`, and predictions are reverse-scaled.
pub fn scale_tuple(t: WarpTuple, available: usize, max_warps: usize) -> WarpTuple {
    let f = max_warps as f64 / available.max(1) as f64;
    WarpTuple::new(
        (t.n as f64 * f).round() as usize,
        (t.p as f64 * f).round() as usize,
        max_warps,
    )
}

/// Reverse of [`scale_tuple`]: map a prediction in scheduler-capacity space
/// back to the kernel's available warps.
pub fn reverse_scale_tuple(t: WarpTuple, available: usize, max_warps: usize) -> WarpTuple {
    let f = available.max(1) as f64 / max_warps.max(1) as f64;
    WarpTuple::new(
        (t.n as f64 * f).round().max(1.0) as usize,
        (t.p as f64 * f).round().max(1.0) as usize,
        available,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 5 scenario in miniature: a tall isolated peak beside a
    /// cliff loses to a slightly lower peak on a plateau.
    fn cliffy_grid() -> SpeedupGrid {
        let mut g = SpeedupGrid::new(8);
        for n in 1..=8 {
            for p in 1..=n {
                g.set(n, p, 1.0);
            }
        }
        // Isolated spike at (3, 2) surrounded by slowdowns.
        g.set(3, 2, 1.5);
        for (n, p) in [(2, 1), (2, 2), (3, 1), (3, 3), (4, 1), (4, 2), (4, 3)] {
            g.set(n, p, 0.6);
        }
        // Gentle plateau peak around (7, 6).
        for (n, p) in [(6, 5), (6, 6), (7, 5), (7, 7), (8, 5), (8, 6), (8, 7)] {
            g.set(n, p, 1.25);
        }
        g.set(7, 6, 1.3);
        g
    }

    #[test]
    fn best_performance_finds_global_peak() {
        let g = cliffy_grid();
        let (t, s) = g.best_performance().unwrap();
        assert_eq!(t, WarpTuple { n: 3, p: 2 });
        assert!((s - 1.5).abs() < 1e-12);
    }

    #[test]
    fn scoring_prefers_safe_neighbourhood() {
        let g = cliffy_grid();
        let (t, _) = g.best_scored(&ScoringWeights::default()).unwrap();
        assert_eq!(
            t,
            WarpTuple { n: 7, p: 6 },
            "the plateau peak must out-score the cliff peak"
        );
    }

    #[test]
    fn score_normalises_boundary_points() {
        let mut g = SpeedupGrid::new(3);
        g.set(1, 1, 2.0);
        // A lone corner point: score equals its own speedup.
        let s = g.score(1, 1, &ScoringWeights::default()).unwrap();
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn best_diagonal_restricts_to_p_eq_n() {
        let mut g = SpeedupGrid::new(4);
        g.set(4, 1, 3.0); // off-diagonal, must be ignored
        g.set(2, 2, 1.2);
        g.set(3, 3, 1.4);
        let (t, s) = g.best_diagonal().unwrap();
        assert_eq!(t, WarpTuple { n: 3, p: 3 });
        assert!((s - 1.4).abs() < 1e-12);
    }

    #[test]
    fn scaling_round_trips_approximately() {
        let t = WarpTuple::new(8, 3, 16);
        let scaled = scale_tuple(t, 16, 24);
        assert_eq!(scaled, WarpTuple { n: 12, p: 5 });
        let back = reverse_scale_tuple(scaled, 16, 24);
        assert_eq!(back, WarpTuple { n: 8, p: 3 });
    }

    #[test]
    fn scaling_full_occupancy_is_identity() {
        let t = WarpTuple::new(10, 4, 24);
        assert_eq!(scale_tuple(t, 24, 24), t);
        assert_eq!(reverse_scale_tuple(t, 24, 24), t);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn set_outside_domain_panics() {
        let mut g = SpeedupGrid::new(4);
        g.set(3, 4, 1.0);
    }

    #[test]
    fn iter_visits_only_profiled_cells() {
        let mut g = SpeedupGrid::new(5);
        g.set(2, 1, 1.1);
        g.set(5, 5, 0.9);
        let pts: Vec<_> = g.iter().collect();
        assert_eq!(pts.len(), 2);
    }
}
