//! Negative Binomial regression (log link) via iteratively reweighted
//! least squares.
//!
//! The paper fits its model with Statsmodels; this is a from-scratch NB2
//! GLM with the same structure: discrete non-negative targets, log-linear
//! link `ln(y) = Σ w_i x_i`, and overdispersion `Var = μ + α·μ²` (the
//! paper's stated reason for preferring NB over Poisson). The dispersion
//! `α` is re-estimated between IRLS sweeps by the method of moments.

use crate::linalg::{dot, solve, weighted_normal_equations};

/// Failure modes of [`NbRegression::fit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer observations than features.
    TooFewObservations,
    /// Mismatched row lengths or empty input.
    MalformedInput,
    /// A target value was negative or non-finite.
    InvalidTarget,
    /// The IRLS normal equations became singular.
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewObservations => {
                write!(f, "fewer observations than features")
            }
            FitError::MalformedInput => write!(f, "malformed design matrix"),
            FitError::InvalidTarget => {
                write!(f, "targets must be finite and non-negative")
            }
            FitError::Singular => write!(f, "normal equations are singular"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted Negative Binomial regression.
#[derive(Debug, Clone, PartialEq)]
pub struct NbRegression {
    /// Feature weights (one per column of the design matrix).
    pub weights: Vec<f64>,
    /// Estimated dispersion `α` (`Var = μ + α·μ²`).
    pub dispersion: f64,
    /// IRLS iterations used.
    pub iterations: usize,
}

impl NbRegression {
    /// Fit `ln(E[y]) = X·w` on rows `x` and targets `y`.
    ///
    /// `ridge` is a small L2 penalty stabilising collinear features (the
    /// Table II features are correlated by construction).
    ///
    /// # Errors
    /// Returns a [`FitError`] for malformed input or a singular system.
    pub fn fit(x: &[Vec<f64>], y: &[f64], ridge: f64) -> Result<Self, FitError> {
        let n = x.len();
        if n == 0 || y.len() != n {
            return Err(FitError::MalformedInput);
        }
        let k = x[0].len();
        if k == 0 || x.iter().any(|r| r.len() != k) {
            return Err(FitError::MalformedInput);
        }
        if n < k {
            return Err(FitError::TooFewObservations);
        }
        if y.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(FitError::InvalidTarget);
        }

        // Start from a flat model predicting the mean.
        let y_mean = (y.iter().sum::<f64>() / n as f64).max(1e-6);
        let mut w = vec![0.0; k];
        // Give the intercept-like column (if any column is constant 1) the
        // log-mean; otherwise start at zero and let IRLS move.
        if let Some(c) = (0..k).find(|&j| x.iter().all(|r| (r[j] - 1.0).abs() < 1e-12)) {
            w[c] = y_mean.ln();
        }

        let mut alpha: f64 = 0.1;
        let mut iterations = 0;
        for outer in 0..8 {
            for _ in 0..50 {
                iterations += 1;
                // Current means, clamped to keep the working weights sane.
                let mus: Vec<f64> = x
                    .iter()
                    .map(|r| dot(&w, r).clamp(-30.0, 30.0).exp().max(1e-9))
                    .collect();
                // NB2 IRLS: weight μ/(1+αμ); working response
                // z = η + (y − μ)/μ.
                let wts: Vec<f64> = mus.iter().map(|&m| m / (1.0 + alpha * m)).collect();
                let zs: Vec<f64> = x
                    .iter()
                    .zip(y.iter().zip(&mus))
                    .map(|(r, (&yi, &mi))| dot(&w, r).clamp(-30.0, 30.0) + (yi - mi) / mi)
                    .collect();
                let (a, b) = weighted_normal_equations(x, &wts, &zs, ridge.max(1e-9));
                let new_w = solve(a, b).ok_or(FitError::Singular)?;
                let delta: f64 = new_w
                    .iter()
                    .zip(&w)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max);
                w = new_w;
                if delta < 1e-9 {
                    break;
                }
            }
            // Method-of-moments dispersion update:
            // α ≈ Σ[(y−μ)² − μ] / Σ μ².
            let mus: Vec<f64> = x
                .iter()
                .map(|r| dot(&w, r).clamp(-30.0, 30.0).exp().max(1e-9))
                .collect();
            let num: f64 = y
                .iter()
                .zip(&mus)
                .map(|(&yi, &mi)| (yi - mi) * (yi - mi) - mi)
                .sum();
            let den: f64 = mus.iter().map(|&m| m * m).sum();
            let new_alpha = (num / den.max(1e-12)).clamp(1e-6, 10.0);
            if (new_alpha - alpha).abs() < 1e-6 && outer > 0 {
                alpha = new_alpha;
                break;
            }
            alpha = new_alpha;
        }

        Ok(NbRegression {
            weights: w,
            dispersion: alpha,
            iterations,
        })
    }

    /// Predict the mean response for a feature row: `exp(w·x)`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x).clamp(-30.0, 30.0).exp()
    }

    /// Mean absolute relative error over a labelled set.
    pub fn mean_relative_error(&self, x: &[Vec<f64>], y: &[f64]) -> f64 {
        if x.is_empty() {
            return 0.0;
        }
        x.iter()
            .zip(y)
            .map(|(r, &yi)| {
                let p = self.predict(r);
                (p - yi).abs() / yi.max(1.0)
            })
            .sum::<f64>()
            / x.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Draw from NB with mean mu and dispersion alpha via gamma-Poisson
    /// mixture (crude but adequate for tests).
    fn nb_sample(rng: &mut SmallRng, mu: f64, alpha: f64) -> f64 {
        // Gamma(shape = 1/alpha, scale = alpha * mu) via sum of exponentials
        // approximation for non-integer shape; adequate noise source here.
        let shape = (1.0 / alpha).max(1.0) as usize;
        let scale = mu * alpha.max(1e-6);
        let g: f64 = (0..shape)
            .map(|_| -rng.gen::<f64>().max(1e-12).ln() * scale)
            .sum::<f64>()
            / (alpha * shape as f64).max(1e-12)
            * alpha;
        // Poisson(g) via Knuth for small means, normal approx for large.
        let lam = g.max(1e-9);
        if lam < 30.0 {
            let l = (-lam).exp();
            let mut k = 0.0;
            let mut p = 1.0;
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    break;
                }
                k += 1.0;
            }
            k
        } else {
            (lam + lam.sqrt() * (rng.gen::<f64>() - 0.5) * 2.0)
                .max(0.0)
                .round()
        }
    }

    #[test]
    fn recovers_known_log_linear_model() {
        // y = exp(0.5 + 0.8 x1 - 0.3 x2), noiseless.
        let mut rng = SmallRng::seed_from_u64(7);
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![1.0, rng.gen::<f64>() * 2.0, rng.gen::<f64>() * 2.0])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|r| (0.5 + 0.8 * r[1] - 0.3 * r[2]).exp())
            .collect();
        let m = NbRegression::fit(&xs, &ys, 1e-9).unwrap();
        assert!((m.weights[0] - 0.5).abs() < 0.05, "{:?}", m.weights);
        assert!((m.weights[1] - 0.8).abs() < 0.05, "{:?}", m.weights);
        assert!((m.weights[2] + 0.3).abs() < 0.05, "{:?}", m.weights);
    }

    #[test]
    fn recovers_model_under_nb_noise() {
        let mut rng = SmallRng::seed_from_u64(11);
        let xs: Vec<Vec<f64>> = (0..800)
            .map(|_| vec![1.0, rng.gen::<f64>() * 3.0])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|r| {
                let mu = (1.0 + 0.6 * r[1]).exp();
                nb_sample(&mut rng, mu, 0.15)
            })
            .collect();
        let m = NbRegression::fit(&xs, &ys, 1e-9).unwrap();
        assert!(
            (m.weights[1] - 0.6).abs() < 0.12,
            "slope {:?} dispersion {}",
            m.weights,
            m.dispersion
        );
    }

    #[test]
    fn estimates_overdispersion() {
        let mut rng = SmallRng::seed_from_u64(13);
        let xs: Vec<Vec<f64>> = (0..600).map(|_| vec![1.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|_| nb_sample(&mut rng, 20.0, 0.4)).collect();
        let m = NbRegression::fit(&xs, &ys, 1e-9).unwrap();
        assert!(
            m.dispersion > 0.05,
            "overdispersed data must yield alpha > 0, got {}",
            m.dispersion
        );
    }

    #[test]
    fn predict_is_exp_of_dot() {
        let m = NbRegression {
            weights: vec![0.1, 0.2],
            dispersion: 0.1,
            iterations: 1,
        };
        let p = m.predict(&[1.0, 2.0]);
        assert!((p - (0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(
            NbRegression::fit(&[], &[], 0.0),
            Err(FitError::MalformedInput)
        );
        assert_eq!(
            NbRegression::fit(&[vec![1.0, 2.0]], &[1.0], 0.0),
            Err(FitError::TooFewObservations)
        );
        assert_eq!(
            NbRegression::fit(&[vec![1.0], vec![1.0]], &[1.0, -2.0], 0.0),
            Err(FitError::InvalidTarget)
        );
        assert_eq!(
            NbRegression::fit(&[vec![1.0], vec![2.0]], &[1.0], 0.0),
            Err(FitError::MalformedInput)
        );
    }

    #[test]
    fn collinear_features_survive_with_ridge() {
        // Two identical columns: singular without ridge, solvable with.
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![1.0, i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..50).map(|i| (0.05 * i as f64).exp()).collect();
        let m = NbRegression::fit(&xs, &ys, 1e-6).unwrap();
        // The two collinear slopes share the effect.
        assert!((m.weights[1] + m.weights[2] - 0.05).abs() < 0.02);
    }

    #[test]
    fn mean_relative_error_is_zero_on_perfect_fit() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![1.0, i as f64 / 10.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| (1.0 + 0.5 * r[1]).exp()).collect();
        let m = NbRegression::fit(&xs, &ys, 1e-9).unwrap();
        assert!(m.mean_relative_error(&xs, &ys) < 0.01);
    }
}
