//! The offline training pipeline (Section V-C / V-D).
//!
//! Profiling (running kernels over the {N, p} grid) lives in the `poise`
//! crate, which owns the simulator runners; this module consumes the
//! resulting [`TrainingSample`]s — feature vector plus best-scored,
//! capacity-scaled target tuple — filters them by the Table IV thresholds,
//! and fits the two Negative Binomial regressions whose weights (α for N,
//! β for p) the compiler ships to the hardware inference engine.

use crate::features::{FeatureVector, N_FEATURES};
use crate::glm::{FitError, NbRegression};
use gpu_sim::WarpTuple;

/// One profiled kernel ready for training.
#[derive(Debug, Clone)]
pub struct TrainingSample {
    /// Kernel identifier (diagnostics only).
    pub kernel: String,
    /// The Table II feature vector sampled at the two reference points.
    pub features: FeatureVector,
    /// Best-scored target tuple, already scaled to scheduler capacity.
    pub target: WarpTuple,
    /// Speedup of the kernel at its best tuple (for thresholding).
    pub best_speedup: f64,
    /// Baseline execution cycles (for thresholding).
    pub baseline_cycles: u64,
    /// L1 hit rate observed at the (1, 1) reference point.
    pub ref_hit_rate: f64,
}

/// The Table IV training admission thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingThresholds {
    /// Minimum speedup at the best tuple (paper: ≥ 1.5%).
    pub min_speedup: f64,
    /// Minimum baseline cycles (paper: ≥ 10,000).
    pub min_cycles: u64,
    /// Minimum L1 hit rate at (1, 1) (paper: > 0%).
    pub min_ref_hit_rate: f64,
}

impl Default for TrainingThresholds {
    fn default() -> Self {
        TrainingThresholds {
            min_speedup: 1.015,
            min_cycles: 10_000,
            min_ref_hit_rate: 0.0,
        }
    }
}

impl TrainingThresholds {
    /// Whether a sample is statistically significant enough to train on.
    pub fn admits(&self, s: &TrainingSample) -> bool {
        s.best_speedup >= self.min_speedup
            && s.baseline_cycles >= self.min_cycles
            && s.ref_hit_rate > self.min_ref_hit_rate
    }
}

/// The trained model: two weight vectors over the Table II features.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedModel {
    /// Weights α for predicting `N` (`ln N = Σ α_i x_i`).
    pub alpha: [f64; N_FEATURES],
    /// Weights β for predicting `p` (`ln p = Σ β_i x_i`).
    pub beta: [f64; N_FEATURES],
    /// Dispersion of the N regression.
    pub dispersion_n: f64,
    /// Dispersion of the p regression.
    pub dispersion_p: f64,
    /// Samples admitted into the fit.
    pub samples_used: usize,
    /// Feature indices zeroed before fitting (Fig. 13 ablations).
    pub dropped_features: Vec<usize>,
}

impl TrainedModel {
    /// Fit the model on admitted samples.
    ///
    /// `drop_features` lists feature indices zeroed out before fitting
    /// (the Fig. 13 leave-one-out study); pass `&[]` for the full model.
    ///
    /// # Errors
    /// Propagates [`FitError`] from the underlying regressions (e.g. too
    /// few admitted samples).
    pub fn fit(
        samples: &[TrainingSample],
        thresholds: &TrainingThresholds,
        drop_features: &[usize],
    ) -> Result<Self, FitError> {
        let admitted: Vec<&TrainingSample> =
            samples.iter().filter(|s| thresholds.admits(s)).collect();
        let rows: Vec<Vec<f64>> = admitted
            .iter()
            .map(|s| {
                let mut f = s.features;
                for &d in drop_features {
                    f = f.without_feature(d);
                }
                f.as_slice().to_vec()
            })
            .collect();
        let y_n: Vec<f64> = admitted.iter().map(|s| s.target.n as f64).collect();
        let y_p: Vec<f64> = admitted.iter().map(|s| s.target.p as f64).collect();
        let ridge = 1e-4;
        let reg_n = NbRegression::fit(&rows, &y_n, ridge)?;
        let reg_p = NbRegression::fit(&rows, &y_p, ridge)?;
        let mut alpha = [0.0; N_FEATURES];
        let mut beta = [0.0; N_FEATURES];
        alpha.copy_from_slice(&reg_n.weights);
        beta.copy_from_slice(&reg_p.weights);
        Ok(TrainedModel {
            alpha,
            beta,
            dispersion_n: reg_n.dispersion,
            dispersion_p: reg_p.dispersion,
            samples_used: admitted.len(),
            dropped_features: drop_features.to_vec(),
        })
    }

    /// The link function (Equation 13): predict a capacity-scaled tuple
    /// from a feature vector. The result still needs reverse scaling to
    /// the kernel's available warps and clamping — both done by the
    /// hardware inference engine.
    pub fn predict(&self, x: &FeatureVector, max_warps: usize) -> WarpTuple {
        let mut x = *x;
        for &d in &self.dropped_features {
            x = x.without_feature(d);
        }
        let ln_n: f64 = crate::linalg::dot(&self.alpha, x.as_slice());
        let ln_p: f64 = crate::linalg::dot(&self.beta, x.as_slice());
        let n = ln_n.clamp(-30.0, 30.0).exp().round() as i64;
        let p = ln_p.clamp(-30.0, 30.0).exp().round() as i64;
        WarpTuple::new(n.max(1) as usize, p.max(1) as usize, max_warps)
    }

    /// Offline prediction error (mean relative, as reported in §VII-B) on
    /// a labelled set: returns `(err_n, err_p)`.
    pub fn prediction_error(&self, samples: &[TrainingSample]) -> (f64, f64) {
        if samples.is_empty() {
            return (0.0, 0.0);
        }
        let (mut en, mut ep) = (0.0, 0.0);
        for s in samples {
            let pred = self.predict(&s.features, 24);
            en += (pred.n as f64 - s.target.n as f64).abs() / s.target.n as f64;
            ep += (pred.p as f64 - s.target.p as f64).abs() / s.target.p as f64;
        }
        (en / samples.len() as f64, ep / samples.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::WindowSample;

    fn sample_with(
        hit_base: f64,
        intra_ref: f64,
        target: (usize, usize),
        speedup: f64,
    ) -> TrainingSample {
        let base = WindowSample {
            cycles: 10_000,
            instructions: 5_000,
            hit_rate: hit_base,
            intra_rate: hit_base * 0.8,
            aml: 400.0,
            in_avg: 4.0,
            ipc: 0.5,
        };
        let refp = WindowSample {
            cycles: 10_000,
            instructions: 3_000,
            hit_rate: (hit_base + 0.5).min(0.95),
            intra_rate: intra_ref,
            aml: 350.0,
            in_avg: 4.0,
            ipc: 0.3,
        };
        TrainingSample {
            kernel: "t".into(),
            features: FeatureVector::from_samples(&base, &refp),
            target: WarpTuple::new(target.0, target.1, 24),
            best_speedup: speedup,
            baseline_cycles: 50_000,
            ref_hit_rate: refp.hit_rate,
        }
    }

    fn synthetic_set() -> Vec<TrainingSample> {
        // Construct a learnable relationship: higher intra-locality gain
        // at the reference point → smaller p target; moderate N targets.
        (0..40)
            .map(|i| {
                let g = i as f64 / 40.0;
                let p = (1.0 + 10.0 * (1.0 - g)).round() as usize;
                let n = (6.0 + 12.0 * g).round() as usize;
                sample_with(0.15 + 0.1 * g, 0.3 + 0.6 * g, (n, p.min(n)), 1.3)
            })
            .collect()
    }

    #[test]
    fn thresholds_filter_samples() {
        let t = TrainingThresholds::default();
        let good = sample_with(0.2, 0.8, (10, 2), 1.3);
        assert!(t.admits(&good));
        let mut slow = good.clone();
        slow.best_speedup = 1.0;
        assert!(!t.admits(&slow));
        let mut short = good.clone();
        short.baseline_cycles = 100;
        assert!(!t.admits(&short));
        let mut coldref = good.clone();
        coldref.ref_hit_rate = 0.0;
        assert!(!t.admits(&coldref));
    }

    #[test]
    fn fit_learns_monotone_relationship() {
        let set = synthetic_set();
        let m = TrainedModel::fit(&set, &TrainingThresholds::default(), &[]).expect("fit");
        assert_eq!(m.samples_used, 40);
        // Predictions must track the synthetic trend: low-gain kernels get
        // large p, high-gain kernels get small p.
        let lo = m.predict(&set[2].features, 24);
        let hi = m.predict(&set[37].features, 24);
        assert!(
            lo.p > hi.p,
            "low gain → big p ({}), high gain → small p ({})",
            lo.p,
            hi.p
        );
        let (en, ep) = m.prediction_error(&set);
        assert!(en < 0.5, "N error {en}");
        assert!(ep < 0.8, "p error {ep}");
    }

    #[test]
    fn dropped_features_are_recorded_and_applied() {
        let set = synthetic_set();
        let full = TrainedModel::fit(&set, &TrainingThresholds::default(), &[]).unwrap();
        let ablated = TrainedModel::fit(&set, &TrainingThresholds::default(), &[4]).unwrap();
        assert_eq!(ablated.dropped_features, vec![4]);
        // Weight on the dropped feature must be ~0 (only ridge touches it).
        assert!(ablated.alpha[4].abs() < 1e-6);
        assert!(full.alpha != ablated.alpha);
    }

    #[test]
    fn too_few_admitted_samples_error() {
        let set: Vec<TrainingSample> = (0..3).map(|_| sample_with(0.2, 0.8, (5, 2), 1.3)).collect();
        assert!(matches!(
            TrainedModel::fit(&set, &TrainingThresholds::default(), &[]),
            Err(FitError::TooFewObservations)
        ));
    }

    #[test]
    fn predict_clamps_into_valid_tuple() {
        let set = synthetic_set();
        let m = TrainedModel::fit(&set, &TrainingThresholds::default(), &[]).unwrap();
        for s in &set {
            let t = m.predict(&s.features, 24);
            assert!(t.n >= 1 && t.n <= 24 && t.p >= 1 && t.p <= t.n);
        }
    }
}
