//! The analytical performance model of Section V-A (Equations 1–11).
//!
//! The model expresses when memory latencies appear in the critical path
//! of an SM and how a warp-tuple `{N, p}` changes the balance between busy
//! cycles (latency tolerance) and effective memory latency. Poise uses it
//! for *feature discovery* — the terms that appear in the objective
//! function `mu_p_np` (Eq. 11) become the observable features of Table II —
//! and this crate additionally unit-tests the claimed proportionalities.

/// Parameters of the baseline system (maximum warps), Equations 1–3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticalParams {
    /// Maximum warps `N` executing a load concurrently.
    pub n: f64,
    /// Average L1 miss rate `mo`.
    pub mo: f64,
    /// Average memory latency `Lo` of an individual miss.
    pub lo: f64,
    /// MSHR entries `Kmshr` (memory-level parallelism).
    pub kmshr: f64,
    /// Average independent instructions per warp unlocked by a hit, `Id`.
    pub id: f64,
    /// Pipelined execution cycles per warp instruction, `Tpipe`.
    pub tpipe: f64,
}

impl AnalyticalParams {
    /// Equation 1: effective memory latency of a load executed across `N`
    /// warps, `Tmem = Lo × ceil(N·mo / Kmshr)`.
    pub fn t_mem(&self) -> f64 {
        self.lo * (self.n * self.mo / self.kmshr).ceil()
    }

    /// Equation 2: busy cycles enabled by hits,
    /// `Tbusy = N·ho·Id·Tpipe` with `ho = 1 − mo`.
    pub fn t_busy(&self) -> f64 {
        self.n * (1.0 - self.mo) * self.id * self.tpipe
    }

    /// Equation 3: exposed stall cycles `max(Tmem − Tbusy, 0)`.
    pub fn t_stall(&self) -> f64 {
        (self.t_mem() - self.t_busy()).max(0.0)
    }
}

/// Parameters of the reduced-tuple system `{N, p}`, Equations 4–6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReducedParams {
    /// Baseline parameters (shares `N`, `Kmshr`, `Id`, `Tpipe`).
    pub base: AnalyticalParams,
    /// Cache-polluting warps `p`.
    pub p: f64,
    /// Miss rate of the `p` polluting warps, `mp = 1 − hp`.
    pub mp: f64,
    /// Miss rate of the `N − p` non-polluting warps, `mnp = 1 − hnp`.
    pub mnp: f64,
    /// New average memory latency `L'` under the changed congestion.
    pub l_prime: f64,
}

impl ReducedParams {
    /// Equation 4: effective memory latency under the tuple,
    /// `T'mem = L' × ceil((mnp(N−p) + mp·p) / Kmshr)`.
    pub fn t_mem(&self) -> f64 {
        let n = self.base.n;
        self.l_prime * ((self.mnp * (n - self.p) + self.mp * self.p) / self.base.kmshr).ceil()
    }

    /// Equation 5: busy cycles under the tuple,
    /// `T'busy = (p·hp + (N−p)·hnp)·Id·Tpipe`.
    pub fn t_busy(&self) -> f64 {
        let n = self.base.n;
        ((self.p * (1.0 - self.mp)) + (n - self.p) * (1.0 - self.mnp))
            * self.base.id
            * self.base.tpipe
    }

    /// Equation 6: exposed stalls under the tuple.
    pub fn t_stall(&self) -> f64 {
        (self.t_mem() - self.t_busy()).max(0.0)
    }

    /// Equation 8: the coefficient of goodness
    /// `mu = ΔTbusy / ΔTmem`; values above 1 satisfy the Equation 7
    /// speedup criterion. Returns `None` when `ΔTmem <= 0` (the tuple
    /// reduces both terms — unconditionally good on this axis).
    pub fn mu(&self) -> Option<f64> {
        let d_busy = self.t_busy() - self.base.t_busy();
        let d_mem = self.t_mem() - self.base.t_mem();
        if d_mem <= 0.0 {
            None
        } else {
            Some(d_busy / d_mem)
        }
    }

    /// Equation 11: the partial objective
    /// `mu_p/np = (Tpipe/Kmshr) · (p/(N−p)) · (Id·Δhp/o) / (mnp·L' − mo·Lo)`.
    ///
    /// The ceil of Eq. 4 is dropped as in the paper. Returns `None` when
    /// `N == p` (no non-polluting warps) or the denominator is
    /// non-positive (memory latency term improves — unconditionally good).
    pub fn mu_p_np(&self) -> Option<f64> {
        let n = self.base.n;
        if (n - self.p).abs() < f64::EPSILON {
            return None;
        }
        let delta_hp = (1.0 - self.mp) - (1.0 - self.base.mo);
        let denom = self.mnp * self.l_prime - self.base.mo * self.base.lo;
        if denom <= 0.0 {
            return None;
        }
        Some(
            (self.base.tpipe / self.base.kmshr)
                * (self.p / (n - self.p))
                * (self.base.id * delta_hp)
                / denom,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> AnalyticalParams {
        AnalyticalParams {
            n: 24.0,
            mo: 0.8,
            lo: 400.0,
            kmshr: 32.0,
            id: 3.0,
            tpipe: 2.0,
        }
    }

    fn reduced() -> ReducedParams {
        ReducedParams {
            base: base(),
            p: 2.0,
            mp: 0.1,  // polluting warps hit a lot
            mnp: 0.9, // non-polluting warps degrade slightly
            l_prime: 380.0,
        }
    }

    #[test]
    fn eq1_ceil_quantises_memory_latency() {
        let mut p = base();
        // 24 * 0.8 / 32 = 0.6 → ceil 1 → Tmem = Lo.
        assert_eq!(p.t_mem(), 400.0);
        // Doubling the miss traffic crosses the MSHR boundary.
        p.mo = 1.0;
        p.n = 33.0;
        // 33/32 → ceil 2.
        assert_eq!(p.t_mem(), 800.0);
    }

    #[test]
    fn eq2_busy_scales_with_hits() {
        let p = base();
        // 24 * 0.2 * 3 * 2 = 28.8.
        assert!((p.t_busy() - 28.8).abs() < 1e-12);
    }

    #[test]
    fn eq3_stall_clamps_at_zero() {
        let mut p = base();
        p.mo = 0.0; // all hits: no Tmem at all
        assert_eq!(p.t_stall(), 0.0);
    }

    #[test]
    fn better_cache_behaviour_reduces_stalls() {
        let r = reduced();
        assert!(
            r.t_stall() < r.base.t_stall(),
            "tuple {} vs baseline {}",
            r.t_stall(),
            r.base.t_stall()
        );
    }

    #[test]
    fn mu_p_np_increases_with_delta_hp() {
        let mut lo_gain = reduced();
        lo_gain.mp = 0.6;
        let hi_gain = reduced(); // mp = 0.1 → larger Δhp/o
        let a = lo_gain.mu_p_np().unwrap();
        let b = hi_gain.mu_p_np().unwrap();
        assert!(b > a, "higher hit-rate gain must raise the objective");
    }

    #[test]
    fn mu_p_np_decreases_when_non_polluting_warps_suffer() {
        let gentle = reduced(); // mnp = 0.9
        let mut harsh = reduced();
        harsh.mnp = 1.0; // complete collapse for N−p warps
        let a = gentle.mu_p_np().unwrap();
        let b = harsh.mu_p_np().unwrap();
        assert!(a > b);
    }

    #[test]
    fn mu_p_np_undefined_without_non_polluting_warps() {
        let mut r = reduced();
        r.p = r.base.n;
        assert!(r.mu_p_np().is_none());
    }

    #[test]
    fn mu_matches_speedup_criterion() {
        // A tuple that greatly increases busy cycles while barely changing
        // memory latency must satisfy mu > 1.
        let r = reduced();
        // ΔTmem <= 0 (`None`) counts as satisfying the criterion outright.
        if let Some(mu) = r.mu() {
            assert!(mu > 1.0);
        }
    }

    #[test]
    fn higher_in_favours_fewer_warps_needed() {
        // With more independent instructions per hit (higher Id), the same
        // hit-rate improvement buys more busy cycles, raising mu_p/np.
        let lo = reduced();
        let mut hi = reduced();
        hi.base.id = 6.0;
        assert!(hi.mu_p_np().unwrap() > lo.mu_p_np().unwrap());
    }
}
