//! # poise-ml — the machine learning framework of Poise
//!
//! This crate implements the offline half of Poise (paper Section V):
//!
//! * [`analytical`] — the analytical performance model (Equations 1–11)
//!   used to derive the feature vector from domain knowledge;
//! * [`features`] — the Table II feature vector `x1..x8`, assembled from
//!   counter samples taken at the two reference points `(24, 24)` and
//!   `(1, 1)` of the {N, p} solution space;
//! * [`scoring`] — the Equation 12 neighbourhood scoring that prefers
//!   performance peaks in safe neighbourhoods over peaks beside cliffs,
//!   plus the tuple scaling used to normalise training targets;
//! * [`glm`] — Negative Binomial regression (log link) trained by
//!   iteratively reweighted least squares, standing in for the paper's
//!   Statsmodels fit;
//! * [`linalg`] — the small dense solver backing the IRLS updates;
//! * [`training`] — the end-to-end training pipeline turning profiled
//!   kernels into the two weight vectors (α for N, β for p) that the
//!   compiler ships to the hardware inference engine.

pub mod analytical;
pub mod features;
pub mod glm;
pub mod linalg;
pub mod scoring;
pub mod training;

pub use analytical::{AnalyticalParams, ReducedParams};
pub use features::{FeatureVector, N_FEATURES};
pub use glm::{FitError, NbRegression};
pub use scoring::{ScoringWeights, SpeedupGrid};
pub use training::{TrainedModel, TrainingSample, TrainingThresholds};
