//! The Table II feature vector.
//!
//! Features are assembled from two [`WindowSample`]s taken at fixed
//! reference points in the {N, p} solution space — the baseline
//! `(max, max)` and the reference `(1, 1)` — exactly as the hardware
//! inference engine samples them at runtime:
//!
//! | feature | formulation |
//! |---------|-------------|
//! | x1 | `ho` — net L1 hit rate at baseline |
//! | x2 | `h'` — net L1 hit rate at (1, 1) |
//! | x3 | `ηo` — intra-warp hit rate at baseline |
//! | x4 | `η'` — intra-warp hit rate at (1, 1) |
//! | x5 | `(η' − ηo)²` — remaining intra-warp locality opportunity |
//! | x6 | `In · (η' − ηo)²` |
//! | x7 | `(L'·m' − mo·Lo)² / 10⁴` — AML pressure change |
//! | x8 | `1` — intercept |

use gpu_sim::WindowSample;

/// Number of features (including the constant intercept).
pub const N_FEATURES: usize = 8;

/// The feature vector `X` of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureVector(pub [f64; N_FEATURES]);

impl FeatureVector {
    /// Assemble the features from the baseline sample (taken at
    /// `(max, max)`) and the reference sample (taken at `(1, 1)`).
    ///
    /// `In` is taken from the baseline sample; an infinite `In` (no loads
    /// observed) is clamped to a large finite proxy so the dot product
    /// stays finite.
    pub fn from_samples(base: &WindowSample, reference: &WindowSample) -> Self {
        let ho = base.hit_rate;
        let h_prime = reference.hit_rate;
        let eta_o = base.intra_rate;
        let eta_prime = reference.intra_rate;
        let d_eta = eta_prime - eta_o;
        let in_avg = if base.in_avg.is_finite() {
            base.in_avg
        } else {
            1e3
        };
        let m_o = 1.0 - ho;
        let m_prime = 1.0 - h_prime;
        let aml_term = reference.aml * m_prime - base.aml * m_o;
        FeatureVector([
            ho,
            h_prime,
            eta_o,
            eta_prime,
            d_eta * d_eta,
            in_avg * d_eta * d_eta,
            aml_term * aml_term / 1e4,
            1.0,
        ])
    }

    /// The raw feature slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Zero out feature `idx` (leave-one-out ablation, Fig. 13). The
    /// intercept (index 7) cannot be removed.
    ///
    /// # Panics
    /// Panics if `idx >= 7`.
    pub fn without_feature(mut self, idx: usize) -> Self {
        assert!(idx < N_FEATURES - 1, "cannot remove the intercept");
        self.0[idx] = 0.0;
        self
    }
}

impl std::fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(hit: f64, intra: f64, aml: f64, in_avg: f64) -> WindowSample {
        WindowSample {
            cycles: 1000,
            instructions: 800,
            hit_rate: hit,
            intra_rate: intra,
            aml,
            in_avg,
            ipc: 0.8,
        }
    }

    #[test]
    fn features_match_table_ii_formulations() {
        let base = sample(0.2, 0.15, 400.0, 3.0);
        let refp = sample(0.8, 0.7, 380.0, 3.0);
        let x = FeatureVector::from_samples(&base, &refp);
        assert_eq!(x.0[0], 0.2);
        assert_eq!(x.0[1], 0.8);
        assert_eq!(x.0[2], 0.15);
        assert_eq!(x.0[3], 0.7);
        let d = 0.7f64 - 0.15;
        assert!((x.0[4] - d * d).abs() < 1e-12);
        assert!((x.0[5] - 3.0 * d * d).abs() < 1e-12);
        let aml_term = 380.0 * 0.2 - 400.0 * 0.8;
        assert!((x.0[6] - aml_term * aml_term / 1e4).abs() < 1e-9);
        assert_eq!(x.0[7], 1.0);
    }

    #[test]
    fn infinite_in_is_clamped() {
        let base = sample(0.2, 0.1, 400.0, f64::INFINITY);
        let refp = sample(0.9, 0.8, 100.0, f64::INFINITY);
        let x = FeatureVector::from_samples(&base, &refp);
        assert!(x.0.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn without_feature_zeroes_entry() {
        let base = sample(0.2, 0.1, 400.0, 3.0);
        let refp = sample(0.9, 0.8, 100.0, 3.0);
        let x = FeatureVector::from_samples(&base, &refp).without_feature(4);
        assert_eq!(x.0[4], 0.0);
        assert_eq!(x.0[7], 1.0);
    }

    #[test]
    #[should_panic(expected = "intercept")]
    fn removing_intercept_panics() {
        let s = sample(0.2, 0.1, 1.0, 1.0);
        let _ = FeatureVector::from_samples(&s, &s).without_feature(7);
    }
}
