//! Minimal, dependency-free stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this workspace vendors
//! the tiny slice of `rand` it actually uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] for `f64`, and
//! [`Rng::gen_range`] over integer and float ranges. The generator is a
//! deterministic xoshiro256**; streams are stable across platforms and
//! versions, which is all the synthetic workload generators require.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a full-range draw.
pub trait Standard: Sized {
    /// Sample a value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = hi.wrapping_sub(lo) as u64 + 1;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The raw xoshiro256** state, for serialization (e.g. simulation
        /// snapshots). Restore with [`SmallRng::from_state`].
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by [`SmallRng::state`];
        /// the restored stream continues exactly where the saved one stood.
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut z = seed;
            let mut next = || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1usize..=5);
            assert!((1..=5).contains(&w));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
