//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of proptest its property suites use: range/tuple/`Just`/
//! `prop_map`/`prop_oneof!` strategies, `collection::vec`, the `proptest!`
//! macro, `prop_assert*`/`prop_assume!`, and `ProptestConfig::with_cases`.
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! generated from a fixed deterministic seed (reproducible CI), and there
//! is no shrinking — a failing case panics with the generated inputs left
//! in the assertion message.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Runner configuration (subset: case count only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Build a config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic RNG driving generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator used by the `proptest!` macro.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = self.state;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A mapped strategy (see [`Strategy::prop_map`]).
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Uniform choice between same-typed strategies (`prop_oneof!`).
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Build from a non-empty list of options.
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].gen_value(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0 / 0);
    impl_tuple_strategy!(S0 / 0, S1 / 1);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
    impl_tuple_strategy!(
        S0 / 0,
        S1 / 1,
        S2 / 2,
        S3 / 3,
        S4 / 4,
        S5 / 5,
        S6 / 6,
        S7 / 7
    );
    impl_tuple_strategy!(
        S0 / 0,
        S1 / 1,
        S2 / 2,
        S3 / 3,
        S4 / 4,
        S5 / 5,
        S6 / 6,
        S7 / 7,
        S8 / 8
    );
}

use strategy::Strategy;
use test_runner::TestRng;

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64 + 1;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: an exact length or a half-open range.
    pub trait IntoSizeRange {
        /// Lower/upper (exclusive) bounds of the generated length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy generating vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.hi - self.lo).max(1) as u64;
            let len = self.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: vectors of `element` with the given
    /// size (exact `usize` or `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty size range");
        VecStrategy { element, lo, hi }
    }
}

/// Re-exports matching `proptest::prelude::*` usage in this workspace.
pub mod prelude {
    pub use crate::prop_assert;
    pub use crate::prop_assert_eq;
    pub use crate::prop_assume;
    pub use crate::prop_oneof;
    pub use crate::proptest;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
}

/// Assert within a property; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skip the current generated case when the assumption does not hold.
/// Only valid directly inside a `proptest!` body (expands to `return`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between same-typed strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($arm),+])
    };
}

/// Define deterministic property tests over generated inputs.
///
/// Supports the subset of real-proptest syntax used in this workspace:
/// an optional `#![proptest_config(...)]` header and `#[test]` functions
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::gen_value(
                            &($strat),
                            &mut rng,
                        );
                    )+
                    // A closure so `prop_assume!` can skip the case with
                    // an early return.
                    let case = move || $body;
                    case();
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 1usize..=4, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        /// Tuples, maps, vec and oneof compose.
        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0u32..10, 0u32..10).prop_map(|(a, b)| a + b), 1..20),
            j in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&s| s <= 18));
            prop_assert!(j == 1 || j == 2);
        }

        /// prop_assume skips cases without failing.
        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
