//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of criterion its benches use: `Criterion::bench_function`,
//! `Bencher::iter`/`iter_batched`, `BatchSize`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! warmup + timed-batch loop reporting mean/min wall-clock per iteration;
//! there is no statistical analysis or HTML report.

use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted for compatibility;
/// the shim always times one routine call per setup call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured call.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Builder: target number of measured samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Builder: measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Builder: warmup budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Times the closure handed to [`Criterion::bench_function`].
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// Mean per-iteration time of each measured sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `routine` (one logical iteration per call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and per-sample iteration-count estimation.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((budget / self.sample_size as f64 / per_iter.max(1e-9)) as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }

    /// Measure `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warmup.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut measured = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = measured.as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((budget / self.sample_size as f64 / per_iter.max(1e-9)) as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                total += t.elapsed();
            }
            self.samples
                .push(total.as_secs_f64() / iters_per_sample as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no measurement)");
            return;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{name:<40} mean {:>12}  min {:>12}",
            fmt_time(mean),
            fmt_time(min)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Group benchmark functions under one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("shim/self-test", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
