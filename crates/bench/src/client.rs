//! The daemon client side of `run_all`: submit a plan to a running
//! `poised` (see [`poise::daemon`]), stream its progress events, and
//! query/cancel/shut it down. All paths degrade gracefully when no
//! daemon is listening — `--connect` falls back to the in-process run,
//! `--status` to a headless summary of the lease directory and the
//! daemon event log.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use poise::daemon::{Event, Request, SubmitRequest};
use poise::jobs::Engine;

use crate::results_dir;

/// The conventional socket path under the results dir.
pub fn default_socket() -> PathBuf {
    results_dir().join("daemon.sock")
}

/// What a completed daemon submission reported.
pub struct SubmitOutcome {
    pub id: String,
    /// `"pass"`, `"failed"` or `"cancelled"`.
    pub outcome: String,
    pub executed: u64,
    pub cache_hits: u64,
    /// Hard failures plus cancelled jobs.
    pub failed: u64,
}

/// Submit one plan and stream its events until completion. `Err` means
/// the daemon was unreachable, rejected the submission, or died
/// mid-stream — the caller degrades to the in-process path.
pub fn submit_and_stream(socket: &Path, req: &SubmitRequest) -> Result<SubmitOutcome, String> {
    let mut stream = connect(socket)?;
    writeln!(stream, "{}", Request::Submit(req.clone()).render())
        .map_err(|e| format!("send to daemon: {e}"))?;
    let reader = BufReader::new(stream);
    let mut id = String::from("?");
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read from daemon: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        match Event::parse_line(&line).map_err(|e| format!("bad event from daemon: {e}"))? {
            Event::Error { error } => return Err(format!("daemon: {error}")),
            Event::Rejected { reason, .. } => return Err(format!("daemon rejected: {reason}")),
            Event::Admitted {
                id: sid,
                jobs,
                cross_client_shared,
                queue_depth,
                ..
            } => {
                id = sid;
                eprintln!(
                    "[run_all] daemon admitted {id}: {jobs} job(s), \
                     cross_client_shared={cross_client_shared}, queue_depth={queue_depth}"
                );
            }
            Event::Job {
                label,
                status,
                attempts,
                error,
                ..
            } => {
                let err = error.map(|e| format!(" ({e})")).unwrap_or_default();
                eprintln!(
                    "[run_all] {id}: {} {label} (attempts {attempts}){err}",
                    status.name()
                );
            }
            Event::Progress {
                done,
                total,
                percent,
                ..
            } => eprintln!("[run_all] {id}: {done}/{total} jobs ({percent}%)"),
            Event::Complete {
                outcome,
                executed,
                cache_hits,
                failed,
                cancelled,
                ..
            } => {
                return Ok(SubmitOutcome {
                    id,
                    outcome,
                    executed,
                    cache_hits,
                    failed: failed + cancelled,
                })
            }
            // Replies to other request kinds never appear on a submit
            // stream; tolerate them anyway (forward compatibility).
            Event::Status { .. } | Event::Ack { .. } => {}
        }
    }
    Err("daemon closed the stream before completion".to_string())
}

/// `run_all --status`: ask a live daemon, or fall back to a headless
/// summary of the shared lease directory, fabric manifest and daemon
/// event log.
pub fn status_main(socket: &Path) -> ExitCode {
    match query(socket, &Request::Status) {
        Ok(Event::Status { running, queued }) => {
            println!("daemon at {}: live", socket.display());
            if running.is_empty() && queued.is_empty() {
                println!("idle: no queued or running submissions");
            }
            for v in running.iter().chain(queued.iter()) {
                println!(
                    "{:>4}  {:<9} prio {:>3}  {:>4}/{:<4} jobs  client {}",
                    v.id, v.state, v.priority, v.done, v.total, v.client
                );
            }
            ExitCode::SUCCESS
        }
        Ok(other) => {
            eprintln!("[run_all] unexpected status reply: {}", other.render());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!(
                "[run_all] no daemon at {} ({e}); headless status:",
                socket.display()
            );
            headless_status()
        }
    }
}

/// `run_all --daemon-shutdown [now]`: stop a running daemon.
pub fn shutdown_main(socket: &Path, now: bool) -> ExitCode {
    match query(socket, &Request::Shutdown { now }) {
        Ok(Event::Ack { .. }) => {
            eprintln!(
                "[run_all] daemon acknowledged shutdown ({})",
                if now { "now" } else { "drain" }
            );
            ExitCode::SUCCESS
        }
        Ok(other) => {
            eprintln!("[run_all] unexpected shutdown reply: {}", other.render());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("[run_all] {e}");
            ExitCode::FAILURE
        }
    }
}

/// `run_all --daemon-cancel <id>`: withdraw a submission.
pub fn cancel_main(socket: &Path, id: &str) -> ExitCode {
    match query(socket, &Request::Cancel { id: id.to_string() }) {
        Ok(Event::Ack { .. }) => {
            eprintln!("[run_all] daemon acknowledged cancel of {id}");
            ExitCode::SUCCESS
        }
        Ok(Event::Error { error }) => {
            eprintln!("[run_all] daemon: {error}");
            ExitCode::FAILURE
        }
        Ok(other) => {
            eprintln!("[run_all] unexpected cancel reply: {}", other.render());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("[run_all] {e}");
            ExitCode::FAILURE
        }
    }
}

fn connect(socket: &Path) -> Result<UnixStream, String> {
    UnixStream::connect(socket).map_err(|e| format!("connect {}: {e}", socket.display()))
}

/// One request, one reply line.
fn query(socket: &Path, req: &Request) -> Result<Event, String> {
    let mut stream = connect(socket)?;
    writeln!(stream, "{}", req.render()).map_err(|e| format!("send to daemon: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read from daemon: {e}"))?;
    if line.trim().is_empty() {
        return Err("daemon closed the connection without replying".to_string());
    }
    Event::parse_line(line.trim()).map_err(|e| format!("bad reply from daemon: {e}"))
}

/// No live daemon: summarize what the filesystem records — job leases
/// in the shared cache (in-flight work, ours or a standalone fleet's),
/// the fabric manifest, and the tail of the daemon event log.
fn headless_status() -> ExitCode {
    let engine = Engine::from_env(&results_dir());
    let leases_root = engine.cache().leases_root();
    let mut in_flight = 0usize;
    if let Ok(entries) = std::fs::read_dir(&leases_root) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(stem) = name.strip_suffix(".lease") else {
                continue;
            };
            let Some((kind, key)) = stem.split_once('-') else {
                continue;
            };
            in_flight += 1;
            match engine.cache().read_lease(kind, key) {
                Some(Ok(info)) => println!(
                    "lease {kind}-{key}: worker {} attempt {} (heartbeat {:.1}s ago)",
                    info.worker,
                    info.attempt,
                    engine.cache().lease_age(kind, key).unwrap_or(0.0)
                ),
                Some(Err(age)) => println!("lease {kind}-{key}: unreadable (age {age:.1}s)"),
                None => println!("lease {kind}-{key}: just released"),
            }
        }
    }
    if in_flight == 0 {
        println!(
            "no job leases under {} — nothing in flight",
            leases_root.display()
        );
    }
    let manifest = results_dir().join("fabric").join("manifest.txt");
    if let Ok(text) = std::fs::read_to_string(&manifest) {
        if let Some(jobs) = text
            .lines()
            .find_map(|l| l.strip_prefix("jobs "))
            .and_then(|n| n.trim().parse::<usize>().ok())
        {
            println!(
                "fabric manifest: {jobs} job(s) declared at {}",
                manifest.display()
            );
        }
    }
    // The daemon event log survives the daemon: reconstruct the last
    // known state of each submission (parse with the same Event
    // grammar — the seq/t wrapper fields are ignored as unknown).
    let log = results_dir().join("daemon").join("events.jsonl");
    if let Ok(text) = std::fs::read_to_string(&log) {
        let mut last: Vec<(String, String)> = Vec::new();
        for line in text.lines() {
            let Ok(ev) = Event::parse_line(line) else {
                continue;
            };
            let (id, what) = match ev {
                Event::Admitted {
                    id, client, jobs, ..
                } => (id, format!("admitted from {client} ({jobs} jobs)")),
                Event::Progress {
                    id, done, total, ..
                } => (id, format!("running ({done}/{total} jobs)")),
                Event::Complete { id, outcome, .. } => (id, format!("complete: {outcome}")),
                _ => continue,
            };
            match last.iter_mut().find(|(i, _)| *i == id) {
                Some(slot) => slot.1 = what,
                None => last.push((id, what)),
            }
        }
        if !last.is_empty() {
            println!("daemon event log ({}):", log.display());
            for (id, what) in last {
                println!("{id:>4}  {what}");
            }
        }
    }
    ExitCode::SUCCESS
}
