//! # poise-bench — the figure/table regeneration harness
//!
//! Every table and figure of the paper's evaluation section is a
//! [`figures::Figure`]: a declaration of the simulation jobs it needs
//! (executed once, deduplicated across figures, and cached by content
//! hash — see `poise::jobs`) plus a renderer that formats the cached
//! results. The per-figure binaries under `src/bin/` are thin shims over
//! [`figures::figure_main`] kept for CLI compatibility; `run_all` executes
//! the union of every figure's jobs in one in-process pass. See
//! `EXPERIMENTS.md` at the workspace root for the engine, the cache
//! layout/keys, and the `--set`/`--sweep` knob grammar (the `POISE_SMS`,
//! `POISE_KERNELS_CAP`, `POISE_TRAIN_CAP` and `POISE_RUN_CYCLES`
//! environment variables survive as deprecated aliases feeding the same
//! [`poise::plan::KnobOverlay`]; `POISE_RERUN`/`POISE_RETRAIN` control
//! the cache, not the setup).
//!
//! Shared plumbing in this module: [`base_setup`] builds the experiment
//! [`Setup`] by applying a knob overlay to the pure default, plus small
//! text/table formatting helpers.

pub mod client;
pub mod figures;

use std::fmt::Write as _;
use std::path::PathBuf;

use poise::experiment::{BenchResult, Setup};
use poise::plan::KnobOverlay;
use poise_ml::TrainedModel;
use workloads::evaluation_suite;

/// Directory where figure outputs and caches are written: always the
/// workspace-root `results/`, regardless of the invoking working
/// directory (`cargo bench` runs with the package directory as CWD,
/// `cargo run` with the caller's). `POISE_RESULTS_DIR` overrides.
pub fn results_dir() -> PathBuf {
    let p = match std::env::var("POISE_RESULTS_DIR") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => {
            // crates/bench -> workspace root.
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest
                .parent()
                .and_then(|p| p.parent())
                .map(|root| root.join("results"))
                .unwrap_or_else(|| PathBuf::from("results"))
        }
    };
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Parse the deprecated `POISE_*` effort-knob aliases into an overlay —
/// the **one** place the environment is read for setup knobs, called
/// once per process at CLI entry. Prints a deprecation warning per alias
/// found; malformed values are a loud error (they used to fall back to
/// defaults silently).
pub fn env_overlay() -> Result<KnobOverlay, String> {
    let (overlay, warnings) = KnobOverlay::from_env()?;
    for w in warnings {
        eprintln!("[bench] {w}");
    }
    Ok(overlay)
}

/// The base experiment setup: the pure [`Setup::default`] with `overlay`
/// applied. Figures are pure functions of the resulting setup — nothing
/// below this reads the environment.
pub fn base_setup(overlay: &KnobOverlay) -> Setup {
    overlay.applied_to(&Setup::default())
}

/// Directory scanned for committed trace workloads (`*.trace` files):
/// the workspace-root `traces/`, or `POISE_TRACES_DIR`. Unlike
/// [`results_dir`] this is not created on demand — a missing directory
/// simply means no trace workloads.
pub fn traces_dir() -> PathBuf {
    match std::env::var("POISE_TRACES_DIR") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => {
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest
                .parent()
                .and_then(|p| p.parent())
                .map(|root| root.join("traces"))
                .unwrap_or_else(|| PathBuf::from("traces"))
        }
    }
}

/// Serialise a trained model to a small text format.
pub fn model_to_text(m: &TrainedModel) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# Poise trained model (alpha, beta, dispersions)");
    for v in m.alpha.iter() {
        let _ = writeln!(s, "alpha {v:.9e}");
    }
    for v in m.beta.iter() {
        let _ = writeln!(s, "beta {v:.9e}");
    }
    let _ = writeln!(s, "dispersion_n {:.9e}", m.dispersion_n);
    let _ = writeln!(s, "dispersion_p {:.9e}", m.dispersion_p);
    let _ = writeln!(s, "samples_used {}", m.samples_used);
    s
}

/// One row of the main-comparison results.
#[derive(Debug, Clone)]
pub struct MainRow {
    /// Benchmark name.
    pub bench: String,
    /// Scheme name.
    pub scheme: String,
    /// Aggregate IPC.
    pub ipc: f64,
    /// Absolute L1 hit rate.
    pub l1_hit_rate: f64,
    /// Average memory latency (cycles).
    pub aml: f64,
    /// Total energy (model units).
    pub energy: f64,
    /// Mean |ΔN| between prediction and search (Poise rows only).
    pub disp_n: f64,
    /// Mean |Δp| (Poise rows only).
    pub disp_p: f64,
    /// Mean Euclidean displacement (Poise rows only).
    pub disp_euclid: f64,
}

pub(crate) fn row_of(r: &BenchResult) -> MainRow {
    let logs: Vec<_> = r
        .kernels
        .iter()
        .flat_map(|k| k.epoch_logs.iter())
        .filter(|l| !l.early_out)
        .collect();
    let mean = |f: fn(&poise::EpochLog) -> f64| -> f64 {
        if logs.is_empty() {
            0.0
        } else {
            logs.iter().map(|l| f(l)).sum::<f64>() / logs.len() as f64
        }
    };
    MainRow {
        bench: r.bench.clone(),
        scheme: r.scheme.name().to_string(),
        ipc: r.ipc,
        l1_hit_rate: r.l1_hit_rate,
        aml: r.aml,
        energy: r.energy,
        disp_n: mean(|l| l.displacement_n()),
        disp_p: mean(|l| l.displacement_p()),
        disp_euclid: mean(|l| l.displacement_euclid()),
    }
}

pub(crate) fn rows_to_tsv(rows: &[MainRow]) -> String {
    let mut s =
        String::from("bench\tscheme\tipc\tl1_hit_rate\taml\tenergy\tdisp_n\tdisp_p\tdisp_euclid\n");
    for r in rows {
        let _ = writeln!(
            s,
            "{}\t{}\t{:.6}\t{:.6}\t{:.3}\t{:.3}\t{:.4}\t{:.4}\t{:.4}",
            r.bench,
            r.scheme,
            r.ipc,
            r.l1_hit_rate,
            r.aml,
            r.energy,
            r.disp_n,
            r.disp_p,
            r.disp_euclid
        );
    }
    s
}

pub(crate) fn rows_from_tsv(s: &str) -> Option<Vec<MainRow>> {
    let mut rows = Vec::new();
    for line in s.lines().skip(1) {
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() != 9 {
            return None;
        }
        rows.push(MainRow {
            bench: f[0].to_string(),
            scheme: f[1].to_string(),
            ipc: f[2].parse().ok()?,
            l1_hit_rate: f[3].parse().ok()?,
            aml: f[4].parse().ok()?,
            energy: f[5].parse().ok()?,
            disp_n: f[6].parse().ok()?,
            disp_p: f[7].parse().ok()?,
            disp_euclid: f[8].parse().ok()?,
        });
    }
    Some(rows)
}

/// Pull one metric for (bench, scheme) out of the rows.
pub fn metric(rows: &[MainRow], bench: &str, scheme: &str, f: impl Fn(&MainRow) -> f64) -> f64 {
    rows.iter()
        .find(|r| r.bench == bench && r.scheme == scheme)
        .map(f)
        .unwrap_or(f64::NAN)
}

/// The evaluation benchmark names in the paper's plotting order.
pub fn bench_order() -> Vec<String> {
    evaluation_suite().iter().map(|b| b.name.clone()).collect()
}

/// Render a simple aligned table to stdout and append it to a results
/// file named `results/<file>`.
pub fn emit_table(file: &str, title: &str, header: &[&str], rows: &[Vec<String>]) {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, |c| c.len()))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(8)
        })
        .collect();
    let fmt_row = |cells: Vec<String>| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let _ = writeln!(
        out,
        "{}",
        fmt_row(header.iter().map(|s| s.to_string()).collect())
    );
    for r in rows {
        let _ = writeln!(out, "{}", fmt_row(r.clone()));
    }
    print!("{out}");
    let path = results_dir().join(file);
    std::fs::write(&path, &out).expect("write results file");
    eprintln!("[bench] wrote {}", path.display());
}

/// Format a float with fixed decimals, as a table cell.
pub fn cell(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        // A failed or missing sweep point (job failure, timeout,
        // degraded render): an explicit marker beats `NaN` in a table
        // meant for human diffing. Details live in
        // `results/run_all_failures.txt`.
        "MISSING".to_string()
    }
}

/// ASCII rendering of a {N, p} speedup surface (used by Figs. 2, 5, 17).
pub fn render_grid(grid: &poise_ml::SpeedupGrid) -> String {
    let mut s = String::new();
    let max_n = grid.max_n();
    let _ = writeln!(s, "rows: p (top = {max_n}), cols: N (1..{max_n});");
    let _ = writeln!(
        s,
        "++/+ speedup (>10% / >0), - slowdown, -- > 10% slowdown, . unprofiled"
    );
    for p in (1..=max_n).rev() {
        let _ = write!(s, "p={p:2} ");
        for n in 1..=max_n {
            let sym = if p > n {
                "  "
            } else {
                match grid.get(n, p) {
                    None => " .",
                    Some(v) if v >= 1.10 => "++",
                    Some(v) if v >= 1.0 => " +",
                    Some(v) if v >= 0.90 => " -",
                    Some(_) => "--",
                }
            };
            let _ = write!(s, "{sym}");
        }
        let _ = writeln!(s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use poise_ml::N_FEATURES;

    #[test]
    fn model_text_lists_every_weight() {
        let m = TrainedModel {
            alpha: [0.1, -0.2, 0.3, 0.0, 1.5, -2.0, 0.004, 1.6],
            beta: [3.7, 0.48, -6.3, 10.3, -6.5, -0.9, 0.08, -2.1],
            dispersion_n: 0.12,
            dispersion_p: 0.34,
            samples_used: 42,
            dropped_features: Vec::new(),
        };
        let t = model_to_text(&m);
        assert_eq!(
            t.lines().filter(|l| l.starts_with("alpha ")).count(),
            N_FEATURES
        );
        assert_eq!(
            t.lines().filter(|l| l.starts_with("beta ")).count(),
            N_FEATURES
        );
        assert!(t.contains("samples_used 42"));
        assert!(t.contains("dispersion_n 1.200000000e-1"));
    }

    #[test]
    fn tsv_round_trips() {
        let rows = vec![MainRow {
            bench: "ii".into(),
            scheme: "Poise".into(),
            ipc: 1.23,
            l1_hit_rate: 0.4,
            aml: 512.5,
            energy: 1e9,
            disp_n: 1.0,
            disp_p: 0.9,
            disp_euclid: 1.6,
        }];
        let s = rows_to_tsv(&rows);
        let back = rows_from_tsv(&s).expect("parse");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].bench, "ii");
        assert!((back[0].ipc - 1.23).abs() < 1e-9);
    }

    #[test]
    fn grid_rendering_marks_speedups() {
        let mut g = poise_ml::SpeedupGrid::new(3);
        g.set(2, 1, 1.5);
        g.set(3, 3, 0.5);
        let s = render_grid(&g);
        assert!(s.contains("++"));
        assert!(s.contains("--"));
    }
}
