//! The figure registry: every table/figure of the evaluation section as a
//! declarative [`Figure`] over the unified experiment engine.
//!
//! A figure contributes two functions:
//!
//! * `jobs` — the [`SimJob`]s it needs (kernel × scheme runs, offline
//!   profiles, Pbest classifications, training samples/fits);
//! * `render` — formats the figure from the engine's [`ResultStore`] and
//!   writes it under `results/`.
//!
//! `run_all` concatenates every figure's jobs, hands the union to
//! [`poise::jobs::Engine`] — which deduplicates across figures, executes
//! the unique set once over the shared work queue, and answers repeats
//! from the content-addressed cache — then renders each figure in order.
//! The per-figure binaries call [`figure_main`] with just their own jobs,
//! hitting the same cache.
//!
//! ## Byte-compatibility with the retired per-binary harness
//!
//! The old harness computed the Figs. 7–10/14 comparison once (in
//! `fig07_performance`, which rendered from the in-memory full-precision
//! rows) and re-read it from `results/main_comparison.tsv` (6-decimal
//! cells) in every later binary. [`main_rows_cached`] reproduces that
//! round-trip so every figure renders byte-identically to the per-binary
//! `run_all`, which the migration was validated against.

use std::process::ExitCode;
use std::time::Instant;

use gpu_sim::{KernelSource, SetIndexing, WarpTuple};
use poise::experiment::{self, arithmetic_mean, harmonic_mean, Scheme, Setup};
use poise::jobs::{
    Engine, KernelRunSpec, ModelSpec, PbestSpec, ProfileSpec, ResultStore, RunReport, SampleSpec,
    SimJob, TupleRunSpec,
};
use poise::plan::{Axis, ExperimentPlan, KnobOverlay, PlanExpansion, SweepPoint};
use poise::policies::swl_tuple_from_grid;
use poise::profiler::{GridSpec, ProfileWindow};
use poise::FaultPlan;
use poise_ml::{ScoringWeights, SpeedupGrid, TrainingSample};
use workloads::{
    compute_insensitive_suite, evaluation_suite, fig4_kernels, training_suite, Benchmark, TraceRef,
    Workload,
};

use crate::{
    bench_order, cell, emit_table, metric, model_to_text, render_grid, results_dir, rows_from_tsv,
    rows_to_tsv, MainRow,
};

/// Shared context every figure declares and renders against: the
/// environment-derived [`Setup`] and the default training [`ModelSpec`].
pub struct FigCtx {
    /// The experiment setup (machine, params, effort caps).
    pub setup: Setup,
    /// The one-time offline training run all Poise figures share.
    pub model: ModelSpec,
    /// The trace workloads under [`crate::traces_dir`], loaded once at
    /// context construction so the `trace_eval` jobs and renderer see
    /// the same snapshot (and each file is read and digested once).
    pub traces: Vec<Workload>,
    /// Load failures from the traces directory (`file: error`). The
    /// loadable traces still declare jobs, but `trace_eval`'s render
    /// fails while any trace is unreadable — a corrupt committed trace
    /// must fail the run (and veto `--gc`), not silently shrink it.
    pub trace_errors: Vec<String>,
}

impl FigCtx {
    /// Build the context over an explicit base [`Setup`] (the knob
    /// overlay has already been applied by the CLI entry point).
    pub fn new(setup: Setup) -> Self {
        let model = ModelSpec::default_training(&setup);
        let (traces, trace_errors) = load_trace_workloads();
        FigCtx {
            setup,
            model,
            traces,
            trace_errors,
        }
    }

    /// Build the context from the deprecated `POISE_*` aliases only (the
    /// per-figure binary shims take no `--set` arguments). Errors on
    /// malformed alias values.
    pub fn from_env() -> Result<Self, String> {
        Ok(FigCtx::new(crate::base_setup(&crate::env_overlay()?)))
    }
}

/// One registered figure/table.
///
/// Every figure is an [`ExperimentPlan`]: `axes` declares its intrinsic
/// sweep (empty for the common single-point figures; `run_all --sweep`
/// can override or extend it), `jobs` is a pure function of one sweep
/// point's [`Setup`], and `render` receives every expanded point. The
/// shared [`FigCtx`] carries what is deliberately *not* swept: the base
/// setup, the one offline-trained model every point deploys, and the
/// trace workloads.
pub struct Figure {
    /// Binary-compatible name, e.g. `"fig07_performance"`.
    pub name: &'static str,
    /// The figure's intrinsic sweep axes over the base setup.
    pub axes: fn(&FigCtx) -> Vec<Axis>,
    /// Whether the renderer can present more than one sweep point.
    /// `run_all` rejects a `--sweep` that expands a non-sweepable
    /// figure *before* simulating anything — paying for the whole
    /// swept job graph only to fail at render time would waste hours
    /// at paper knobs.
    pub sweepable: bool,
    /// The simulation jobs of one sweep point.
    pub jobs: fn(&FigCtx, &Setup) -> Vec<SimJob>,
    /// Render from cached results; `Err` carries the failure message.
    pub render: fn(&FigCtx, &[SweepPoint], &ResultStore) -> Result<(), String>,
}

impl Figure {
    /// The figure's plan: its axes applied over the context's base setup.
    /// `override_axes` (from `run_all --sweep`) replace a same-knob
    /// default axis or extend the axis list.
    pub fn plan(&self, ctx: &FigCtx, override_axes: &[Axis]) -> ExperimentPlan {
        let mut axes = (self.axes)(ctx);
        for o in override_axes {
            match axes.iter_mut().find(|a| a.knob == o.knob) {
                Some(a) => *a = o.clone(),
                None => axes.push(o.clone()),
            }
        }
        ExperimentPlan::new(ctx.setup.clone(), axes)
    }

    /// Expand this figure's plan into its per-point jobs.
    pub fn expand(&self, ctx: &FigCtx, override_axes: &[Axis]) -> PlanExpansion {
        self.plan(ctx, override_axes)
            .expand(|setup| (self.jobs)(ctx, setup))
    }
}

/// All figures, in the canonical `run_all` order.
pub fn registry() -> Vec<Figure> {
    macro_rules! fig {
        ($name:literal, $jobs:ident, $render:ident) => {
            Figure {
                name: $name,
                axes: no_axes,
                sweepable: false,
                jobs: $jobs,
                render: $render,
            }
        };
        // Figures declaring axes render arbitrary point sets.
        ($name:literal, $axes:ident, $jobs:ident, $render:ident) => {
            Figure {
                name: $name,
                axes: $axes,
                sweepable: true,
                jobs: $jobs,
                render: $render,
            }
        };
    }
    vec![
        fig!("table4_params", no_jobs, render_table4),
        fig!("table_hw_cost", no_jobs, render_table_hw_cost),
        fig!("table2_weights", jobs_table2, render_table2),
        fig!("fig04_hit_rates", jobs_fig04, render_fig04),
        fig!("fig02_pitfalls", jobs_fig02, render_fig02),
        fig!("fig05_scoring", jobs_fig05, render_fig05),
        fig!("table3_workloads", jobs_table3, render_table3),
        fig!("fig07_performance", jobs_main_comparison, render_fig07),
        fig!("fig08_l1_hit_rate", jobs_main_comparison, render_fig08),
        fig!("fig09_aml", jobs_main_comparison, render_fig09),
        fig!("fig10_displacement", jobs_main_comparison, render_fig10),
        fig!("fig14_energy", jobs_main_comparison, render_fig14),
        fig!(
            "prediction_error",
            jobs_prediction_error,
            render_prediction_error
        ),
        fig!("fig16_insensitive", jobs_fig16, render_fig16),
        fig!("trace_eval", jobs_trace_eval, render_trace_eval),
        fig!("fig15_alternatives", jobs_fig15, render_fig15),
        fig!("fig17_case_study", jobs_fig17, render_fig17),
        fig!("fig11_stride", jobs_fig11, render_fig11),
        fig!("fig12_cache_size", axes_fig12, jobs_fig12, render_fig12),
        fig!("fig13_feature_ablation", jobs_fig13, render_fig13),
        fig!("ablation_mshr", jobs_ablation_mshr, render_ablation_mshr),
        fig!("ablation_epoch", jobs_ablation_epoch, render_ablation_epoch),
        fig!(
            "sm_scaling",
            axes_sm_scaling,
            jobs_sm_scaling,
            render_sm_scaling
        ),
    ]
}

// ---------------------------------------------------------------------------
// Shared job/lookup helpers. `jobs` and `render` construct specs through
// the same functions, so a figure always looks up exactly what it
// declared.
// ---------------------------------------------------------------------------

fn no_axes(_ctx: &FigCtx) -> Vec<Axis> {
    Vec::new()
}

fn no_jobs(_ctx: &FigCtx, _setup: &Setup) -> Vec<SimJob> {
    Vec::new()
}

/// The single sweep point of a figure without axes. Figures whose
/// renderer calls this do not support `--sweep`: expanding them to
/// several points is a loud render error, never a silent overwrite of
/// one point's output by another's.
fn single_point(points: &[SweepPoint]) -> Result<&SweepPoint, String> {
    match points {
        [p] => Ok(p),
        _ => Err(format!(
            "figure renders a single sweep point but the plan expanded to {} \
             (this figure does not support --sweep)",
            points.len()
        )),
    }
}

/// Jobs for one benchmark under one scheme (capped kernels).
fn scheme_jobs(
    bench: &Benchmark,
    scheme: Scheme,
    setup: &Setup,
    model: Option<&ModelSpec>,
) -> Vec<SimJob> {
    bench
        .capped(setup.kernels_cap)
        .kernels
        .iter()
        .map(|k| SimJob::Run(KernelRunSpec::new(k, scheme, setup, model)))
        .collect()
}

/// Aggregate one benchmark × scheme from cached kernel runs, exactly as
/// `experiment::run_benchmark` would.
fn scheme_result(
    store: &ResultStore,
    bench: &Benchmark,
    scheme: Scheme,
    setup: &Setup,
    model: Option<&ModelSpec>,
) -> Result<experiment::BenchResult, String> {
    let capped = bench.capped(setup.kernels_cap);
    let mut runs = Vec::with_capacity(capped.kernels.len());
    for k in &capped.kernels {
        runs.push(
            store
                .run(&KernelRunSpec::new(k, scheme, setup, model))?
                .clone(),
        );
    }
    Ok(experiment::aggregate(bench.name.clone(), scheme, runs))
}

/// The Figs. 7–10/14 comparison: five schemes × eleven benchmarks.
fn jobs_main_comparison(ctx: &FigCtx, setup: &Setup) -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for bench in evaluation_suite() {
        for scheme in Scheme::main_comparison() {
            let model = (scheme == Scheme::Poise).then_some(&ctx.model);
            jobs.extend(scheme_jobs(&bench, scheme, setup, model));
        }
    }
    jobs
}

/// A placeholder row for a (bench, scheme) point whose jobs failed:
/// every metric NaN, which [`crate::cell`] renders as `MISSING`. The
/// figure still emits its full table; the failure detail lives in
/// `results/run_all_failures.txt`.
fn missing_row(bench: &str, scheme: Scheme) -> MainRow {
    MainRow {
        bench: bench.to_string(),
        scheme: scheme.name().to_string(),
        ipc: f64::NAN,
        l1_hit_rate: f64::NAN,
        aml: f64::NAN,
        energy: f64::NAN,
        disp_n: f64::NAN,
        disp_p: f64::NAN,
        disp_euclid: f64::NAN,
    }
}

/// Full-precision main-comparison rows, in the order the old harness
/// produced them (bench-major, `Scheme::main_comparison` order).
/// Points whose jobs failed degrade to [`missing_row`] instead of
/// failing the whole figure.
fn main_rows(ctx: &FigCtx, setup: &Setup, store: &ResultStore) -> Result<Vec<MainRow>, String> {
    let mut rows = Vec::new();
    for bench in evaluation_suite() {
        for scheme in Scheme::main_comparison() {
            let model = (scheme == Scheme::Poise).then_some(&ctx.model);
            match scheme_result(store, &bench, scheme, setup, model) {
                Ok(r) => rows.push(crate::row_of(&r)),
                Err(e) => {
                    eprintln!(
                        "[bench] {} × {}: {e}; rendering MISSING cells",
                        bench.name,
                        scheme.name()
                    );
                    rows.push(missing_row(&bench.name, scheme));
                }
            }
        }
    }
    Ok(rows)
}

/// Main-comparison rows as every figure after `fig07` saw them in the
/// per-binary harness: round-tripped through the 6-decimal TSV cells
/// (see the module docs).
fn main_rows_cached(
    ctx: &FigCtx,
    setup: &Setup,
    store: &ResultStore,
) -> Result<Vec<MainRow>, String> {
    let rows = main_rows(ctx, setup, store)?;
    rows_from_tsv(&rows_to_tsv(&rows)).ok_or_else(|| "TSV round-trip failed".to_string())
}

// ---------------------------------------------------------------------------
// Table IV — parameters (no simulation).
// ---------------------------------------------------------------------------

fn render_table4(
    _ctx: &FigCtx,
    _points: &[SweepPoint],
    _store: &ResultStore,
) -> Result<(), String> {
    use poise::PoiseParams;
    use poise_ml::TrainingThresholds;
    let p = PoiseParams::default();
    let t = TrainingThresholds::default();
    let rows = vec![
        vec![
            "w0, w1, w2".into(),
            "performance scoring weights".into(),
            format!("{}, {}, {}", p.scoring.0[0], p.scoring.0[1], p.scoring.0[2]),
        ],
        vec![
            "Tperiod".into(),
            "inference periodicity".into(),
            format!("{} cycles", p.t_period),
        ],
        vec![
            "Twarmup".into(),
            "warmup duration".into(),
            format!("{} cycles", p.t_warmup),
        ],
        vec![
            "Tfeature".into(),
            "feature sampling duration".into(),
            format!("{} cycles", p.t_feature),
        ],
        vec![
            "Tsearch".into(),
            "local-search sampling duration".into(),
            format!("{} cycles", p.t_search),
        ],
        vec![
            "Imax".into(),
            "cut-off for instructions between loads".into(),
            format!("{}", p.i_max),
        ],
        vec![
            "eps_N".into(),
            "search stride for N".into(),
            p.stride_n.to_string(),
        ],
        vec![
            "eps_p".into(),
            "search stride for p".into(),
            p.stride_p.to_string(),
        ],
        vec![
            "thr speedup".into(),
            "training kernel best-tuple speedup".into(),
            format!(">= {:.1}%", (t.min_speedup - 1.0) * 100.0),
        ],
        vec![
            "thr cycles".into(),
            "training kernel baseline cycles".into(),
            format!(">= {}", t.min_cycles),
        ],
        vec![
            "thr hit rate".into(),
            "training kernel L1 hit rate at (1,1)".into(),
            format!("> {} %", t.min_ref_hit_rate * 100.0),
        ],
    ];
    emit_table(
        "table4_params.txt",
        "Table IV — Poise parameters",
        &["parameter", "description", "value"],
        &rows,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// §VII-I — hardware cost (no simulation).
// ---------------------------------------------------------------------------

fn render_table_hw_cost(
    _ctx: &FigCtx,
    _points: &[SweepPoint],
    _store: &ResultStore,
) -> Result<(), String> {
    use poise::hardware_cost::HardwareCost;
    let c = HardwareCost::paper_baseline();
    let rows = vec![
        vec![
            "performance counters".into(),
            format!("{} bits", c.counter_bits),
        ],
        vec!["FSM state registers".into(), format!("{} bits", c.fsm_bits)],
        vec![
            "vital + pollute bits".into(),
            format!("{} bits", c.warp_bits),
        ],
        vec!["total per SM".into(), format!("{} bits", c.bits_per_sm())],
        vec!["bytes per SM".into(), format!("{:.2} B", c.bytes_per_sm())],
        vec![
            "bytes per chip (32 SMs)".into(),
            format!("{:.0} B", c.bytes_total(32)),
        ],
    ];
    emit_table(
        "table_hw_cost.txt",
        "SVII-I — Poise per-SM storage overhead",
        &["item", "cost"],
        &rows,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Table II — learned weights.
// ---------------------------------------------------------------------------

fn jobs_table2(ctx: &FigCtx, _setup: &Setup) -> Vec<SimJob> {
    vec![SimJob::Train(ctx.model.clone())]
}

fn render_table2(ctx: &FigCtx, _points: &[SweepPoint], store: &ResultStore) -> Result<(), String> {
    let model = store.model(&ctx.model)?;
    // Keep the human-readable weight dump the old harness left in
    // `results/model.txt` (the canonical copy now lives in the job cache).
    std::fs::write(results_dir().join("model.txt"), model_to_text(model))
        .map_err(|e| format!("write model.txt: {e}"))?;
    let names = [
        "x1 = ho",
        "x2 = h'",
        "x3 = eta_o",
        "x4 = eta'",
        "x5 = (eta'-eta_o)^2",
        "x6 = In(eta'-eta_o)^2",
        "x7 = (L'm'-moLo)^2/1e4",
        "x8 = 1 (intercept)",
    ];
    let mut rows = Vec::new();
    for (i, n) in names.iter().enumerate() {
        rows.push(vec![
            n.to_string(),
            format!("{:+.6}", model.alpha[i]),
            format!("{:+.6}", model.beta[i]),
        ]);
    }
    rows.push(vec![
        "dispersion".to_string(),
        format!("{:+.6}", model.dispersion_n),
        format!("{:+.6}", model.dispersion_p),
    ]);
    rows.push(vec![
        "samples used".to_string(),
        model.samples_used.to_string(),
        model.samples_used.to_string(),
    ]);
    emit_table(
        "table2_weights.txt",
        "Table II — learned feature weights (alpha for N, beta for p)",
        &["feature", "alpha (N)", "beta (p)"],
        &rows,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 4 — L1 hit-rate decomposition.
// ---------------------------------------------------------------------------

fn fig04_specs(setup: &Setup) -> Vec<(Workload, TupleRunSpec, TupleRunSpec)> {
    let mut cfg = setup.cfg.clone();
    cfg.track_reuse_distance = true;
    let window = ProfileWindow {
        warmup: setup.profile_window.warmup,
        measure: setup.profile_window.measure * 2,
    };
    fig4_kernels()
        .into_iter()
        .map(Workload::from)
        .map(|kernel| {
            let base = TupleRunSpec {
                workload: kernel.clone(),
                cfg: cfg.clone(),
                tuple: WarpTuple::max(24),
                window,
            };
            let reduced = TupleRunSpec {
                workload: kernel.clone(),
                cfg: cfg.clone(),
                tuple: WarpTuple::new(24, 1, 24),
                window,
            };
            (kernel, base, reduced)
        })
        .collect()
}

fn jobs_fig04(_ctx: &FigCtx, setup: &Setup) -> Vec<SimJob> {
    fig04_specs(setup)
        .into_iter()
        .flat_map(|(_, base, reduced)| [SimJob::TupleRun(base), SimJob::TupleRun(reduced)])
        .collect()
}

fn render_fig04(_ctx: &FigCtx, points: &[SweepPoint], store: &ResultStore) -> Result<(), String> {
    let setup = &single_point(points)?.setup;
    let mut rows = Vec::new();
    for (kernel, base_spec, reduced_spec) in fig04_specs(setup) {
        let b = &store.steady(&base_spec)?.window;
        let r = &store.steady(&reduced_spec)?.window;
        let hits = (b.l1_hits).max(1) as f64;
        rows.push(vec![
            kernel.name().to_string(),
            cell(r.polluting_hit_rate(), 3),
            cell(r.non_polluting_hit_rate(), 3),
            cell(b.l1_hit_rate(), 3),
            cell(100.0 * b.l1_intra_hits as f64 / hits, 0),
            cell(100.0 * b.l1_inter_hits as f64 / hits, 0),
            cell(b.reuse_distance(), 0),
        ]);
    }
    emit_table(
        "fig04_hit_rates.txt",
        "Fig. 4 — L1 hit rates at (24, 1): hp, hnp, baseline ho, \
         intra/inter share of baseline hits (%), reuse distance R (lines)",
        &["kernel", "hp", "hnp", "ho", "intra%", "inter%", "R"],
        &rows,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 2 — solution-space pitfalls.
// ---------------------------------------------------------------------------

/// Simulate PCAL's search procedure offline on the profiled surface:
/// start at the SWL point, pick the best p at that N, then unit-step
/// hill-climb in N until no neighbour improves.
fn pcal_converge(grid: &SpeedupGrid, start: WarpTuple) -> WarpTuple {
    let at = |n: usize, p: usize| grid.get(n, p.min(n)).unwrap_or(f64::NEG_INFINITY);
    // Parallel p search at the starting N.
    let mut best_p = start.p;
    let mut best = at(start.n, start.p);
    for p in 1..=start.n {
        if at(start.n, p) > best {
            best = at(start.n, p);
            best_p = p;
        }
    }
    // Unit-step hill climb in N.
    let mut n = start.n;
    loop {
        let up = if n < grid.max_n() {
            at(n + 1, best_p)
        } else {
            f64::NEG_INFINITY
        };
        let down = if n > 1 {
            at(n - 1, best_p)
        } else {
            f64::NEG_INFINITY
        };
        if up > best && up >= down {
            n += 1;
            best = up;
        } else if down > best {
            n -= 1;
            best = down;
        } else {
            break;
        }
    }
    WarpTuple::new(n, best_p.min(n), grid.max_n())
}

fn fig02_spec(setup: &Setup) -> ProfileSpec {
    // The paper profiles ii kernel #112; any intra-heavy family member
    // shows the same structure — use the ii base kernel. Full 300-point
    // triangle at the hardware scheduler capacity.
    let bench = evaluation_suite()
        .into_iter()
        .find(|b| b.name == "ii")
        .expect("ii benchmark");
    let kernel = bench.kernels[0].clone();
    let max_n = setup
        .cfg
        .max_warps_per_scheduler
        .min(kernel.warps_per_scheduler());
    ProfileSpec {
        workload: kernel,
        cfg: setup.cfg.clone(),
        grid: GridSpec::full(max_n),
        window: setup.profile_window,
    }
}

fn jobs_fig02(_ctx: &FigCtx, setup: &Setup) -> Vec<SimJob> {
    vec![SimJob::Profile(fig02_spec(setup))]
}

fn render_fig02(_ctx: &FigCtx, points: &[SweepPoint], store: &ResultStore) -> Result<(), String> {
    let setup = &single_point(points)?.setup;
    let spec = fig02_spec(setup);
    let grid = store.grid(&spec)?;
    let max_n = spec
        .workload
        .warps_per_scheduler()
        .min(setup.cfg.max_warps_per_scheduler);

    println!(
        "# Fig. 2a — {{N, p}} solution space of {}",
        spec.workload.name()
    );
    print!("{}", render_grid(grid));
    let ccws = swl_tuple_from_grid(grid, max_n);
    let pcal = pcal_converge(grid, ccws);
    let (maxt, maxs) = grid.best_performance().ok_or("unprofiled grid")?;
    println!(
        "CCWS (diagonal best): {ccws} -> {:.3}",
        grid.get(ccws.n, ccws.p).unwrap_or(0.0)
    );
    println!(
        "PCAL convergence:     {pcal} -> {:.3}",
        grid.get(pcal.n, pcal.p).unwrap_or(0.0)
    );
    println!("MAX (global best):    {maxt} -> {maxs:.3}");

    let mut rows = Vec::new();
    for n in 1..=grid.max_n() {
        rows.push(vec![
            n.to_string(),
            grid.get(n, n).map_or("-".into(), |v| cell(v, 3)),
            grid.get(n, 1).map_or("-".into(), |v| cell(v, 3)),
        ]);
    }
    emit_table(
        "fig02_pitfalls.txt",
        "Fig. 2b — IPC (normalised) along p = N and p = 1",
        &["N", "p=N", "p=1"],
        &rows,
    );
    let mut extra = String::new();
    extra.push_str(&render_grid(grid));
    extra.push_str(&format!(
        "CCWS {ccws}  PCAL {pcal}  MAX {maxt} ({maxs:.3})\n"
    ));
    std::fs::write(results_dir().join("fig02_grid.txt"), extra)
        .map_err(|e| format!("write fig02_grid.txt: {e}"))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 5 — scoring system.
// ---------------------------------------------------------------------------

fn fig05_specs(setup: &Setup) -> Vec<ProfileSpec> {
    let bench = evaluation_suite()
        .into_iter()
        .find(|b| b.name == "ii")
        .expect("ii benchmark");
    [&bench.kernels[2], &bench.kernels[4]]
        .into_iter()
        .map(|kernel| {
            let max_n = setup
                .cfg
                .max_warps_per_scheduler
                .min(kernel.warps_per_scheduler());
            ProfileSpec {
                workload: kernel.clone(),
                cfg: setup.cfg.clone(),
                grid: GridSpec::full(max_n),
                window: setup.profile_window,
            }
        })
        .collect()
}

fn jobs_fig05(_ctx: &FigCtx, setup: &Setup) -> Vec<SimJob> {
    fig05_specs(setup)
        .into_iter()
        .map(SimJob::Profile)
        .collect()
}

fn render_fig05(_ctx: &FigCtx, points: &[SweepPoint], store: &ResultStore) -> Result<(), String> {
    let setup = &single_point(points)?.setup;
    let mut rows = Vec::new();
    let mut grids = String::new();
    for spec in fig05_specs(setup) {
        let grid = store.grid(&spec)?;
        let (perf_t, perf_s) = grid.best_performance().ok_or("unprofiled")?;
        let (score_t, _) = grid
            .best_scored(&ScoringWeights::default())
            .ok_or("unscored")?;
        let score_s = grid.get(score_t.n, score_t.p).unwrap_or(1.0);
        rows.push(vec![
            spec.workload.name().to_string(),
            format!("{perf_t}"),
            cell(perf_s, 3),
            format!("{score_t}"),
            cell(score_s, 3),
        ]);
        grids.push_str(&format!(
            "== {} ==\n{}",
            spec.workload.name(),
            render_grid(grid)
        ));
    }
    emit_table(
        "fig05_scoring.txt",
        "Fig. 5 — max-performance vs max-score tuples (speedup vs GTO)",
        &["kernel", "perf tuple", "speedup", "score tuple", "speedup"],
        &rows,
    );
    std::fs::write(results_dir().join("fig05_grids.txt"), grids)
        .map_err(|e| format!("write fig05_grids.txt: {e}"))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Table III — workloads with Pbest.
// ---------------------------------------------------------------------------

fn table3_specs(setup: &Setup) -> Vec<(&'static str, Benchmark, PbestSpec)> {
    let window = ProfileWindow::pbest();
    let mut specs = Vec::new();
    for (set, suite) in [("train", training_suite()), ("eval", evaluation_suite())] {
        for bench in suite {
            let spec = PbestSpec {
                workload: bench.kernels[0].clone(),
                cfg: setup.cfg.clone(),
                window,
            };
            specs.push((set, bench, spec));
        }
    }
    specs
}

fn jobs_table3(_ctx: &FigCtx, setup: &Setup) -> Vec<SimJob> {
    table3_specs(setup)
        .into_iter()
        .map(|(_, _, spec)| SimJob::Pbest(spec))
        .collect()
}

fn render_table3(_ctx: &FigCtx, points: &[SweepPoint], store: &ResultStore) -> Result<(), String> {
    let setup = &single_point(points)?.setup;
    let mut rows = Vec::new();
    for (set, bench, spec) in table3_specs(setup) {
        let p = store.pbest(&spec)?;
        rows.push((set, bench.name.clone(), bench.kernels.len(), p));
    }
    // Sort the evaluation set by Pbest, as the paper lists it.
    rows.sort_by(|a, b| {
        a.0.cmp(b.0)
            .then(b.3.partial_cmp(&a.3).unwrap_or(std::cmp::Ordering::Equal))
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(set, name, kernels, p)| {
            vec![
                set.to_string(),
                name.clone(),
                kernels.to_string(),
                format!("{p:.2}x"),
            ]
        })
        .collect();
    emit_table(
        "table3_workloads.txt",
        "Table IIIa — workloads with measured Pbest (64x L1 speedup)",
        &["set", "benchmark", "#kernels", "Pbest"],
        &table,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 7 — IPC normalised to GTO.
// ---------------------------------------------------------------------------

fn render_fig07(ctx: &FigCtx, points: &[SweepPoint], store: &ResultStore) -> Result<(), String> {
    let setup = &single_point(points)?.setup;
    let rows = main_rows(ctx, setup, store)?;
    // The old harness persisted the comparison here; keep the artefact
    // (now a pure product of the job cache, not a cache itself).
    std::fs::write(
        results_dir().join("main_comparison.tsv"),
        rows_to_tsv(&rows),
    )
    .map_err(|e| format!("write main_comparison.tsv: {e}"))?;
    let schemes = ["GTO", "SWL", "PCAL-SWL", "Poise", "Static-Best"];
    let mut table = Vec::new();
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for bench in bench_order() {
        let gto = metric(&rows, &bench, "GTO", |r| r.ipc);
        let mut row = vec![bench.clone()];
        for (i, s) in schemes.iter().enumerate() {
            let v = metric(&rows, &bench, s, |r| r.ipc) / gto;
            speedups[i].push(v);
            row.push(cell(v, 3));
        }
        table.push(row);
    }
    let mut hmean = vec!["H-Mean".to_string()];
    for sp in &speedups {
        hmean.push(cell(harmonic_mean(sp), 3));
    }
    table.push(hmean);
    emit_table(
        "fig07_performance.txt",
        "Fig. 7 — IPC normalised to GTO",
        &["bench", "GTO", "SWL", "PCAL-SWL", "Poise", "Static-Best"],
        &table,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 8 — absolute L1 hit rate.
// ---------------------------------------------------------------------------

fn render_fig08(ctx: &FigCtx, points: &[SweepPoint], store: &ResultStore) -> Result<(), String> {
    let rows = main_rows_cached(ctx, &single_point(points)?.setup, store)?;
    let schemes = ["GTO", "SWL", "PCAL-SWL", "Poise", "Static-Best"];
    let mut table = Vec::new();
    let mut rates: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for bench in bench_order() {
        let mut row = vec![bench.clone()];
        for (i, s) in schemes.iter().enumerate() {
            let v = metric(&rows, &bench, s, |r| r.l1_hit_rate) * 100.0;
            rates[i].push(v);
            row.push(cell(v, 1));
        }
        table.push(row);
    }
    let mut amean = vec!["A-Mean".to_string()];
    for r in &rates {
        amean.push(cell(arithmetic_mean(r), 1));
    }
    table.push(amean);
    emit_table(
        "fig08_l1_hit_rate.txt",
        "Fig. 8 — absolute L1 hit rate (%)",
        &["bench", "GTO", "SWL", "PCAL-SWL", "Poise", "Static-Best"],
        &table,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 9 — AML normalised to GTO.
// ---------------------------------------------------------------------------

fn render_fig09(ctx: &FigCtx, points: &[SweepPoint], store: &ResultStore) -> Result<(), String> {
    let rows = main_rows_cached(ctx, &single_point(points)?.setup, store)?;
    let schemes = ["GTO", "SWL", "PCAL-SWL", "Poise", "Static-Best"];
    let mut table = Vec::new();
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for bench in bench_order() {
        let gto = metric(&rows, &bench, "GTO", |r| r.aml);
        let mut row = vec![bench.clone()];
        for (i, s) in schemes.iter().enumerate() {
            let v = metric(&rows, &bench, s, |r| r.aml) / gto;
            ratios[i].push(v);
            row.push(cell(v, 3));
        }
        table.push(row);
    }
    let mut amean = vec!["A-Mean".to_string()];
    for r in &ratios {
        amean.push(cell(arithmetic_mean(r), 3));
    }
    table.push(amean);
    emit_table(
        "fig09_aml.txt",
        "Fig. 9 — AML normalised to GTO",
        &["bench", "GTO", "SWL", "PCAL-SWL", "Poise", "Static-Best"],
        &table,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 10 — prediction/search displacement.
// ---------------------------------------------------------------------------

fn render_fig10(ctx: &FigCtx, points: &[SweepPoint], store: &ResultStore) -> Result<(), String> {
    let rows = main_rows_cached(ctx, &single_point(points)?.setup, store)?;
    let mut table = Vec::new();
    let (mut dns, mut dps, mut des) = (Vec::new(), Vec::new(), Vec::new());
    for bench in bench_order() {
        let dn = metric(&rows, &bench, "Poise", |r| r.disp_n);
        let dp = metric(&rows, &bench, "Poise", |r| r.disp_p);
        let de = metric(&rows, &bench, "Poise", |r| r.disp_euclid);
        dns.push(dn);
        dps.push(dp);
        des.push(de);
        table.push(vec![bench, cell(dn, 2), cell(dp, 2), cell(de, 2)]);
    }
    table.push(vec![
        "A-Mean".to_string(),
        cell(arithmetic_mean(&dns), 2),
        cell(arithmetic_mean(&dps), 2),
        cell(arithmetic_mean(&des), 2),
    ]);
    emit_table(
        "fig10_displacement.txt",
        "Fig. 10 — displacement between predicted and converged tuples",
        &["bench", "N-axis", "p-axis", "Euclidean"],
        &table,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 14 — energy normalised to GTO.
// ---------------------------------------------------------------------------

fn render_fig14(ctx: &FigCtx, points: &[SweepPoint], store: &ResultStore) -> Result<(), String> {
    let rows = main_rows_cached(ctx, &single_point(points)?.setup, store)?;
    let mut table = Vec::new();
    let mut ratios = Vec::new();
    for bench in bench_order() {
        let gto_epi = metric(&rows, &bench, "GTO", |r| r.energy / r.ipc);
        let poise_epi = metric(&rows, &bench, "Poise", |r| r.energy / r.ipc);
        let v = poise_epi / gto_epi;
        ratios.push(v);
        table.push(vec![bench, "1.000".to_string(), cell(v, 3)]);
    }
    table.push(vec![
        "H-Mean".to_string(),
        "1.000".to_string(),
        cell(harmonic_mean(&ratios), 3),
    ]);
    emit_table(
        "fig14_energy.txt",
        "Fig. 14 — energy consumption normalised to GTO (per unit work)",
        &["bench", "GTO", "Poise"],
        &table,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// §VII-B — offline prediction error.
// ---------------------------------------------------------------------------

fn prediction_error_specs(setup: &Setup) -> Vec<SampleSpec> {
    evaluation_suite()
        .iter()
        .flat_map(|b| b.capped(2).kernels)
        .map(|kernel| SampleSpec {
            workload: kernel,
            cfg: setup.cfg.clone(),
            grid: setup.eval_grid.clone(),
            window: setup.profile_window,
            scoring: setup.params.scoring,
        })
        .collect()
}

fn jobs_prediction_error(ctx: &FigCtx, setup: &Setup) -> Vec<SimJob> {
    let mut jobs: Vec<SimJob> = prediction_error_specs(setup)
        .into_iter()
        .map(SimJob::Sample)
        .collect();
    jobs.push(SimJob::Train(ctx.model.clone()));
    jobs
}

fn render_prediction_error(
    ctx: &FigCtx,
    points: &[SweepPoint],
    store: &ResultStore,
) -> Result<(), String> {
    let setup = &single_point(points)?.setup;
    let model = store.model(&ctx.model)?;
    let mut samples: Vec<TrainingSample> = Vec::new();
    for spec in prediction_error_specs(setup) {
        samples.push(store.sample(&spec)?.clone());
    }
    let (en, ep) = model.prediction_error(&samples);
    let rows = vec![
        vec!["N".to_string(), format!("{:.1}%", en * 100.0)],
        vec!["p".to_string(), format!("{:.1}%", ep * 100.0)],
        vec!["kernels".to_string(), samples.len().to_string()],
    ];
    emit_table(
        "prediction_error.txt",
        "SVII-B — offline mean relative prediction error on unseen kernels",
        &["output", "error"],
        &rows,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 16 — memory-insensitive applications.
// ---------------------------------------------------------------------------

fn jobs_fig16(ctx: &FigCtx, setup: &Setup) -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for bench in compute_insensitive_suite() {
        jobs.extend(scheme_jobs(&bench, Scheme::Gto, setup, None));
        jobs.extend(scheme_jobs(&bench, Scheme::Poise, setup, Some(&ctx.model)));
        jobs.push(SimJob::Pbest(PbestSpec {
            workload: bench.kernels[0].clone(),
            cfg: setup.cfg.clone(),
            window: ProfileWindow::pbest(),
        }));
    }
    jobs
}

fn render_fig16(ctx: &FigCtx, points: &[SweepPoint], store: &ResultStore) -> Result<(), String> {
    let setup = &single_point(points)?.setup;
    let mut table = Vec::new();
    let mut ratios = Vec::new();
    for bench in compute_insensitive_suite() {
        let gto = scheme_result(store, &bench, Scheme::Gto, setup, None)?;
        let poise = scheme_result(store, &bench, Scheme::Poise, setup, Some(&ctx.model))?;
        let pb = store.pbest(&PbestSpec {
            workload: bench.kernels[0].clone(),
            cfg: setup.cfg.clone(),
            window: ProfileWindow::pbest(),
        })?;
        let v = poise.ipc / gto.ipc;
        ratios.push(v);
        table.push(vec![bench.name.clone(), cell(v, 3), format!("{pb:.2}x")]);
    }
    table.push(vec![
        "H-Mean".to_string(),
        cell(harmonic_mean(&ratios), 3),
        String::new(),
    ]);
    emit_table(
        "fig16_insensitive.txt",
        "Fig. 16 — Poise IPC vs GTO on compute-insensitive applications",
        &["bench", "Poise/GTO", "Pbest"],
        &table,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// trace_eval — every scheme over the committed trace workloads.
// ---------------------------------------------------------------------------

/// All seven schemes, in the order `trace_eval` reports them.
const TRACE_EVAL_SCHEMES: [Scheme; 7] = [
    Scheme::Gto,
    Scheme::Swl,
    Scheme::PcalSwl,
    Scheme::Poise,
    Scheme::StaticBest,
    Scheme::RandomRestart,
    Scheme::Apcm,
];

/// Load every `*.trace` file under [`crate::traces_dir`], sorted by file
/// name for a deterministic job order. Returns the loadable workloads
/// plus one message per unreadable/corrupt file; the caller surfaces
/// those as a `trace_eval` failure. Called once per [`FigCtx`]; figures
/// read the cached `ctx.traces`.
fn load_trace_workloads() -> (Vec<Workload>, Vec<String>) {
    let dir = crate::traces_dir();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        // No traces directory at all is a valid (trace-less) checkout.
        return (Vec::new(), Vec::new());
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "trace"))
        .collect();
    paths.sort();
    let mut traces = Vec::new();
    let mut errors = Vec::new();
    for p in paths {
        match TraceRef::load(&p) {
            Ok(t) => traces.push(Workload::from(t)),
            Err(e) => errors.push(format!("{}: {e}", p.display())),
        }
    }
    (traces, errors)
}

fn jobs_trace_eval(ctx: &FigCtx, setup: &Setup) -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for workload in &ctx.traces {
        for scheme in TRACE_EVAL_SCHEMES {
            let model = (scheme == Scheme::Poise).then_some(&ctx.model);
            jobs.push(SimJob::Run(KernelRunSpec::new(
                workload, scheme, setup, model,
            )));
        }
    }
    jobs
}

fn render_trace_eval(
    ctx: &FigCtx,
    points: &[SweepPoint],
    store: &ResultStore,
) -> Result<(), String> {
    let setup = &single_point(points)?.setup;
    if !ctx.trace_errors.is_empty() {
        return Err(format!(
            "unreadable trace file(s): {}",
            ctx.trace_errors.join("; ")
        ));
    }
    let workloads = &ctx.traces;
    let mut table = Vec::new();
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); TRACE_EVAL_SCHEMES.len()];
    for workload in workloads {
        let run_of = |scheme: Scheme| -> Result<poise::experiment::KernelRun, String> {
            let model = (scheme == Scheme::Poise).then_some(&ctx.model);
            store
                .run(&KernelRunSpec::new(workload, scheme, setup, model))
                .cloned()
        };
        let gto = run_of(Scheme::Gto)?;
        let gto_ipc = gto.counters.ipc().max(1e-12);
        let mut row = vec![
            workload.name().to_string(),
            workload.trace().expect("trace workload").digest[..12].to_string(),
        ];
        for (si, &scheme) in TRACE_EVAL_SCHEMES.iter().enumerate() {
            let r = run_of(scheme)?;
            let v = r.counters.ipc() / gto_ipc;
            per_scheme[si].push(v);
            row.push(cell(v, 3));
        }
        row.push(cell(100.0 * gto.counters.l1_hit_rate(), 1));
        table.push(row);
    }
    if workloads.is_empty() {
        table.push(vec![format!(
            "(no .trace files under {}; run record_traces)",
            crate::traces_dir().display()
        )]);
    } else {
        let mut hmean = vec!["H-Mean".to_string(), String::new()];
        for sp in &per_scheme {
            hmean.push(cell(harmonic_mean(sp), 3));
        }
        hmean.push(String::new());
        table.push(hmean);
    }
    emit_table(
        "trace_eval.txt",
        "trace_eval — all schemes over the recorded traces (IPC vs GTO; \
         GTO L1 hit % absolute)",
        &[
            "trace",
            "digest",
            "GTO",
            "SWL",
            "PCAL-SWL",
            "Poise",
            "Static-Best",
            "Rand-restart",
            "APCM",
            "GTO-hit%",
        ],
        &table,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 15 — APCM and random-restart alternatives.
// ---------------------------------------------------------------------------

fn jobs_fig15(ctx: &FigCtx, setup: &Setup) -> Vec<SimJob> {
    let mut jobs = jobs_main_comparison(ctx, setup);
    for bench in evaluation_suite() {
        for scheme in [Scheme::Apcm, Scheme::RandomRestart] {
            jobs.extend(scheme_jobs(&bench, scheme, setup, None));
        }
    }
    jobs
}

fn render_fig15(ctx: &FigCtx, points: &[SweepPoint], store: &ResultStore) -> Result<(), String> {
    let setup = &single_point(points)?.setup;
    let cached = main_rows_cached(ctx, setup, store)?;
    let schemes = [Scheme::Apcm, Scheme::RandomRestart];
    let mut table = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for bench in evaluation_suite() {
        let gto = metric(&cached, &bench.name, "GTO", |r| r.ipc);
        let poise = metric(&cached, &bench.name, "Poise", |r| r.ipc) / gto;
        let mut row = vec![bench.name.clone()];
        for (i, &scheme) in schemes.iter().enumerate() {
            let r = scheme_result(store, &bench, scheme, setup, None)?;
            let v = r.ipc / gto;
            cols[i].push(v);
            row.push(cell(v, 3));
        }
        cols[2].push(poise);
        row.push(cell(poise, 3));
        table.push(row);
    }
    let mut hmean = vec!["H-Mean".to_string()];
    for c in &cols {
        hmean.push(cell(harmonic_mean(c), 3));
    }
    table.push(hmean);
    emit_table(
        "fig15_alternatives.txt",
        "Fig. 15 — APCM and random-restart vs Poise (IPC normalised to GTO)",
        &["bench", "APCM", "Random-restart", "Poise"],
        &table,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 17 — bfs case study.
// ---------------------------------------------------------------------------

fn fig17_specs(ctx: &FigCtx, setup: &Setup) -> (ProfileSpec, KernelRunSpec) {
    let bench = evaluation_suite()
        .into_iter()
        .find(|b| b.name == "bfs")
        .expect("bfs");
    let kernel = bench.kernels[0].clone();
    let profile = ProfileSpec {
        workload: kernel.clone(),
        cfg: setup.cfg.clone(),
        grid: GridSpec::full(kernel.warps_per_scheduler()),
        window: setup.profile_window,
    };
    let mut run = KernelRunSpec::new(&kernel, Scheme::Poise, setup, Some(&ctx.model));
    run.run_cycles = setup.run_cycles.max(3 * setup.params.t_period);
    (profile, run)
}

fn jobs_fig17(ctx: &FigCtx, setup: &Setup) -> Vec<SimJob> {
    let (profile, run) = fig17_specs(ctx, setup);
    vec![SimJob::Profile(profile), SimJob::Run(run)]
}

fn render_fig17(ctx: &FigCtx, points: &[SweepPoint], store: &ResultStore) -> Result<(), String> {
    let (profile_spec, run_spec) = fig17_specs(ctx, &single_point(points)?.setup);
    let grid = store.grid(&profile_spec)?;
    println!(
        "# Fig. 17a — static profile of {}",
        profile_spec.workload.name()
    );
    print!("{}", render_grid(grid));
    let (bt, bs) = grid.best_performance().ok_or("unprofiled")?;
    println!("best tuple: {bt} -> {bs:.3}\n");

    let run = store.run(&run_spec)?;
    println!("# Fig. 17b — Poise predictions and searched tuples");
    let mut rows = Vec::new();
    for l in &run.epoch_logs {
        rows.push(vec![
            l.cycle.to_string(),
            format!("{}", l.predicted),
            format!("{}", l.searched),
            grid.get(l.searched.n, l.searched.p)
                .map_or("-".into(), |v| cell(v, 3)),
            if l.early_out { "early-out" } else { "" }.to_string(),
        ]);
    }
    emit_table(
        "fig17_case_study.txt",
        "Fig. 17b — Poise epochs on bfs (speedup looked up in the static profile)",
        &["cycle", "predicted", "searched", "profile speedup", "note"],
        &rows,
    );
    std::fs::write(
        results_dir().join("fig17_grid.txt"),
        format!("{}best {bt} ({bs:.3})\n", render_grid(grid)),
    )
    .map_err(|e| format!("write fig17_grid.txt: {e}"))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 11 — search-stride sensitivity.
// ---------------------------------------------------------------------------

const FIG11_STRIDES: [(usize, usize); 5] = [(0, 0), (1, 1), (2, 2), (2, 4), (4, 4)];

fn fig11_setup(setup: &Setup, sn: usize, sp: usize) -> Setup {
    let mut s = setup.clone();
    s.params = s.params.with_strides(sn, sp);
    s
}

fn jobs_fig11(ctx: &FigCtx, setup: &Setup) -> Vec<SimJob> {
    // The GTO baselines come from the main comparison; the (2, 4) stride
    // equals the Table IV default, so those Poise runs deduplicate with
    // the main comparison as well.
    let mut jobs = jobs_main_comparison(ctx, setup);
    for bench in evaluation_suite() {
        for (sn, sp) in FIG11_STRIDES {
            let s = fig11_setup(setup, sn, sp);
            jobs.extend(scheme_jobs(&bench, Scheme::Poise, &s, Some(&ctx.model)));
        }
    }
    jobs
}

fn render_fig11(ctx: &FigCtx, points: &[SweepPoint], store: &ResultStore) -> Result<(), String> {
    let setup = &single_point(points)?.setup;
    let rows_cache = main_rows_cached(ctx, setup, store)?;
    let mut table = Vec::new();
    let mut per_stride: Vec<Vec<f64>> = vec![Vec::new(); FIG11_STRIDES.len()];
    for bench in evaluation_suite() {
        let gto = metric(&rows_cache, &bench.name, "GTO", |r| r.ipc);
        let mut row = vec![bench.name.clone()];
        for (si, (sn, sp)) in FIG11_STRIDES.into_iter().enumerate() {
            let s = fig11_setup(setup, sn, sp);
            let r = scheme_result(store, &bench, Scheme::Poise, &s, Some(&ctx.model))?;
            let v = r.ipc / gto;
            per_stride[si].push(v);
            row.push(cell(v, 3));
        }
        table.push(row);
    }
    let mut hmean = vec!["H-Mean".to_string()];
    for sp in &per_stride {
        hmean.push(cell(harmonic_mean(sp), 3));
    }
    table.push(hmean);
    emit_table(
        "fig11_stride.txt",
        "Fig. 11 — Poise IPC vs GTO for search strides (eN, ep)",
        &["bench", "(0,0)", "(1,1)", "(2,2)", "(2,4)", "(4,4)"],
        &table,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 12 — cache-size sensitivity.
// ---------------------------------------------------------------------------

/// Fig. 12 is a *plan*: linear indexing pinned by a one-value axis, L1
/// capacity swept by `l1_scale`. The model stays the one trained on the
/// base machine (`ctx.model`), so an L1 sweep re-simulates runs only —
/// the training pass is shared by every point.
const FIG12_SCALES: [usize; 3] = [1, 2, 4];

fn axes_fig12(_ctx: &FigCtx) -> Vec<Axis> {
    vec![
        Axis::l1_indexing([SetIndexing::Linear]),
        Axis::l1_scale(FIG12_SCALES),
    ]
}

fn jobs_fig12(ctx: &FigCtx, setup: &Setup) -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for bench in evaluation_suite() {
        jobs.extend(scheme_jobs(&bench, Scheme::Gto, setup, None));
        jobs.extend(scheme_jobs(&bench, Scheme::Poise, setup, Some(&ctx.model)));
    }
    jobs
}

fn render_fig12(ctx: &FigCtx, points: &[SweepPoint], store: &ResultStore) -> Result<(), String> {
    let mut table = Vec::new();
    let mut per_scale: Vec<Vec<f64>> = vec![Vec::new(); points.len()];
    for bench in evaluation_suite() {
        let mut row = vec![bench.name.clone()];
        for (si, point) in points.iter().enumerate() {
            // A failed point degrades to a MISSING cell (and poisons
            // this scale's H-Mean to MISSING) instead of failing the
            // figure.
            let v = match (
                scheme_result(store, &bench, Scheme::Gto, &point.setup, None),
                scheme_result(store, &bench, Scheme::Poise, &point.setup, Some(&ctx.model)),
            ) {
                (Ok(gto), Ok(poise)) => poise.ipc / gto.ipc,
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!(
                        "[bench] fig12 {} @ point {si}: {e}; rendering MISSING",
                        bench.name
                    );
                    f64::NAN
                }
            };
            per_scale[si].push(v);
            row.push(cell(v, 3));
        }
        table.push(row);
    }
    let mut hmean = vec!["H-Mean".to_string()];
    for sp in &per_scale {
        hmean.push(cell(harmonic_mean(sp), 3));
    }
    table.push(hmean);
    let kb: Vec<String> = points
        .iter()
        .map(|p| format!("{}", p.setup.cfg.l1.capacity_bytes() / 1024))
        .collect();
    let header: Vec<String> = std::iter::once("bench".to_string())
        .chain(kb.iter().map(|k| format!("Poise+{k}KB")))
        .collect();
    emit_table(
        "fig12_cache_size.txt",
        &format!(
            "Fig. 12 — Poise IPC vs GTO with linear-indexed L1 of {} KB",
            kb.join("/")
        ),
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
        &table,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 13 — leave-one-feature-out ablation.
// ---------------------------------------------------------------------------

fn fig13_setup(setup: &Setup) -> Setup {
    // No local search: strides (0, 0), so prediction accuracy is exposed.
    let mut s = setup.clone();
    s.params = s.params.with_strides(0, 0);
    s
}

/// The model variants: all features, then drop x3..x7 (drop index i − 1).
fn fig13_variants(ctx: &FigCtx) -> Vec<(String, ModelSpec)> {
    std::iter::once(("all".to_string(), Vec::new()))
        .chain((3..=7).rev().map(|i| (format!("-x{i}"), vec![i - 1])))
        .map(|(name, drop)| (name, ctx.model.clone().with_dropped(drop)))
        .collect()
}

fn jobs_fig13(ctx: &FigCtx, setup: &Setup) -> Vec<SimJob> {
    let s = fig13_setup(setup);
    let mut jobs = Vec::new();
    for (_, model) in fig13_variants(ctx) {
        jobs.push(SimJob::Train(model.clone()));
        for bench in evaluation_suite() {
            jobs.extend(scheme_jobs(&bench, Scheme::Poise, &s, Some(&model)));
        }
    }
    jobs
}

fn render_fig13(ctx: &FigCtx, points: &[SweepPoint], store: &ResultStore) -> Result<(), String> {
    let s = fig13_setup(&single_point(points)?.setup);
    let variants = fig13_variants(ctx);
    let mut table = Vec::new();
    let mut per_variant: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for bench in evaluation_suite() {
        let mut ipcs = Vec::new();
        for (_, model) in &variants {
            let r = scheme_result(store, &bench, Scheme::Poise, &s, Some(model))?;
            ipcs.push(r.ipc);
        }
        let all = ipcs[0];
        let mut row = vec![bench.name.clone()];
        for (vi, ipc) in ipcs.iter().enumerate() {
            let v = ipc / all;
            per_variant[vi].push(v);
            row.push(cell(v, 3));
        }
        table.push(row);
    }
    let mut hmean = vec!["H-Mean".to_string()];
    for pv in &per_variant {
        hmean.push(cell(harmonic_mean(pv), 3));
    }
    table.push(hmean);
    let header: Vec<&str> = std::iter::once("bench")
        .chain(variants.iter().map(|(n, _)| n.as_str()))
        .collect();
    emit_table(
        "fig13_feature_ablation.txt",
        "Fig. 13 — IPC normalised to the all-features model (no local search)",
        &header,
        &table,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Ablation — MSHR count sweep.
// ---------------------------------------------------------------------------

const MSHR_SWEEP: [usize; 5] = [4, 8, 16, 32, 64];

fn ablation_mshr_specs(setup: &Setup) -> Vec<(usize, KernelRunSpec)> {
    let bench = evaluation_suite()
        .into_iter()
        .find(|b| b.name == "ii")
        .expect("ii");
    let kernel = bench.kernels[0].clone();
    MSHR_SWEEP
        .into_iter()
        .map(|mshrs| {
            let mut s = setup.clone();
            s.cfg.l1_mshrs = mshrs;
            s.run_cycles = 60_000;
            (mshrs, KernelRunSpec::new(&kernel, Scheme::Gto, &s, None))
        })
        .collect()
}

fn jobs_ablation_mshr(_ctx: &FigCtx, setup: &Setup) -> Vec<SimJob> {
    ablation_mshr_specs(setup)
        .into_iter()
        .map(|(_, spec)| SimJob::Run(spec))
        .collect()
}

fn render_ablation_mshr(
    _ctx: &FigCtx,
    points: &[SweepPoint],
    store: &ResultStore,
) -> Result<(), String> {
    let setup = &single_point(points)?.setup;
    let mut rows = Vec::new();
    for (mshrs, spec) in ablation_mshr_specs(setup) {
        let c = store.run(&spec)?.counters;
        rows.push(vec![
            mshrs.to_string(),
            cell(c.ipc(), 3),
            cell(c.aml(), 0),
            c.l1_rejects.to_string(),
        ]);
    }
    emit_table(
        "ablation_mshr.txt",
        "Ablation — MSHR count at the GTO baseline (ii), Eq. 1's MLP term",
        &["Kmshr", "IPC", "AML", "rejects"],
        &rows,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Ablation — inference-epoch sensitivity.
// ---------------------------------------------------------------------------

const EPOCH_SWEEP: [u64; 4] = [50_000, 100_000, 200_000, 400_000];

fn ablation_epoch_benches() -> Vec<Benchmark> {
    evaluation_suite()
        .into_iter()
        .filter(|b| b.name == "ii" || b.name == "gsmv")
        .collect()
}

fn ablation_epoch_setup(setup: &Setup, t: u64) -> Setup {
    let mut s = setup.clone();
    s.params.t_period = t;
    // Two epochs at every setting for a fair sampling share.
    s.run_cycles = 2 * t;
    s
}

fn jobs_ablation_epoch(ctx: &FigCtx, setup: &Setup) -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for bench in ablation_epoch_benches() {
        jobs.extend(scheme_jobs(&bench, Scheme::Gto, setup, None));
        for t in EPOCH_SWEEP {
            let s = ablation_epoch_setup(setup, t);
            jobs.extend(scheme_jobs(&bench, Scheme::Poise, &s, Some(&ctx.model)));
        }
    }
    jobs
}

fn render_ablation_epoch(
    ctx: &FigCtx,
    points: &[SweepPoint],
    store: &ResultStore,
) -> Result<(), String> {
    let setup = &single_point(points)?.setup;
    let mut rows = Vec::new();
    for bench in ablation_epoch_benches() {
        let gto = scheme_result(store, &bench, Scheme::Gto, setup, None)?;
        let mut row = vec![bench.name.clone()];
        for t in EPOCH_SWEEP {
            let s = ablation_epoch_setup(setup, t);
            let r = scheme_result(store, &bench, Scheme::Poise, &s, Some(&ctx.model))?;
            row.push(cell(r.ipc / gto.ipc, 3));
        }
        rows.push(row);
    }
    emit_table(
        "ablation_epoch.txt",
        "Ablation — Poise IPC vs GTO across inference epoch lengths",
        &["bench", "50k", "100k", "200k", "400k"],
        &rows,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// sm_scaling — every scheme across machine sizes (a sweep figure).
// ---------------------------------------------------------------------------

/// The default SM ladder: powers of two from 1 up to the base machine.
/// With the paper machine (`--set sms=32`) this is 1→32 SMs; smaller
/// base machines (CI smoke) get proportionally shorter sweeps. Override
/// with `run_all --sweep sms=...`.
fn axes_sm_scaling(ctx: &FigCtx) -> Vec<Axis> {
    let max = ctx.setup.cfg.sms;
    let mut ladder = Vec::new();
    let mut s = 1;
    while s < max {
        ladder.push(s);
        s *= 2;
    }
    ladder.push(max);
    vec![Axis::sms(ladder)]
}

/// One kernel per evaluation benchmark keeps the 7-scheme × machine-size
/// product tractable.
fn sm_scaling_benches() -> Vec<Benchmark> {
    evaluation_suite()
        .into_iter()
        .map(|b| b.capped(1))
        .collect()
}

fn jobs_sm_scaling(ctx: &FigCtx, setup: &Setup) -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for bench in sm_scaling_benches() {
        for scheme in TRACE_EVAL_SCHEMES {
            let model = (scheme == Scheme::Poise).then_some(&ctx.model);
            jobs.extend(scheme_jobs(&bench, scheme, setup, model));
        }
    }
    jobs
}

fn render_sm_scaling(
    ctx: &FigCtx,
    points: &[SweepPoint],
    store: &ResultStore,
) -> Result<(), String> {
    let mut table = Vec::new();
    for point in points {
        let setup = &point.setup;
        // GTO first: the normalisation base at this machine size.
        let mut gto_ipc = f64::NAN;
        for &scheme in &TRACE_EVAL_SCHEMES {
            let model = (scheme == Scheme::Poise).then_some(&ctx.model);
            // Aggregate this scheme's runs; a failed job degrades the
            // whole (scheme, size) cell to MISSING rather than failing
            // the figure. A missing GTO leaves gto_ipc NaN, so the
            // "vs GTO" column of the other schemes goes MISSING too.
            let aggregate = || -> Result<(u64, u64, f64), String> {
                let (mut cycles, mut instructions, mut wall) = (0u64, 0u64, 0.0f64);
                for bench in sm_scaling_benches() {
                    for k in &bench.capped(setup.kernels_cap).kernels {
                        let spec = KernelRunSpec::new(k, scheme, setup, model);
                        let job = SimJob::Run(spec.clone());
                        let run = store.run(&spec)?;
                        cycles += run.counters.cycles;
                        instructions += run.counters.instructions;
                        wall += store.wall(&job).unwrap_or(0.0);
                    }
                }
                Ok((cycles, instructions, wall))
            };
            let (ipc, thr) = match aggregate() {
                Ok((cycles, instructions, wall)) => {
                    let ipc = instructions as f64 / cycles.max(1) as f64;
                    // Simulation throughput: simulated cycles per
                    // wall-second of the runs that produced these
                    // results (recorded in the cache entries, so warm
                    // renders match the cold pass).
                    let thr = if wall > 0.0 {
                        cell(cycles as f64 / wall / 1.0e6, 2)
                    } else {
                        "-".to_string()
                    };
                    (ipc, thr)
                }
                Err(e) => {
                    eprintln!(
                        "[bench] sm_scaling {} SMs × {}: {e}; rendering MISSING",
                        setup.cfg.sms,
                        scheme.name()
                    );
                    (f64::NAN, "-".to_string())
                }
            };
            if scheme == Scheme::Gto {
                gto_ipc = ipc;
            }
            table.push(vec![
                setup.cfg.sms.to_string(),
                scheme.name().to_string(),
                cell(ipc, 3),
                cell(ipc / gto_ipc, 3),
                thr,
                // Engine context for the throughput column: how many
                // threads stepped the SMs of the runs that recorded
                // these walls. Results (IPC, vs GTO) are bit-identical
                // across thread counts, so only `sim Mcyc/s` varies.
                setup.cfg.sim_threads.to_string(),
            ]);
        }
    }
    emit_table(
        "sm_scaling.txt",
        "sm_scaling — all schemes across machine sizes (aggregate IPC over one \
         kernel per evaluation benchmark; sim-throughput from recorded execution walls)",
        &[
            "sms",
            "scheme",
            "IPC",
            "vs GTO",
            "sim Mcyc/s",
            "sim_threads",
        ],
        &table,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Run a single figure end to end (the per-figure binary shims call
/// this): expand its plan, execute the jobs — answered from the shared
/// cache when warm — then render.
pub fn figure_main(name: &str) -> ExitCode {
    let registry = registry();
    let Some(figure) = registry.iter().find(|f| f.name == name) else {
        eprintln!("[bench] unknown figure {name:?}");
        return ExitCode::FAILURE;
    };
    let ctx = match FigCtx::from_env() {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("[bench] {e}");
            return ExitCode::FAILURE;
        }
    };
    let engine = Engine::from_env(&results_dir());
    let exp = figure.expand(&ctx, &[]);
    if exp.points.len() > 1 {
        eprintln!(
            "[bench] {name}: {} sweep points, {} jobs shared across points (executed once)",
            exp.points.len(),
            exp.shared
        );
    }
    let (store, report) = engine.run(&exp.jobs);
    if let Err(e) = (figure.render)(&ctx, &exp.points, &store) {
        eprintln!("[bench] {name} FAILED: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("[bench] {name} done ({})", report.summary_line());
    ExitCode::SUCCESS
}

/// The `--only` filter: exact figure name or a prefix up to an
/// underscore (`fig12` matches `fig12_cache_size`).
fn name_matches(only: Option<&[String]>, name: &str) -> bool {
    only.is_none_or(|o| {
        o.iter().any(|n| {
            name == n
                || name
                    .strip_prefix(n.as_str())
                    .is_some_and(|rest| rest.starts_with('_'))
        })
    })
}

/// The fully planned job set of one `run_all`-shaped invocation: the
/// selected figures, their sweep expansions, and the concatenated
/// (prefix-factored) job list the engine executes.
pub struct PlannedJobs {
    pub figures: Vec<Figure>,
    pub expansions: Vec<PlanExpansion>,
    pub setup: Setup,
    pub jobs: Vec<SimJob>,
    pub sweeping: bool,
    pub sweep_shared: usize,
    pub prefix_shared: usize,
}

/// The one planning path shared by `run_all` and the sweep daemon's
/// planner (see [`poise::daemon::Planner`]): apply the overlay, select
/// figures, expand every plan, reject sweeps that reach single-point
/// renderers, and factor shared snapshot prefixes. Deterministic in its
/// arguments — a daemon and a client expanding the same plan must
/// derive the same job graph, or the client would re-simulate instead
/// of rendering from the daemon-warmed cache.
pub fn plan_jobs(
    base: KnobOverlay,
    sets: &[String],
    sweeps: &[String],
    only: Option<&[String]>,
    verbose: bool,
) -> Result<PlannedJobs, String> {
    let figures: Vec<Figure> = registry()
        .into_iter()
        .filter(|f| name_matches(only, f.name))
        .collect();
    if figures.is_empty() {
        return Err("no figures matched the --only filter".to_string());
    }
    let overlay = base.merged(KnobOverlay::parse(sets)?);
    let sweep_axes: Vec<Axis> = sweeps
        .iter()
        .map(|s| Axis::parse(s))
        .collect::<Result<_, _>>()?;
    if verbose && !overlay.is_empty() {
        eprintln!("[run_all] knob overlay: {}", overlay.summary());
    }
    let ctx = FigCtx::new(crate::base_setup(&overlay));
    let expansions: Vec<PlanExpansion> = figures
        .iter()
        .map(|f| f.expand(&ctx, &sweep_axes))
        .collect();
    // Reject a sweep that reaches a single-point renderer *now*, before
    // any simulation is paid for (the renderer's own single_point()
    // guard stays as defence in depth).
    let unsweepable: Vec<&str> = figures
        .iter()
        .zip(&expansions)
        .filter(|(f, e)| e.points.len() > 1 && !f.sweepable)
        .map(|(f, _)| f.name)
        .collect();
    if !unsweepable.is_empty() {
        return Err(format!(
            "--sweep expands figures that render a single point only: {}; \
             restrict with --only to sweep-aware figures (e.g. sm_scaling, fig12_cache_size)",
            unsweepable.join(", ")
        ));
    }
    let mut sweep_shared = 0usize;
    for (figure, exp) in figures.iter().zip(&expansions) {
        if exp.points.len() > 1 {
            sweep_shared += exp.shared;
            if verbose {
                eprintln!(
                    "[run_all] {}: {} sweep points, {} jobs shared across points (executed once)",
                    figure.name,
                    exp.points.len(),
                    exp.shared
                );
            }
        }
    }
    let sweeping = expansions.iter().any(|e| e.points.len() > 1);
    let mut jobs: Vec<SimJob> = expansions.iter().flat_map(|e| e.jobs.clone()).collect();
    // Prefix factoring: runs that differ only in their cycle horizon
    // collapse into one chained simulation plus per-horizon forks (a
    // `run_cycles` sweep axis is the canonical producer). This must run
    // on the shared declaration path — coordinator, fabric workers and
    // the daemon each re-derive the same factored graph, so the
    // manifest and the prefix cache keys agree across the fleet.
    let prefix_shared = poise::jobs::factor_prefixes(&mut jobs, ctx.setup.snapshot_every);
    if verbose && prefix_shared > 0 {
        eprintln!(
            "[run_all] prefix factoring: {prefix_shared} run(s) fork from shared \
             snapshot prefixes instead of simulating from cycle 0"
        );
    }
    Ok(PlannedJobs {
        figures,
        expansions,
        setup: ctx.setup,
        jobs,
        sweeping,
        sweep_shared,
        prefix_shared,
    })
}

/// The status of one figure in a `run_all` pass.
enum FigStatus {
    Pass(f64),
    Fail(String),
    Skipped,
}

/// One-command reproduction of the evaluation section: collect every
/// figure's jobs up front, execute the deduplicated set once across
/// cores, then render each figure. Flags:
///
/// * `--keep-going` — render every figure even after failures (the
///   default stops at the first failing figure, like the old harness,
///   but always prints the pass/fail summary instead of bare `exit(1)`);
/// * `--only <a,b,...>` — restrict to the named figures (exact name or a
///   prefix up to an underscore: `fig12` matches `fig12_cache_size`);
/// * `--set <knob>=<value>` (repeatable) — apply a knob to the base
///   setup (the declarative replacement for the `POISE_*` env vars);
/// * `--sweep <knob>=<v1,v2,...>` (repeatable) — sweep a knob: replaces
///   a same-knob default axis of each selected figure (e.g.
///   `sm_scaling`'s SM ladder) or extends the figure's plan. Figures
///   whose renderer cannot present multiple points fail loudly;
/// * `--list` — print the registry and exit;
/// * `--gc` — after a fully successful pass, prune `results/cache/`
///   entries the current job set no longer references (entries keyed by
///   edited-away kernel specs, old knob settings, deleted traces). The
///   content-addressed store never looks those up again, so without an
///   occasional `--gc` it grows without bound across spec edits;
/// * `--inject seed=S,rate=P[,kinds=a+b+...]` — deterministic fault
///   injection (see [`poise::faults`]): job panics, transient errors,
///   stalls, torn cache writes and bit flips, all derived from the seed
///   so a run is exactly reproducible. The robustness machinery (retry
///   with backoff, watchdog deadlines, cache quarantine) absorbs the
///   faults; surviving outputs are bit-identical to a fault-free pass;
/// * `--fsck` — offline cache re-validation: parse and checksum every
///   entry, quarantine invalid ones, remove stale temp files and
///   orphaned job leases, then exit (failure exit if anything was
///   corrupt — a second `--fsck` passes);
/// * `--workers <N>` (or `--set workers=N`) — distributed sweep: spawn
///   `N` worker processes that execute the job graph cooperatively over
///   the shared cache via crash-safe leases (see [`poise::fabric`]),
///   then run the authoritative in-process pass over the warmed store;
/// * `--worker --fabric-dir <D> [--worker-id <id>]` — run as one fabric
///   worker (what `--workers` spawns; usable standalone to grow a fleet
///   by hand). Workers execute and report but render nothing.
/// * `--set sim_threads=N` — step the SMs of each simulation on `N`
///   threads (bit-identical to single-threaded; engine knob, shares the
///   process thread budget with the fleet: each spawned worker gets
///   `POISE_THREAD_BUDGET / (workers + 1)`).
/// * `--connect [<socket>]` — submit this plan to a running sweep
///   daemon (`poised`; default socket `results/daemon.sock`) instead of
///   executing locally: the daemon coalesces it with other clients'
///   submissions, executes shared jobs once, and streams progress back;
///   the figures are then rendered locally from the shared cache.
///   `--client <name>` and `--priority <n>` tag the submission. With no
///   daemon listening, degrades to the ordinary in-process run;
/// * `--status` — show queued/running submissions from a live daemon,
///   or (headless) summarize job leases, the fabric manifest and the
///   daemon event log;
/// * `--daemon-shutdown [now]` — stop the daemon: drain the queue
///   first, or cancel everything with `now`;
/// * `--daemon-cancel <id>` — withdraw submission `<id>`; jobs shared
///   with other live submissions keep running.
///
/// Exit codes (CI and scripts key off these):
/// * `0` — clean pass;
/// * `1` — figure or job failures (hard errors: panics, exhausted
///   retries, dependency failures, render errors);
/// * `3` — every figure passed but the run needed self-healing
///   (retried-then-recovered jobs or quarantined cache corruption);
/// * `4` — failures whose job-level causes are exclusively watchdog
///   timeouts (raise `--set job_deadline=...` and retry).
///
/// A worker process's exit reflects only its local view (`0` when it saw
/// no hard job failures, `1` otherwise); the coordinator's exit is the
/// authoritative one.
pub fn run_all_main(args: &[String]) -> ExitCode {
    let keep_going = args.iter().any(|a| a == "--keep-going");
    let gc = args.iter().any(|a| a == "--gc");
    if args.iter().any(|a| a == "--fsck") {
        return fsck_main();
    }
    let worker_mode = args.iter().any(|a| a == "--worker");
    let mut fabric_dir: Option<String> = None;
    let mut worker_id: Option<String> = None;
    let mut sets: Vec<String> = Vec::new();
    let mut sweeps: Vec<String> = Vec::new();
    let mut inject: Option<String> = None;
    for (i, a) in args.iter().enumerate() {
        let value = |flag: &str| -> Result<String, String> {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .ok_or_else(|| format!("{flag} needs an argument"))
        };
        match a.as_str() {
            "--set" => match value("--set") {
                Ok(v) => sets.push(v),
                Err(e) => {
                    eprintln!("[run_all] {e}");
                    return ExitCode::FAILURE;
                }
            },
            "--sweep" => match value("--sweep") {
                Ok(v) => sweeps.push(v),
                Err(e) => {
                    eprintln!("[run_all] {e}");
                    return ExitCode::FAILURE;
                }
            },
            "--inject" => match value("--inject") {
                Ok(v) => inject = Some(v),
                Err(e) => {
                    eprintln!("[run_all] {e}");
                    return ExitCode::FAILURE;
                }
            },
            // Sugar for `--set workers=N`, through the same knob so the
            // value is validated once and recorded in the overlay.
            "--workers" => match value("--workers") {
                Ok(v) => sets.push(format!("workers={v}")),
                Err(e) => {
                    eprintln!("[run_all] {e}");
                    return ExitCode::FAILURE;
                }
            },
            "--fabric-dir" => match value("--fabric-dir") {
                Ok(v) => fabric_dir = Some(v),
                Err(e) => {
                    eprintln!("[run_all] {e}");
                    return ExitCode::FAILURE;
                }
            },
            "--worker-id" => match value("--worker-id") {
                Ok(v) => worker_id = Some(v),
                Err(e) => {
                    eprintln!("[run_all] {e}");
                    return ExitCode::FAILURE;
                }
            },
            _ => {}
        }
    }
    let faults = match inject.as_deref().map(FaultPlan::parse).transpose() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("[run_all] --inject: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Daemon client flags (see `poise::daemon` and EXPERIMENTS.md §
    // "The sweep daemon"). `--connect` takes an optional socket path;
    // the default lives beside the shared store.
    let flag_value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .filter(|v| !v.starts_with("--"))
            .cloned()
    };
    let socket: std::path::PathBuf = flag_value("--connect")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(crate::client::default_socket);
    let connect = args.iter().any(|a| a == "--connect");
    if args.iter().any(|a| a == "--status") {
        return crate::client::status_main(&socket);
    }
    if args.iter().any(|a| a == "--daemon-shutdown") {
        let now = flag_value("--daemon-shutdown").as_deref() == Some("now");
        return crate::client::shutdown_main(&socket, now);
    }
    if args.iter().any(|a| a == "--daemon-cancel") {
        return match flag_value("--daemon-cancel") {
            Some(id) => crate::client::cancel_main(&socket, &id),
            None => {
                eprintln!("[run_all] --daemon-cancel needs a submission id");
                ExitCode::FAILURE
            }
        };
    }
    let only: Option<Vec<String>> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect());
    if args.iter().any(|a| a == "--list") {
        for f in registry() {
            if name_matches(only.as_deref(), f.name) {
                println!("{}", f.name);
            }
        }
        return ExitCode::SUCCESS;
    }

    // The knob overlay: deprecated env aliases first, then --set
    // assignments (CLI wins). Parsed exactly once, on the planning path
    // shared with the daemon's planner.
    let env = match crate::env_overlay() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("[run_all] {e}");
            return ExitCode::FAILURE;
        }
    };
    let t0 = Instant::now();
    let planned = match plan_jobs(env, &sets, &sweeps, only.as_deref(), true) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("[run_all] {e}");
            return ExitCode::FAILURE;
        }
    };
    let ctx = FigCtx::new(planned.setup.clone());
    let PlannedJobs {
        figures,
        expansions,
        jobs,
        sweeping,
        sweep_shared,
        prefix_shared,
        ..
    } = planned;
    let mut engine = Engine::from_env(&results_dir());
    // The `job_deadline` knob is an engine (watchdog) setting, not part
    // of any job's cache identity — lift it off the setup here.
    engine.deadline = ctx.setup.job_deadline;
    if let Some(plan) = faults {
        eprintln!("[run_all] fault injection: {}", plan.summary());
        if plan.can_stall() && engine.deadline.is_none() {
            // Stalls never finish on their own; without a watchdog
            // deadline the run would wedge. Pick a generous default.
            engine.deadline = Some(10.0);
            eprintln!("[run_all] stall faults without --set job_deadline=...; defaulting to 10s");
        }
        engine.set_faults(Some(plan));
    }

    // Fabric worker mode: execute cooperatively over the shared cache,
    // publish a report, render nothing (the coordinator renders).
    if worker_mode {
        let dir = fabric_dir
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| results_dir().join("fabric"));
        let id = worker_id.unwrap_or_else(|| format!("w{}", std::process::id()));
        return worker_main(&engine, &jobs, &ctx.setup, &dir, &id);
    }

    // Daemon mode: hand the plan to a running `poised`, stream its
    // progress, then fall through to the in-process pass — by then
    // every job answers from the shared cache, so the figures rendered
    // below are byte-identical to a standalone run's. An unreachable or
    // rejecting daemon degrades to the ordinary in-process run.
    let mut daemon_ran = false;
    if connect {
        let req = poise::daemon::SubmitRequest {
            client: flag_value("--client")
                .or_else(|| std::env::var("USER").ok())
                .unwrap_or_else(|| "anon".to_string()),
            priority: flag_value("--priority")
                .and_then(|p| p.parse().ok())
                .unwrap_or(0),
            set: sets.clone(),
            sweep: sweeps.clone(),
            only: only.clone(),
        };
        match crate::client::submit_and_stream(&socket, &req) {
            Ok(out) => {
                eprintln!(
                    "[run_all] daemon submission {} finished: {} ({} executed, {} cache \
                     hit(s), {} failed); rendering from the shared store",
                    out.id, out.outcome, out.executed, out.cache_hits, out.failed
                );
                daemon_ran = true;
            }
            Err(e) => eprintln!("[run_all] {e}; degrading to the in-process run"),
        }
    }

    eprintln!(
        "[run_all] {} figures declared {} jobs; executing the deduplicated set...",
        figures.len(),
        jobs.len()
    );
    let (store, report) = if ctx.setup.workers > 0 && !daemon_ran {
        run_fleet(&engine, &jobs, &ctx.setup, args)
    } else {
        engine.run(&jobs)
    };

    // Phase 2: render in order.
    let mut statuses: Vec<(&str, FigStatus)> = Vec::new();
    let mut stop = false;
    for (figure, exp) in figures.iter().zip(&expansions) {
        if stop {
            statuses.push((figure.name, FigStatus::Skipped));
            continue;
        }
        println!("\n===== {} =====", figure.name);
        let ft = Instant::now();
        match (figure.render)(&ctx, &exp.points, &store) {
            Ok(()) => statuses.push((figure.name, FigStatus::Pass(ft.elapsed().as_secs_f64()))),
            Err(e) => {
                eprintln!("[run_all] {} FAILED: {e}", figure.name);
                statuses.push((figure.name, FigStatus::Fail(e)));
                if !keep_going {
                    stop = true;
                }
            }
        }
    }

    // The structured failures report: every troubled job's attempt
    // history plus cache-corruption events. Written on every pass (a
    // clean one records that, too) so CI can upload it unconditionally.
    let failures_path = results_dir().join("run_all_failures.txt");
    if let Err(e) = std::fs::write(&failures_path, failures_report(&engine, &report)) {
        eprintln!("[run_all] could not write {}: {e}", failures_path.display());
    }
    // The machine-readable twin: one JSON object per troubled job with
    // worker id, spec key, failure class and per-attempt timings, so
    // chaos tests and CI assert on fields instead of scraping prose.
    let jsonl_path = results_dir().join("run_all_failures.jsonl");
    let jsonl: String = report
        .trouble
        .iter()
        .map(|t| poise::fabric::trouble_json(t).render() + "\n")
        .collect();
    if let Err(e) = std::fs::write(&jsonl_path, jsonl) {
        eprintln!("[run_all] could not write {}: {e}", jsonl_path.display());
    }
    if !report.trouble.is_empty() || report.corrupt > 0 {
        eprintln!("[run_all] failure details in {}", failures_path.display());
    }

    // Phase 3: the summary table (printed and persisted).
    let failed = statuses
        .iter()
        .filter(|(_, s)| matches!(s, FigStatus::Fail(_)))
        .count();
    let rows: Vec<Vec<String>> = statuses
        .iter()
        .map(|(name, status)| {
            let (st, detail) = match status {
                FigStatus::Pass(secs) => ("pass".to_string(), format!("{secs:.2}s")),
                FigStatus::Fail(e) => ("FAIL".to_string(), e.clone()),
                FigStatus::Skipped => ("skipped".to_string(), "after earlier failure".into()),
            };
            vec![name.to_string(), st, detail]
        })
        .collect();
    println!();
    // Only a sweeping run carries the shared-job statistic, keeping the
    // default (single-point) summary line unchanged; likewise the
    // prefix-factoring statistic only appears when factoring fired.
    let mut sweep_note = if sweeping {
        format!(" sweep_shared={sweep_shared};")
    } else {
        String::new()
    };
    if prefix_shared > 0 {
        sweep_note.push_str(&format!(" prefix_shared={prefix_shared};"));
    }
    emit_table(
        "run_all_summary.txt",
        &format!(
            "run_all summary — {}/{} figures pass; engine: {};{sweep_note} total wall {:.1}s",
            statuses.len()
                - failed
                - statuses
                    .iter()
                    .filter(|(_, s)| matches!(s, FigStatus::Skipped))
                    .count(),
            statuses.len(),
            report.summary_line(),
            t0.elapsed().as_secs_f64()
        ),
        &["figure", "status", "detail"],
        &rows,
    );

    // Phase 4 (opt-in): garbage-collect cache entries the current job
    // set no longer references. Only when every requested figure ran —
    // a failed/skipped figure's entries must survive for the retry —
    // and never under --only, which would see a partial job set.
    if gc {
        let all_ran = statuses
            .iter()
            .all(|(_, s)| matches!(s, FigStatus::Pass(_)));
        if only.is_some() {
            eprintln!("[run_all] --gc ignored under --only (partial job set)");
        } else if !all_ran {
            eprintln!("[run_all] --gc skipped: not every figure completed");
        } else {
            match engine.cache().prune_untouched() {
                Ok((removed, kept)) => {
                    eprintln!("[run_all] cache gc: removed {removed} stale entries, kept {kept}")
                }
                Err(e) => eprintln!("[run_all] cache gc failed: {e}"),
            }
        }
    }

    // Exit-code mapping (documented on `run_all_main`): clean 0; hard
    // failures 1; timeout-only failures 4; pass-after-self-healing 3.
    let job_failures = report.failed.len();
    if failed > 0 || job_failures > 0 {
        if failed > 0 {
            eprintln!("[run_all] {failed} figure(s) failed");
        }
        if job_failures > 0 {
            eprintln!(
                "[run_all] {job_failures} job(s) failed, {} timed out (see {})",
                report.timed_out,
                failures_path.display()
            );
        }
        if job_failures > 0 && report.timed_out == job_failures {
            ExitCode::from(4)
        } else {
            ExitCode::FAILURE
        }
    } else if report.recovered > 0 || report.corrupt > 0 {
        println!(
            "\n[run_all] all experiments complete in {:.0}s; outputs in results/ \
             (self-healed: {} recovered job(s), {} corrupt cache entries quarantined)",
            t0.elapsed().as_secs_f64(),
            report.recovered,
            report.corrupt
        );
        ExitCode::from(3)
    } else {
        println!(
            "\n[run_all] all experiments complete in {:.0}s; outputs in results/",
            t0.elapsed().as_secs_f64()
        );
        ExitCode::SUCCESS
    }
}

/// `run_all --worker`: one fabric worker process (see [`poise::fabric`]).
/// Verifies its job-graph expansion against the coordinator's manifest
/// (publishing one first when run standalone), drains the graph
/// cooperatively, and publishes its report. Renders nothing.
fn worker_main(
    engine: &Engine,
    jobs: &[SimJob],
    setup: &Setup,
    fabric_dir: &std::path::Path,
    worker_id: &str,
) -> ExitCode {
    use poise::fabric;
    if fabric::verify_manifest(fabric_dir, jobs).is_err() {
        // Standalone worker (no coordinator): publish the manifest for
        // later-joining peers, then re-verify — a real skew (peers
        // expanding a different graph) still fails loudly.
        let _ = fabric::write_manifest(fabric_dir, jobs);
        if let Err(e) = fabric::verify_manifest(fabric_dir, jobs) {
            eprintln!("[{worker_id}] {e}");
            return ExitCode::FAILURE;
        }
    }
    let cfg = fabric::FabricConfig::for_worker(fabric_dir, worker_id, setup);
    let (_store, report) = fabric::run_worker(engine, jobs, &cfg);
    if let Err(e) = fabric::write_worker_report(fabric_dir, worker_id, &report) {
        eprintln!("[{worker_id}] could not write report: {e}");
    }
    // A worker's exit reflects its local view only; the coordinator's
    // final pass decides the authoritative outcome.
    if report.failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `run_all --workers N`: the fabric coordinator. Publishes the job
/// manifest, spawns `N` worker processes re-running this invocation with
/// `--worker`, waits them out (dead workers are expected under chaos —
/// survivors steal their leases), then runs the authoritative in-process
/// pass over the warmed store and folds the worker reports in for
/// attribution.
fn run_fleet(
    engine: &Engine,
    jobs: &[SimJob],
    setup: &Setup,
    args: &[String],
) -> (ResultStore, RunReport) {
    use poise::fabric;
    use std::collections::HashSet;

    let fabric_dir = results_dir().join("fabric");
    let _ = std::fs::remove_dir_all(&fabric_dir);
    let _ = std::fs::create_dir_all(fabric_dir.join("reports"));
    if let Err(e) = fabric::write_manifest(&fabric_dir, jobs) {
        eprintln!("[fabric] cannot write manifest: {e}; running in-process instead");
        return engine.run(jobs);
    }
    // Startup sweep: leases left by a previous (crashed) fleet are all
    // orphans — ours is the only fleet on this store now.
    let reaped0 = engine.cache().reap_stale_leases(0.0) as u64;
    if reaped0 > 0 {
        eprintln!("[fabric] reaped {reaped0} orphaned lease(s) at startup");
    }

    // Divide the process thread budget across the fleet (coordinator +
    // N workers) so per-run `sim_threads` pools compose with process
    // fan-out instead of oversubscribing the host.
    let share = (gpu_sim::threadpool::thread_budget() / (setup.workers + 1)).max(1);
    let mut children = Vec::new();
    match std::env::current_exe() {
        Ok(exe) => {
            for i in 1..=setup.workers {
                let id = format!("w{i}");
                match std::process::Command::new(&exe)
                    .args(args)
                    .arg("--worker")
                    .arg("--fabric-dir")
                    .arg(&fabric_dir)
                    .args(["--worker-id", &id])
                    .env(gpu_sim::threadpool::BUDGET_ENV, share.to_string())
                    .spawn()
                {
                    Ok(c) => children.push((id, c)),
                    Err(e) => eprintln!("[fabric] could not spawn {id}: {e}"),
                }
            }
        }
        Err(e) => eprintln!("[fabric] current_exe: {e}; running in-process only"),
    }
    eprintln!(
        "[fabric] coordinator: {} worker(s) over the shared cache",
        children.len()
    );
    for (id, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => eprintln!("[fabric] {id} exited with {status}"),
            Err(e) => eprintln!("[fabric] waiting on {id} failed: {e}"),
        }
    }

    // Every worker has exited, so any lease still on disk is orphaned
    // (held by a killed worker). Reap before the final pass.
    let reaped1 = engine.cache().reap_stale_leases(0.0) as u64;
    // The authoritative pass: resolves the whole graph from the warmed
    // store in-process, re-executing whatever dying workers left
    // behind. Kill faults never apply here (see FabricConfig), so this
    // pass always terminates.
    let (store, mut report) = engine.run(jobs);
    report.workers = setup.workers;
    report.reaped = reaped0 + reaped1;

    // Fold worker reports in: attribution lines, fabric counters, and
    // re-attribution of work (a job a worker executed is a cache hit to
    // the final pass).
    let mut seen: HashSet<String> = report.trouble.iter().map(|t| t.spec_hash.clone()).collect();
    for (id, w) in fabric::read_worker_reports(&fabric_dir) {
        eprintln!(
            "[fabric] {id}: executed={} cache_hits={} failed={} stolen={} lost={} wall={:.1}s",
            w.executed,
            w.cache_hits,
            w.failed.len(),
            w.stolen,
            w.lost,
            w.wall.as_secs_f64()
        );
        report.cache_hits = report.cache_hits.saturating_sub(w.executed);
        report.executed += w.executed;
        report.retried += w.retried;
        report.recovered += w.recovered;
        report.stolen += w.stolen;
        report.lost += w.lost;
        report.corrupt += w.corrupt;
        report.quarantined += w.quarantined;
        for t in w.trouble {
            if seen.insert(t.spec_hash.clone()) {
                report.trouble.push(t);
            }
        }
    }
    (store, report)
}

/// `run_all --fsck`: offline re-validation of every cache entry (see
/// [`Engine::fsck`]), plus reclamation of tmp orphans and job leases
/// left by killed workers. Corrupt entries are quarantined, so a
/// failing fsck leaves the store clean and a second pass succeeds.
fn fsck_main() -> ExitCode {
    let engine = Engine::from_env(&results_dir());
    match engine.fsck() {
        Ok(r) => {
            println!(
                "[run_all] fsck: {} entries scanned, {} valid, {} corrupt (quarantined), \
                 {} stale temp file(s) removed, {} orphaned lease(s) reclaimed",
                r.scanned, r.valid, r.corrupt, r.tmp_removed, r.leases_removed
            );
            if r.corrupt > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("[run_all] fsck failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Render `results/run_all_failures.txt`: the fault plan (if any), the
/// engine summary, cache-corruption counters, and the full attempt
/// history of every troubled job — recovered, failed and timed-out.
fn failures_report(engine: &Engine, report: &RunReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "# run_all failures report");
    let _ = writeln!(
        s,
        "# fault injection: {}",
        engine
            .faults()
            .map_or_else(|| "none".to_string(), |p| p.summary())
    );
    let _ = writeln!(s, "# engine: {}", report.summary_line());
    let _ = writeln!(
        s,
        "# cache: {} corrupt entries found, {} quarantined under cache/quarantine/",
        report.corrupt, report.quarantined
    );
    if report.trouble.is_empty() {
        let _ = writeln!(s, "# no troubled jobs");
        return s;
    }
    for t in &report.trouble {
        let _ = writeln!(s, "\njob: {}", t.label);
        let _ = writeln!(s, "  outcome: {}", t.outcome.name());
        for (i, a) in t.attempts.iter().enumerate() {
            let backoff = if a.backoff_ms > 0 {
                format!(" (retried after {}ms backoff)", a.backoff_ms)
            } else {
                String::new()
            };
            let _ = writeln!(
                s,
                "  attempt {i}: {} — {}{backoff}",
                a.class.name(),
                a.error
            );
        }
    }
    s
}
