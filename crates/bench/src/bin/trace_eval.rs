//! Run every scheduling scheme over the recorded trace workloads under
//! `traces/` (see `record_traces` for regenerating them) and tabulate
//! IPC normalised to GTO per trace. Thin shim over the `trace_eval`
//! figure; shares the experiment engine's content-addressed cache, in
//! which each trace's jobs are keyed by the trace file's digest.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("trace_eval")
}
