//! Fig. 11 — sensitivity of Poise to the local-search strides
//! (εN, εp) ∈ {(0,0), (1,1), (2,2), (2,4), (4,4)}, H-mean speedup vs GTO.
//! Paper: (0,0) +23%, (1,1) +43.6%, (2,2) +45.7%, (2,4) +46.6% (best),
//! (4,4) +45%.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("fig11_stride")
}
