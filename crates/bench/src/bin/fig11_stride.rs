//! Fig. 11 — sensitivity of Poise to the local-search strides
//! (εN, εp) ∈ {(0,0), (1,1), (2,2), (2,4), (4,4)}, H-mean speedup vs GTO.
//! Paper: (0,0) +23%, (1,1) +43.6%, (2,2) +45.7%, (2,4) +46.6% (best),
//! (4,4) +45%.

use poise::experiment::{self, harmonic_mean, Scheme};
use poise_bench::*;
use workloads::evaluation_suite;

fn main() {
    let base_setup = setup();
    let model = load_or_train_model(&base_setup);
    let strides = [(0usize, 0usize), (1, 1), (2, 2), (2, 4), (4, 4)];
    let rows_cache = main_comparison(&base_setup, &model);

    let mut table = Vec::new();
    let mut per_stride: Vec<Vec<f64>> = vec![Vec::new(); strides.len()];
    for bench in evaluation_suite() {
        let gto = metric(&rows_cache, &bench.name, "GTO", |r| r.ipc);
        let mut row = vec![bench.name.clone()];
        for (si, &(sn, sp)) in strides.iter().enumerate() {
            let mut s = base_setup.clone();
            s.params = s.params.with_strides(sn, sp);
            eprintln!("[bench] {} stride ({sn},{sp})...", bench.name);
            let r = experiment::run_benchmark(&bench, Scheme::Poise, &model, &s);
            let v = r.ipc / gto;
            per_stride[si].push(v);
            row.push(cell(v, 3));
        }
        table.push(row);
    }
    let mut hmean = vec!["H-Mean".to_string()];
    for sp in &per_stride {
        hmean.push(cell(harmonic_mean(sp), 3));
    }
    table.push(hmean);
    emit_table(
        "fig11_stride.txt",
        "Fig. 11 — Poise IPC vs GTO for search strides (eN, ep)",
        &["bench", "(0,0)", "(1,1)", "(2,2)", "(2,4)", "(4,4)"],
        &table,
    );
}
