//! Record the committed trace workloads under `traces/` — one per
//! synthetic kernel class (streaming, hot-set, shared-heavy,
//! compute-bound) — and verify the record→replay differential.
//!
//! ```sh
//! # (Re)generate the shipped traces:
//! cargo run --release -p poise-bench --bin record_traces
//!
//! # Verify the replay differential without touching the filesystem:
//! # record each class in memory and require bit-identical counters and
//! # epoch logs vs the live generator for all 7 schemes under both the
//! # per-SM and the cycle-stepped reference loop.
//! cargo run --release -p poise-bench --bin record_traces -- --check
//! ```
//!
//! Flags: `--out <dir>` (default the workspace `traces/`),
//! `--ops <n>` per-warp recording horizon (default 2600), `--sms <n>`
//! recorded SM count (default 1; replay folds larger machines onto the
//! recorded geometry modulo), `--check` as above.
//!
//! The shipped traces are recorded at 1 SM × 2 schedulers × 8 warps so
//! the files stay reviewably small; CI runs `--check` at every commit,
//! and `crates/core/tests/trace_replay.rs` pins the same differential
//! per-controller in the tier-1 suite.

use std::path::PathBuf;
use std::process::ExitCode;

use gpu_sim::{GpuConfig, StepMode, WarpTuple};
use poise::experiment::{run_kernel_configured, ProfileTuples, Scheme};
use poise::params::PoiseParams;
use poise_ml::{TrainedModel, N_FEATURES};
use workloads::{record_kernel, AccessMix, KernelSpec, TraceRef, Workload};

/// The four shipped kernel classes.
fn trace_kernels() -> Vec<(&'static str, KernelSpec)> {
    let mut streaming = AccessMix::memory_sensitive();
    streaming.stream_frac = 0.6;
    streaming.hot_frac = 0.2;
    let hotset = AccessMix::memory_sensitive();
    let mut shared = AccessMix::memory_sensitive();
    shared.shared_frac = 0.55;
    shared.shared_lines = 72;
    shared.hot_frac = 0.4;
    let compute = AccessMix::compute_intensive();
    vec![
        (
            "streaming",
            KernelSpec::steady("trace-streaming", streaming, 71).with_warps(8),
        ),
        (
            "hotset",
            KernelSpec::steady("trace-hotset", hotset, 72).with_warps(8),
        ),
        (
            "shared",
            KernelSpec::steady("trace-shared", shared, 73).with_warps(8),
        ),
        (
            "compute",
            KernelSpec::steady("trace-compute", compute, 74).with_warps(8),
        ),
    ]
}

fn const_model(n: f64, p: f64) -> TrainedModel {
    let mut alpha = [0.0; N_FEATURES];
    let mut beta = [0.0; N_FEATURES];
    alpha[N_FEATURES - 1] = n.ln();
    beta[N_FEATURES - 1] = p.ln();
    TrainedModel {
        alpha,
        beta,
        dispersion_n: 0.1,
        dispersion_p: 0.1,
        samples_used: 0,
        dropped_features: Vec::new(),
    }
}

/// Run one workload under every scheme, in both step modes, and return
/// the outcomes in a comparable form.
fn run_all_schemes(workload: &Workload, base_cfg: &GpuConfig, budget: u64) -> Vec<String> {
    let model = const_model(6.0, 2.0);
    let tuples = ProfileTuples {
        swl: WarpTuple::new(4, 4, 24),
        best: WarpTuple::new(6, 2, 24),
    };
    let params = PoiseParams::scaled_down(20);
    let mut out = Vec::new();
    for mode in [StepMode::PerSm, StepMode::Reference] {
        let mut cfg = base_cfg.clone();
        cfg.step_mode = mode;
        cfg.track_pc_stats = true; // uniform config so APCM is comparable
        for scheme in [
            Scheme::Gto,
            Scheme::Swl,
            Scheme::PcalSwl,
            Scheme::Poise,
            Scheme::StaticBest,
            Scheme::RandomRestart,
            Scheme::Apcm,
        ] {
            let run = run_kernel_configured(
                workload,
                scheme,
                Some(&model),
                Some(tuples),
                &cfg,
                &params,
                &[11, 23],
                budget,
            );
            out.push(format!(
                "{mode:?}/{} counters={:?} epochs={:?}",
                scheme.name(),
                run.counters,
                run.epoch_logs
            ));
        }
    }
    out
}

fn check() -> ExitCode {
    let cfg = GpuConfig::scaled(1);
    let budget = 15_000;
    let mut failures = 0;
    for (class, spec) in trace_kernels() {
        let data = record_kernel(
            &spec,
            &spec.name,
            1,
            cfg.schedulers_per_sm,
            (2 * budget + 8) as usize,
        );
        let replay = Workload::from(TraceRef::from_data(data));
        let live = run_all_schemes(&Workload::from(spec), &cfg, budget);
        let replayed = run_all_schemes(&replay, &cfg, budget);
        let diverged = live
            .iter()
            .zip(&replayed)
            .filter(|(a, b)| a != b)
            .map(|(a, _)| a.split(' ').next().unwrap_or("?").to_string())
            .collect::<Vec<_>>();
        if diverged.is_empty() {
            println!("[record_traces] {class}: replay identical across 7 schemes x 2 step modes");
        } else {
            eprintln!("[record_traces] {class}: replay DIVERGED at {diverged:?}");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("[record_traces] --check FAILED for {failures} class(es)");
        ExitCode::FAILURE
    } else {
        println!("[record_traces] --check passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_val = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if args.iter().any(|a| a == "--check") {
        return check();
    }
    let out: PathBuf = flag_val("--out")
        .map(PathBuf::from)
        .unwrap_or_else(poise_bench::traces_dir);
    let ops: usize = flag_val("--ops")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_600);
    let sms: usize = flag_val("--sms").and_then(|v| v.parse().ok()).unwrap_or(1);
    let cfg = GpuConfig::scaled(1);

    for (class, spec) in trace_kernels() {
        let data = record_kernel(&spec, &spec.name, sms, cfg.schedulers_per_sm, ops);
        let path = out.join(format!("{class}.trace"));
        match TraceRef::write(&data, &path) {
            Ok(t) => println!(
                "[record_traces] wrote {} ({} warps x <= {ops} ops, {} instrs, digest {})",
                path.display(),
                sms * cfg.schedulers_per_sm * data.warps_per_scheduler,
                data.total_instructions(),
                &t.digest[..12],
            ),
            Err(e) => {
                eprintln!("[record_traces] {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
