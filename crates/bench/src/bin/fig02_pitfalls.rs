//! Fig. 2 — static {N, p} profile of an ii-family kernel illustrating the
//! pitfalls of CCWS and PCAL: (a) the full solution-space surface with the
//! CCWS (diagonal best), PCAL convergence and global MAX points; (b) the
//! `p = N` and `p = 1` slices showing the performance valley that traps
//! PCAL's unit-step hill climb short of the global optimum.

use gpu_sim::WarpTuple;
use poise::policies::swl_tuple_from_grid;
use poise::profiler::{profile_grid, GridSpec};
use poise_bench::*;
use workloads::evaluation_suite;

/// Simulate PCAL's search procedure offline on the profiled surface:
/// start at the SWL point, pick the best p at that N, then unit-step
/// hill-climb in N until no neighbour improves.
fn pcal_converge(grid: &poise_ml::SpeedupGrid, start: WarpTuple) -> WarpTuple {
    let at = |n: usize, p: usize| grid.get(n, p.min(n)).unwrap_or(f64::NEG_INFINITY);
    // Parallel p search at the starting N.
    let mut best_p = start.p;
    let mut best = at(start.n, start.p);
    for p in 1..=start.n {
        if at(start.n, p) > best {
            best = at(start.n, p);
            best_p = p;
        }
    }
    // Unit-step hill climb in N.
    let mut n = start.n;
    loop {
        let up = if n < grid.max_n() {
            at(n + 1, best_p)
        } else {
            f64::NEG_INFINITY
        };
        let down = if n > 1 {
            at(n - 1, best_p)
        } else {
            f64::NEG_INFINITY
        };
        if up > best && up >= down {
            n += 1;
            best = up;
        } else if down > best {
            n -= 1;
            best = down;
        } else {
            break;
        }
    }
    WarpTuple::new(n, best_p.min(n), grid.max_n())
}

fn main() {
    let setup = setup();
    // The paper profiles ii kernel #112; any intra-heavy family member
    // shows the same structure — use the ii base kernel.
    let bench = evaluation_suite()
        .into_iter()
        .find(|b| b.name == "ii")
        .expect("ii benchmark");
    let kernel = &bench.kernels[0];
    eprintln!(
        "[bench] profiling the full {{N, p}} grid of {}...",
        kernel.name
    );
    // The full 300-point triangle at the hardware scheduler capacity —
    // affordable since the per-SM decoupled core (the coarse grid was a
    // concession to the slower cycle-stepped core).
    let max_n = setup
        .cfg
        .max_warps_per_scheduler
        .min(kernel.warps_per_scheduler);
    let grid = profile_grid(
        kernel,
        &setup.cfg,
        &GridSpec::full(max_n),
        setup.profile_window,
    );

    println!("# Fig. 2a — {{N, p}} solution space of {}", kernel.name);
    print!("{}", render_grid(&grid));
    let ccws = swl_tuple_from_grid(&grid, max_n);
    let pcal = pcal_converge(&grid, ccws);
    let (maxt, maxs) = grid.best_performance().expect("profiled grid");
    println!(
        "CCWS (diagonal best): {ccws} -> {:.3}",
        grid.get(ccws.n, ccws.p).unwrap_or(0.0)
    );
    println!(
        "PCAL convergence:     {pcal} -> {:.3}",
        grid.get(pcal.n, pcal.p).unwrap_or(0.0)
    );
    println!("MAX (global best):    {maxt} -> {maxs:.3}");

    let mut rows = Vec::new();
    for n in 1..=grid.max_n() {
        rows.push(vec![
            n.to_string(),
            grid.get(n, n).map_or("-".into(), |v| cell(v, 3)),
            grid.get(n, 1).map_or("-".into(), |v| cell(v, 3)),
        ]);
    }
    emit_table(
        "fig02_pitfalls.txt",
        "Fig. 2b — IPC (normalised) along p = N and p = 1",
        &["N", "p=N", "p=1"],
        &rows,
    );
    let mut extra = String::new();
    extra.push_str(&render_grid(&grid));
    extra.push_str(&format!(
        "CCWS {ccws}  PCAL {pcal}  MAX {maxt} ({maxs:.3})\n"
    ));
    std::fs::write(results_dir().join("fig02_grid.txt"), extra).expect("write");
}
