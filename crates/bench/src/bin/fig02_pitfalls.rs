//! Fig. 2 — static {N, p} profile of an ii-family kernel illustrating the
//! pitfalls of CCWS and PCAL: (a) the full solution-space surface with the
//! CCWS (diagonal best), PCAL convergence and global MAX points; (b) the
//! `p = N` and `p = 1` slices showing the performance valley that traps
//! PCAL's unit-step hill climb short of the global optimum.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("fig02_pitfalls")
}
