//! Fig. 9 — average memory latency (AML) of L1 misses, normalised to GTO,
//! with the arithmetic mean. Paper: SWL 0.893, Poise 1.011, Static-Best
//! 1.141, PCAL-SWL 1.324.

use poise::experiment::arithmetic_mean;
use poise_bench::*;

fn main() {
    let setup = setup();
    let model = load_or_train_model(&setup);
    let rows = main_comparison(&setup, &model);
    let schemes = ["GTO", "SWL", "PCAL-SWL", "Poise", "Static-Best"];
    let mut table = Vec::new();
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for bench in bench_order() {
        let gto = metric(&rows, &bench, "GTO", |r| r.aml);
        let mut row = vec![bench.clone()];
        for (i, s) in schemes.iter().enumerate() {
            let v = metric(&rows, &bench, s, |r| r.aml) / gto;
            ratios[i].push(v);
            row.push(cell(v, 3));
        }
        table.push(row);
    }
    let mut amean = vec!["A-Mean".to_string()];
    for r in &ratios {
        amean.push(cell(arithmetic_mean(r), 3));
    }
    table.push(amean);
    emit_table(
        "fig09_aml.txt",
        "Fig. 9 — AML normalised to GTO",
        &["bench", "GTO", "SWL", "PCAL-SWL", "Poise", "Static-Best"],
        &table,
    );
}
