//! Fig. 9 — average memory latency (AML) of L1 misses, normalised to GTO,
//! with the arithmetic mean. Paper: SWL 0.893, Poise 1.011, Static-Best
//! 1.141, PCAL-SWL 1.324.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("fig09_aml")
}
