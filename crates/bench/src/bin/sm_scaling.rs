//! Shim over the `sm_scaling` sweep figure: IPC and simulation
//! throughput of every scheme across machine sizes (1→32 SMs at the
//! paper baseline). See `poise_bench::figures` and EXPERIMENTS.md;
//! `run_all --sweep sms=...` overrides the default SM ladder.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("sm_scaling")
}
