//! Fig. 14 — energy consumption of Poise normalised to GTO, with the
//! harmonic mean. Paper: −51.6% on average (up to −79.4% on mm), from
//! shorter execution (leakage) and fewer off-chip accesses (data
//! movement).
//!
//! Note: the runs are fixed-cycle windows, so equal-cycle energy is
//! normalised by work: energy-per-instruction ratio Poise/GTO, which
//! equals the energy ratio of equal-work runs.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("fig14_energy")
}
