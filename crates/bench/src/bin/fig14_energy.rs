//! Fig. 14 — energy consumption of Poise normalised to GTO, with the
//! harmonic mean. Paper: −51.6% on average (up to −79.4% on mm), from
//! shorter execution (leakage) and fewer off-chip accesses (data
//! movement).
//!
//! Note: the runs are fixed-cycle windows, so equal-cycle energy is
//! normalised by work: energy-per-instruction ratio Poise/GTO, which
//! equals the energy ratio of equal-work runs.

use poise::experiment::harmonic_mean;
use poise_bench::*;

fn main() {
    let setup = setup();
    let model = load_or_train_model(&setup);
    let rows = main_comparison(&setup, &model);
    let mut table = Vec::new();
    let mut ratios = Vec::new();
    for bench in bench_order() {
        let gto_epi = metric(&rows, &bench, "GTO", |r| r.energy / r.ipc);
        let poise_epi = metric(&rows, &bench, "Poise", |r| r.energy / r.ipc);
        let v = poise_epi / gto_epi;
        ratios.push(v);
        table.push(vec![bench, "1.000".to_string(), cell(v, 3)]);
    }
    table.push(vec![
        "H-Mean".to_string(),
        "1.000".to_string(),
        cell(harmonic_mean(&ratios), 3),
    ]);
    emit_table(
        "fig14_energy.txt",
        "Fig. 14 — energy consumption normalised to GTO (per unit work)",
        &["bench", "GTO", "Poise"],
        &table,
    );
}
