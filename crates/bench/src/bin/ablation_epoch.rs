//! Design-choice ablation (DESIGN.md §9): inference-epoch sensitivity.
//!
//! Table IV fixes `Tperiod = 200k` cycles. Shorter epochs re-predict more
//! often (better phase tracking, more sampling overhead); longer epochs
//! amortise sampling but react slowly. This sweep runs Poise at several
//! epoch lengths on a phase-changing kernel (gsmv) and a steady kernel
//! (ii).
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("ablation_epoch")
}
