//! Design-choice ablation (DESIGN.md §9): inference-epoch sensitivity.
//!
//! Table IV fixes `Tperiod = 200k` cycles. Shorter epochs re-predict more
//! often (better phase tracking, more sampling overhead); longer epochs
//! amortise sampling but react slowly. This sweep runs Poise at several
//! epoch lengths on a phase-changing kernel (gsmv) and a steady kernel
//! (ii).

use poise::experiment::{self, Scheme};
use poise_bench::*;
use workloads::evaluation_suite;

fn main() {
    let base = setup();
    let model = load_or_train_model(&base);
    let suite = evaluation_suite();
    let benches: Vec<_> = suite
        .iter()
        .filter(|b| b.name == "ii" || b.name == "gsmv")
        .collect();
    let periods = [50_000u64, 100_000, 200_000, 400_000];

    let mut rows = Vec::new();
    for bench in &benches {
        let gto = experiment::run_benchmark(bench, Scheme::Gto, &model, &base);
        let mut row = vec![bench.name.clone()];
        for &t in &periods {
            let mut s = base.clone();
            s.params.t_period = t;
            // Two epochs at every setting for a fair sampling share.
            s.run_cycles = 2 * t;
            eprintln!("[bench] {} @ Tperiod {t}...", bench.name);
            let r = experiment::run_benchmark(bench, Scheme::Poise, &model, &s);
            row.push(cell(r.ipc / gto.ipc, 3));
        }
        rows.push(row);
    }
    emit_table(
        "ablation_epoch.txt",
        "Ablation — Poise IPC vs GTO across inference epoch lengths",
        &["bench", "50k", "100k", "200k", "400k"],
        &rows,
    );
}
