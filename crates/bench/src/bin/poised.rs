//! `poised` — the sweep daemon (see `poise::daemon` and "The sweep
//! daemon" in EXPERIMENTS.md).
//!
//! A long-running service over the shared `results/` store: clients
//! (`run_all --connect`) submit experiment plans as `--set`/`--sweep`/
//! `--only` overlays on a Unix domain socket; the daemon expands each
//! into its job graph, coalesces overlapping graphs across clients,
//! schedules admitted batches onto the lease fabric with per-client
//! fairness, and streams per-job progress back as JSONL (mirrored to
//! `results/daemon/events.jsonl`).
//!
//! Flags:
//!
//! * `--socket <path>` — listening socket (default `results/daemon.sock`;
//!   `POISE_RESULTS_DIR` moves the whole layout);
//! * `--set <knob>=<value>` (repeatable) — base overlay applied under
//!   every submission's own overlay (clients win on conflicts). Engine
//!   knobs (`job_deadline`, `lease_ttl`, `steal_after`) are daemon-wide
//!   and only honoured here, never per submission;
//! * `--max-queue <n>` — queued-submission bound (default 16; beyond it
//!   `submit` is rejected, not blocked);
//! * `--max-inflight <n>` — target cap on unique jobs per scheduling
//!   batch (default 4096; a single oversized submission still runs);
//! * `--quiet` — suppress per-event stderr lines.
//!
//! Exit code 0 after a clean `shutdown` request (drain or now), 1 on
//! startup errors (socket in use by a live daemon, unwritable results
//! dir, malformed flags).

use std::process::ExitCode;

use poise::daemon::{Daemon, DaemonConfig, SubmitRequest};
use poise::jobs::Engine;
use poise::plan::KnobOverlay;
use poise_bench::figures::plan_jobs;
use poise_bench::results_dir;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sets: Vec<String> = Vec::new();
    let mut socket: Option<String> = None;
    let mut max_queue: Option<usize> = None;
    let mut max_inflight: Option<usize> = None;
    let quiet = args.iter().any(|a| a == "--quiet");
    for (i, a) in args.iter().enumerate() {
        let value = |flag: &str| -> Result<String, String> {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .ok_or_else(|| format!("{flag} needs an argument"))
        };
        let count = |flag: &str| -> Result<usize, String> {
            value(flag)?
                .parse()
                .map_err(|_| format!("{flag} needs an integer"))
        };
        let parsed = match a.as_str() {
            "--set" => value("--set").map(|v| sets.push(v)),
            "--socket" => value("--socket").map(|v| socket = Some(v)),
            "--max-queue" => count("--max-queue").map(|v| max_queue = Some(v)),
            "--max-inflight" => count("--max-inflight").map(|v| max_inflight = Some(v)),
            _ => Ok(()),
        };
        if let Err(e) = parsed {
            eprintln!("[poised] {e}");
            return ExitCode::FAILURE;
        }
    }

    let results = results_dir();
    let mut cfg = DaemonConfig::for_results_dir(&results);
    if let Some(s) = socket {
        cfg.socket = s.into();
    }
    if let Some(n) = max_queue {
        cfg.max_queue = n;
    }
    if let Some(n) = max_inflight {
        cfg.max_inflight = n.max(1);
    }
    cfg.quiet = quiet;

    // The daemon-wide base overlay: applied under every submission's
    // own assignments. Engine knobs are lifted off it here — they
    // configure the one engine and fabric every batch shares.
    let base = match KnobOverlay::parse(&sets) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("[poised] {e}");
            return ExitCode::FAILURE;
        }
    };
    let base_setup = poise_bench::base_setup(&base);
    let mut engine = Engine::from_env(&results);
    engine.deadline = base_setup.job_deadline;
    cfg.lease_ttl = base_setup.lease_ttl;
    cfg.steal_after = base_setup.steal_after;

    // The planner: the one `run_all`-shaped expansion path, under the
    // daemon's base overlay. Deterministic, so a client re-expanding
    // the same plan renders every job from the warmed cache.
    let planner = move |req: &SubmitRequest| -> Result<Vec<poise::jobs::SimJob>, String> {
        plan_jobs(
            base.clone(),
            &req.set,
            &req.sweep,
            req.only.as_deref(),
            false,
        )
        .map(|planned| planned.jobs)
    };

    match Daemon::serve(engine, Box::new(planner), cfg) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("[poised] {e}");
            ExitCode::FAILURE
        }
    }
}
