//! Table IV — Poise's timing and threshold parameters (defaults of
//! [`poise::PoiseParams`] and the training thresholds).
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("table4_params")
}
