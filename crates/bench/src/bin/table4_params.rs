//! Table IV — Poise's timing and threshold parameters (defaults of
//! [`poise::PoiseParams`] and the training thresholds).

use poise::PoiseParams;
use poise_bench::*;
use poise_ml::TrainingThresholds;

fn main() {
    let p = PoiseParams::default();
    let t = TrainingThresholds::default();
    let rows = vec![
        vec![
            "w0, w1, w2".into(),
            "performance scoring weights".into(),
            format!("{}, {}, {}", p.scoring.0[0], p.scoring.0[1], p.scoring.0[2]),
        ],
        vec![
            "Tperiod".into(),
            "inference periodicity".into(),
            format!("{} cycles", p.t_period),
        ],
        vec![
            "Twarmup".into(),
            "warmup duration".into(),
            format!("{} cycles", p.t_warmup),
        ],
        vec![
            "Tfeature".into(),
            "feature sampling duration".into(),
            format!("{} cycles", p.t_feature),
        ],
        vec![
            "Tsearch".into(),
            "local-search sampling duration".into(),
            format!("{} cycles", p.t_search),
        ],
        vec![
            "Imax".into(),
            "cut-off for instructions between loads".into(),
            format!("{}", p.i_max),
        ],
        vec![
            "eps_N".into(),
            "search stride for N".into(),
            p.stride_n.to_string(),
        ],
        vec![
            "eps_p".into(),
            "search stride for p".into(),
            p.stride_p.to_string(),
        ],
        vec![
            "thr speedup".into(),
            "training kernel best-tuple speedup".into(),
            format!(">= {:.1}%", (t.min_speedup - 1.0) * 100.0),
        ],
        vec![
            "thr cycles".into(),
            "training kernel baseline cycles".into(),
            format!(">= {}", t.min_cycles),
        ],
        vec![
            "thr hit rate".into(),
            "training kernel L1 hit rate at (1,1)".into(),
            format!("> {} %", t.min_ref_hit_rate * 100.0),
        ],
    ];
    emit_table(
        "table4_params.txt",
        "Table IV — Poise parameters",
        &["parameter", "description", "value"],
        &rows,
    );
}
