//! Fig. 16 — Poise on compute-intensive (memory-insensitive) applications
//! with Pbest < 20%: the In > Imax early-out keeps Poise benign.
//! Paper: −1.6% average overhead, worst case −3.5% (sradv2).

use poise::experiment::{self, harmonic_mean, Scheme};
use poise::profiler::{pbest, ProfileWindow};
use poise_bench::*;
use workloads::compute_insensitive_suite;

fn main() {
    let setup = setup();
    let model = load_or_train_model(&setup);
    let mut table = Vec::new();
    let mut ratios = Vec::new();
    for bench in compute_insensitive_suite() {
        eprintln!("[bench] {}...", bench.name);
        let gto = experiment::run_benchmark(&bench, Scheme::Gto, &model, &setup);
        let poise = experiment::run_benchmark(&bench, Scheme::Poise, &model, &setup);
        let pb = pbest(&bench.kernels[0], &setup.cfg, ProfileWindow::pbest());
        let v = poise.ipc / gto.ipc;
        ratios.push(v);
        table.push(vec![bench.name.clone(), cell(v, 3), format!("{pb:.2}x")]);
    }
    table.push(vec![
        "H-Mean".to_string(),
        cell(harmonic_mean(&ratios), 3),
        String::new(),
    ]);
    emit_table(
        "fig16_insensitive.txt",
        "Fig. 16 — Poise IPC vs GTO on compute-insensitive applications",
        &["bench", "Poise/GTO", "Pbest"],
        &table,
    );
}
