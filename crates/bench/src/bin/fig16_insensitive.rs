//! Fig. 16 — Poise on compute-intensive (memory-insensitive) applications
//! with Pbest < 20%: the In > Imax early-out keeps Poise benign.
//! Paper: −1.6% average overhead, worst case −3.5% (sradv2).
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("fig16_insensitive")
}
