//! §VII-I — Poise's hardware storage cost: 7 × 32-bit counters, two
//! 3-bit FSM state registers and 2 bits per warp-queue entry, totalling
//! 40.75 bytes per SM and 1,304 bytes for the 32-SM chip.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("table_hw_cost")
}
