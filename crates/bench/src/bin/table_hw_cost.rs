//! §VII-I — Poise's hardware storage cost: 7 × 32-bit counters, two
//! 3-bit FSM state registers and 2 bits per warp-queue entry, totalling
//! 40.75 bytes per SM and 1,304 bytes for the 32-SM chip.

use poise::hardware_cost::HardwareCost;
use poise_bench::*;

fn main() {
    let c = HardwareCost::paper_baseline();
    let rows = vec![
        vec![
            "performance counters".into(),
            format!("{} bits", c.counter_bits),
        ],
        vec!["FSM state registers".into(), format!("{} bits", c.fsm_bits)],
        vec![
            "vital + pollute bits".into(),
            format!("{} bits", c.warp_bits),
        ],
        vec!["total per SM".into(), format!("{} bits", c.bits_per_sm())],
        vec!["bytes per SM".into(), format!("{:.2} B", c.bytes_per_sm())],
        vec![
            "bytes per chip (32 SMs)".into(),
            format!("{:.0} B", c.bytes_total(32)),
        ],
    ];
    emit_table(
        "table_hw_cost.txt",
        "SVII-I — Poise per-SM storage overhead",
        &["item", "cost"],
        &rows,
    );
}
