//! Fig. 17 — case study on bfs: (a) the static {N, p} performance profile
//! and (b) the tuples Poise predicts and converges to at runtime. The
//! check is qualitative: predictions should land in the profile's
//! high-performance zone and avoid the red high-N region.

use poise::experiment::Scheme;
use poise::profiler::{profile_grid, GridSpec};
use poise::PoiseController;
use poise_bench::*;
use workloads::evaluation_suite;

fn main() {
    let setup = setup();
    let model = load_or_train_model(&setup);
    let bench = evaluation_suite()
        .into_iter()
        .find(|b| b.name == "bfs")
        .expect("bfs");
    let kernel = &bench.kernels[0];

    eprintln!("[bench] static profile of {} (full grid)...", kernel.name);
    let grid = profile_grid(
        kernel,
        &setup.cfg,
        &GridSpec::full(kernel.warps_per_scheduler),
        setup.profile_window,
    );
    println!("# Fig. 17a — static profile of {}", kernel.name);
    print!("{}", render_grid(&grid));
    let (bt, bs) = grid.best_performance().expect("profiled");
    println!("best tuple: {bt} -> {bs:.3}\n");

    eprintln!("[bench] Poise runtime trajectory...");
    let mut gpu = gpu_sim::Gpu::new(setup.cfg.clone(), kernel);
    let mut ctrl = PoiseController::new(model, setup.params);
    gpu.run(&mut ctrl, setup.run_cycles.max(3 * setup.params.t_period));
    println!("# Fig. 17b — Poise predictions and searched tuples");
    let mut rows = Vec::new();
    for l in &ctrl.log {
        rows.push(vec![
            l.cycle.to_string(),
            format!("{}", l.predicted),
            format!("{}", l.searched),
            grid.get(l.searched.n, l.searched.p)
                .map_or("-".into(), |v| cell(v, 3)),
            if l.early_out { "early-out" } else { "" }.to_string(),
        ]);
    }
    emit_table(
        "fig17_case_study.txt",
        "Fig. 17b — Poise epochs on bfs (speedup looked up in the static profile)",
        &["cycle", "predicted", "searched", "profile speedup", "note"],
        &rows,
    );
    let run_scheme = Scheme::Poise; // documented linkage to the main runs
    let _ = run_scheme;
    std::fs::write(
        results_dir().join("fig17_grid.txt"),
        format!("{}best {bt} ({bs:.3})\n", render_grid(&grid)),
    )
    .expect("write");
}
