//! Fig. 17 — case study on bfs: (a) the static {N, p} performance profile
//! and (b) the tuples Poise predicts and converges to at runtime. The
//! check is qualitative: predictions should land in the profile's
//! high-performance zone and avoid the red high-N region.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("fig17_case_study")
}
