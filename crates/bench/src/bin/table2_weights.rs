//! Table II — the learned feature weights α (for N) and β (for p) from
//! the one-time offline training run on the training suite.
//!
//! Absolute weight values differ from the paper's (different substrate,
//! different workload population); what must reproduce is that a single
//! Negative Binomial fit over the eight Table II features yields usable
//! predictions on unseen benchmarks — checked by §VII-B's prediction-error
//! experiment and by Fig. 7.

use poise_bench::*;

fn main() {
    let setup = setup();
    let model = load_or_train_model(&setup);
    let names = [
        "x1 = ho",
        "x2 = h'",
        "x3 = eta_o",
        "x4 = eta'",
        "x5 = (eta'-eta_o)^2",
        "x6 = In(eta'-eta_o)^2",
        "x7 = (L'm'-moLo)^2/1e4",
        "x8 = 1 (intercept)",
    ];
    let mut rows = Vec::new();
    for (i, n) in names.iter().enumerate() {
        rows.push(vec![
            n.to_string(),
            format!("{:+.6}", model.alpha[i]),
            format!("{:+.6}", model.beta[i]),
        ]);
    }
    rows.push(vec![
        "dispersion".to_string(),
        format!("{:+.6}", model.dispersion_n),
        format!("{:+.6}", model.dispersion_p),
    ]);
    rows.push(vec![
        "samples used".to_string(),
        model.samples_used.to_string(),
        model.samples_used.to_string(),
    ]);
    emit_table(
        "table2_weights.txt",
        "Table II — learned feature weights (alpha for N, beta for p)",
        &["feature", "alpha (N)", "beta (p)"],
        &rows,
    );
}
