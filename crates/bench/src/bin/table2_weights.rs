//! Table II — the learned feature weights α (for N) and β (for p) from
//! the one-time offline training run on the training suite.
//!
//! Absolute weight values differ from the paper's (different substrate,
//! different workload population); what must reproduce is that a single
//! Negative Binomial fit over the eight Table II features yields usable
//! predictions on unseen benchmarks — checked by §VII-B's prediction-error
//! experiment and by Fig. 7.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("table2_weights")
}
