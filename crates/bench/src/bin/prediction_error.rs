//! §VII-B — offline prediction accuracy of the regression model against
//! profiled kernels from the *evaluation* set (unseen in training).
//! Paper: mean prediction error 16% for N and 26% for p.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("prediction_error")
}
