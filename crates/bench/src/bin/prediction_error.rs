//! §VII-B — offline prediction accuracy of the regression model against
//! profiled kernels from the *evaluation* set (unseen in training).
//! Paper: mean prediction error 16% for N and 26% for p.

use poise::train::collect_samples;
use poise_bench::*;
use workloads::evaluation_suite;

fn main() {
    let setup = setup();
    let model = load_or_train_model(&setup);
    let kernels: Vec<workloads::KernelSpec> = evaluation_suite()
        .iter()
        .flat_map(|b| b.capped(2).kernels)
        .collect();
    eprintln!(
        "[bench] profiling {} unseen evaluation kernels for targets...",
        kernels.len()
    );
    let samples = collect_samples(
        &kernels,
        &setup.cfg,
        &setup.eval_grid,
        setup.profile_window,
        &setup.params,
    );
    let (en, ep) = model.prediction_error(&samples);
    let rows = vec![
        vec!["N".to_string(), format!("{:.1}%", en * 100.0)],
        vec!["p".to_string(), format!("{:.1}%", ep * 100.0)],
        vec!["kernels".to_string(), samples.len().to_string()],
    ];
    emit_table(
        "prediction_error.txt",
        "SVII-B — offline mean relative prediction error on unseen kernels",
        &["output", "error"],
        &rows,
    );
}
