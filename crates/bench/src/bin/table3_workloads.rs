//! Table IIIa/b — the workload inventory with measured Pbest (speedup
//! with a 64× L1) and the baseline architecture parameters.
//!
//! Paper Pbest: gco 3.43, pvr 2.07, ccl 1.49 (training); syr2k 14.13,
//! syrk 9.03, mm 6.20, ii 5.94, gsmv 3.23, mvt 2.97, bicg 2.93, ss 2.85,
//! atax 2.73, bfs 1.55, kmeans 1.42 (evaluation). The reproduction aims
//! at the ordering/grouping, not the absolute values.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.
//! `--config` prints the Table IIIb baseline machine without simulating.

use std::process::ExitCode;

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--config") {
        println!("# Table IIIb — baseline architecture (GpuConfig::baseline)");
        println!("{:#?}", gpu_sim::GpuConfig::baseline());
        return ExitCode::SUCCESS;
    }
    poise_bench::figures::figure_main("table3_workloads")
}
