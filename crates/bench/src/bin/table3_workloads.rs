//! Table IIIa/b — the workload inventory with measured Pbest (speedup
//! with a 64× L1) and the baseline architecture parameters.
//!
//! Paper Pbest: gco 3.43, pvr 2.07, ccl 1.49 (training); syr2k 14.13,
//! syrk 9.03, mm 6.20, ii 5.94, gsmv 3.23, mvt 2.97, bicg 2.93, ss 2.85,
//! atax 2.73, bfs 1.55, kmeans 1.42 (evaluation). The reproduction aims
//! at the ordering/grouping, not the absolute values.

use poise::profiler::{pbest, ProfileWindow};
use poise_bench::*;
use workloads::{evaluation_suite, training_suite};

fn main() {
    let setup = setup();
    if std::env::args().any(|a| a == "--config") {
        println!("# Table IIIb — baseline architecture (GpuConfig::baseline)");
        println!("{:#?}", gpu_sim::GpuConfig::baseline());
        return;
    }
    let window = ProfileWindow::pbest();
    let mut rows = Vec::new();
    for (set, suite) in [("train", training_suite()), ("eval", evaluation_suite())] {
        for bench in suite {
            eprintln!("[bench] Pbest for {}...", bench.name);
            let k = &bench.kernels[0];
            let p = pbest(k, &setup.cfg, window);
            rows.push((set, bench.name.clone(), bench.kernels.len(), p));
        }
    }
    // Sort the evaluation set by Pbest, as the paper lists it.
    rows.sort_by(|a, b| {
        a.0.cmp(b.0)
            .then(b.3.partial_cmp(&a.3).unwrap_or(std::cmp::Ordering::Equal))
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(set, name, kernels, p)| {
            vec![
                set.to_string(),
                name.clone(),
                kernels.to_string(),
                format!("{p:.2}x"),
            ]
        })
        .collect();
    emit_table(
        "table3_workloads.txt",
        "Table IIIa — workloads with measured Pbest (64x L1 speedup)",
        &["set", "benchmark", "#kernels", "Pbest"],
        &table,
    );
}
