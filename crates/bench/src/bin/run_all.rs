//! One-command reproduction of the paper's evaluation section, writing
//! each output under `results/`; see EXPERIMENTS.md for the engine, the
//! cache layout and the paper-vs-measured record.
//!
//! Every registered figure declares its simulation jobs up front; the
//! unified experiment engine executes the deduplicated set once across
//! the host's cores (answering repeats from the content-addressed cache
//! in `results/cache/`), then every figure renders from the shared
//! results — replacing the old 21-process serial harness.
//!
//! Flags: `--keep-going` (render every figure even after failures, then
//! summarise), `--only <a,b,...>` (exact names or underscore prefixes,
//! e.g. `fig12`), `--list`, `--gc` (prune cache entries the current job
//! set no longer references), `--set <knob>=<value>` (apply a knob to
//! the base setup, e.g. `--set sms=32`), and `--sweep <knob>=<v1,v2,..>`
//! (sweep a knob across every selected figure's plan — see
//! `poise::plan` and the "Plans & sweeps" section of EXPERIMENTS.md for
//! the knob grammar).
//!
//! Robustness: `--inject seed=S,rate=P[,kinds=a+b]` turns on
//! deterministic fault injection (panics, transient errors, stalls,
//! torn cache writes, bit flips — see `poise::faults`); the engine
//! retries transient failures with backoff, a watchdog cancels jobs
//! past `--set job_deadline=<secs>`, and corrupt cache entries are
//! quarantined and re-run. Failed points render as `MISSING` cells and
//! every troubled job's attempt history lands in
//! `results/run_all_failures.txt` (prose) and
//! `results/run_all_failures.jsonl` (machine-readable, one JSON object
//! per troubled job with worker attribution). `--fsck` re-validates the
//! whole cache offline and reclaims orphaned worker leases. Exit codes:
//! 0 clean, 1 hard failures, 3 pass after self-healing, 4 timeout-only
//! failures (see "Failure handling & fault injection" in
//! EXPERIMENTS.md).
//!
//! Distributed sweeps: `--workers N` drains the job graph cooperatively
//! across N worker processes sharing `results/cache/` via crash-safe
//! lease files — dead workers' claims are stolen by survivors, and the
//! coordinator's final in-process pass keeps the exit-code contract.
//! `--worker [--fabric-dir D] [--worker-id ID]` runs one standalone
//! worker (joining from another terminal or host sharing the
//! filesystem). See "Distributed sweeps" in EXPERIMENTS.md.
//!
//! Sweep daemon: `--connect [<socket>]` submits the plan to a running
//! `poised` service instead of executing locally — the daemon admits,
//! coalesces and schedules concurrent clients' plans over the same
//! lease fabric, streams per-job progress back, and this process then
//! renders from the daemon-warmed shared cache (byte-identical
//! outputs). `--client`/`--priority` tag the submission; `--status`,
//! `--daemon-cancel <id>` and `--daemon-shutdown [now]` manage the
//! service. See "The sweep daemon" in EXPERIMENTS.md.
//!
//! The legacy effort-knob environment variables (`POISE_SMS`,
//! `POISE_KERNELS_CAP`, `POISE_TRAIN_CAP`, `POISE_RUN_CYCLES`) are
//! deprecated aliases feeding the same knob overlay; `--set` wins.
//! `POISE_RERUN=1` bypasses the result cache wholesale, `POISE_RETRAIN=1`
//! re-runs training only. Editing any job input (kernel specs, schemes,
//! parameters, machine configuration) invalidates exactly the affected
//! cache entries, so these escape hatches are rarely needed.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    poise_bench::figures::run_all_main(&args)
}
