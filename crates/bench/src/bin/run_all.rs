//! Run every table/figure regenerator in sequence, writing each output
//! under `results/`. This is the one-command reproduction of the paper's
//! evaluation section; see EXPERIMENTS.md for the paper-vs-measured
//! record.
//!
//! Effort knobs (environment): `POISE_SMS` (default 8), `POISE_KERNELS_CAP`
//! (default 5), `POISE_TRAIN_CAP` (default 16), `POISE_RUN_CYCLES`
//! (default 450000), `POISE_RERUN=1` / `POISE_RETRAIN=1` to invalidate
//! caches.

use std::process::Command;

fn main() {
    let bins = [
        "table4_params",
        "table_hw_cost",
        "table2_weights",
        "fig04_hit_rates",
        "fig02_pitfalls",
        "fig05_scoring",
        "table3_workloads",
        "fig07_performance",
        "fig08_l1_hit_rate",
        "fig09_aml",
        "fig10_displacement",
        "fig14_energy",
        "prediction_error",
        "fig16_insensitive",
        "fig15_alternatives",
        "fig17_case_study",
        "fig11_stride",
        "fig12_cache_size",
        "fig13_feature_ablation",
        "ablation_mshr",
        "ablation_epoch",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let t0 = std::time::Instant::now();
    for bin in bins {
        println!("\n===== {bin} =====");
        let status = Command::new(exe_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("[run_all] {bin} FAILED ({status})");
            std::process::exit(1);
        }
        println!(
            "[run_all] {bin} done ({:.0}s elapsed total)",
            t0.elapsed().as_secs_f64()
        );
    }
    println!(
        "\n[run_all] all experiments complete in {:.0}s; outputs in results/",
        t0.elapsed().as_secs_f64()
    );
}
