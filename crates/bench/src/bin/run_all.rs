//! One-command reproduction of the paper's evaluation section, writing
//! each output under `results/`; see EXPERIMENTS.md for the engine, the
//! cache layout and the paper-vs-measured record.
//!
//! Every registered figure declares its simulation jobs up front; the
//! unified experiment engine executes the deduplicated set once across
//! the host's cores (answering repeats from the content-addressed cache
//! in `results/cache/`), then every figure renders from the shared
//! results — replacing the old 21-process serial harness.
//!
//! Flags: `--keep-going` (render every figure even after failures, then
//! summarise), `--only <a,b,...>`, `--list`, `--gc` (prune cache entries
//! the current job set no longer references).
//!
//! Effort knobs (environment): `POISE_SMS` (default 8),
//! `POISE_KERNELS_CAP` (default 3), `POISE_TRAIN_CAP` (default 8),
//! `POISE_RUN_CYCLES` (default 400000); `POISE_RERUN=1` bypasses the
//! result cache wholesale, `POISE_RETRAIN=1` re-runs training only.
//! Editing any job input (kernel specs, schemes, parameters, machine
//! configuration) invalidates exactly the affected cache entries, so
//! these escape hatches are rarely needed.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    poise_bench::figures::run_all_main(&args)
}
