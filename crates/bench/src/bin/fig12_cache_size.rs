//! Fig. 12 — Poise with 16/32/64 KB linearly-indexed L1 caches, using the
//! weights trained on the 16 KB hash-indexed baseline, normalised to the
//! GTO baseline of each cache size. Paper: +48% at 16 KB, still +36.7%
//! at 64 KB — the model transfers across architectural changes.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("fig12_cache_size")
}
