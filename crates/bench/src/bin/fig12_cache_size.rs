//! Fig. 12 — Poise with 16/32/64 KB linearly-indexed L1 caches, using the
//! weights trained on the 16 KB hash-indexed baseline, normalised to the
//! GTO baseline of each cache size. Paper: +48% at 16 KB, still +36.7%
//! at 64 KB — the model transfers across architectural changes.

use gpu_sim::SetIndexing;
use poise::experiment::{self, harmonic_mean, Scheme};
use poise_bench::*;
use workloads::evaluation_suite;

fn main() {
    let base_setup = setup();
    let model = load_or_train_model(&base_setup);
    let scales = [(1usize, "16KB"), (2, "32KB"), (4, "64KB")];

    let mut table = Vec::new();
    let mut per_scale: Vec<Vec<f64>> = vec![Vec::new(); scales.len()];
    for bench in evaluation_suite() {
        let mut row = vec![bench.name.clone()];
        for (si, &(scale, label)) in scales.iter().enumerate() {
            let mut s = base_setup.clone();
            s.cfg = s
                .cfg
                .clone()
                .with_l1_scale(scale)
                .with_l1_indexing(SetIndexing::Linear);
            eprintln!("[bench] {} @ {label} linear L1...", bench.name);
            let gto = experiment::run_benchmark(&bench, Scheme::Gto, &model, &s);
            let poise = experiment::run_benchmark(&bench, Scheme::Poise, &model, &s);
            let v = poise.ipc / gto.ipc;
            per_scale[si].push(v);
            row.push(cell(v, 3));
        }
        table.push(row);
    }
    let mut hmean = vec!["H-Mean".to_string()];
    for sp in &per_scale {
        hmean.push(cell(harmonic_mean(sp), 3));
    }
    table.push(hmean);
    emit_table(
        "fig12_cache_size.txt",
        "Fig. 12 — Poise IPC vs GTO with linear-indexed L1 of 16/32/64 KB",
        &["bench", "Poise+16KB", "Poise+32KB", "Poise+64KB"],
        &table,
    );
}
