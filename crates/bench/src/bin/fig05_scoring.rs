//! Fig. 5 — the Eq. 12 scoring system on two ii-family kernels: the raw
//! best-performance peak versus the best-*scored* peak that avoids
//! performance cliffs. Paper: kernel #34 moves (6,5)@+8% → (8,8)@+6%;
//! kernel #35 moves (11,4)@+15% → (7,6)@+14%.

use poise::profiler::{profile_grid, GridSpec};
use poise_bench::*;
use poise_ml::ScoringWeights;
use workloads::evaluation_suite;

fn main() {
    let setup = setup();
    let bench = evaluation_suite()
        .into_iter()
        .find(|b| b.name == "ii")
        .expect("ii benchmark");
    let mut rows = Vec::new();
    let mut grids = String::new();
    for kernel in [&bench.kernels[2], &bench.kernels[4]] {
        eprintln!("[bench] profiling {} over the full grid...", kernel.name);
        // Full triangle at the hardware scheduler capacity, affordable
        // since the per-SM decoupled core.
        let max_n = setup
            .cfg
            .max_warps_per_scheduler
            .min(kernel.warps_per_scheduler);
        let grid = profile_grid(
            kernel,
            &setup.cfg,
            &GridSpec::full(max_n),
            setup.profile_window,
        );
        let (perf_t, perf_s) = grid.best_performance().expect("profiled");
        let (score_t, _) = grid
            .best_scored(&ScoringWeights::default())
            .expect("scored");
        let score_s = grid.get(score_t.n, score_t.p).unwrap_or(1.0);
        rows.push(vec![
            kernel.name.clone(),
            format!("{perf_t}"),
            cell(perf_s, 3),
            format!("{score_t}"),
            cell(score_s, 3),
        ]);
        grids.push_str(&format!("== {} ==\n{}", kernel.name, render_grid(&grid)));
    }
    emit_table(
        "fig05_scoring.txt",
        "Fig. 5 — max-performance vs max-score tuples (speedup vs GTO)",
        &["kernel", "perf tuple", "speedup", "score tuple", "speedup"],
        &rows,
    );
    std::fs::write(results_dir().join("fig05_grids.txt"), grids).expect("write");
}
