//! Fig. 5 — the Eq. 12 scoring system on two ii-family kernels: the raw
//! best-performance peak versus the best-*scored* peak that avoids
//! performance cliffs. Paper: kernel #34 moves (6,5)@+8% → (8,8)@+6%;
//! kernel #35 moves (11,4)@+15% → (7,6)@+14%.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("fig05_scoring")
}
