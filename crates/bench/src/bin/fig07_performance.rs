//! Fig. 7 — IPC of SWL, PCAL-SWL, Poise and Static-Best normalised to the
//! GTO baseline across the eleven evaluation benchmarks, plus the
//! harmonic mean. Paper headline: Poise +46.6% H-mean (up to 2.94x on
//! mm), SWL +21.8%, PCAL-SWL +31.5%, Static-Best +52.8%.

use poise::experiment::harmonic_mean;
use poise_bench::*;

fn main() {
    let setup = setup();
    let model = load_or_train_model(&setup);
    let rows = main_comparison(&setup, &model);
    let schemes = ["GTO", "SWL", "PCAL-SWL", "Poise", "Static-Best"];
    let mut table = Vec::new();
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for bench in bench_order() {
        let gto = metric(&rows, &bench, "GTO", |r| r.ipc);
        let mut row = vec![bench.clone()];
        for (i, s) in schemes.iter().enumerate() {
            let v = metric(&rows, &bench, s, |r| r.ipc) / gto;
            speedups[i].push(v);
            row.push(cell(v, 3));
        }
        table.push(row);
    }
    let mut hmean = vec!["H-Mean".to_string()];
    for sp in &speedups {
        hmean.push(cell(harmonic_mean(sp), 3));
    }
    table.push(hmean);
    emit_table(
        "fig07_performance.txt",
        "Fig. 7 — IPC normalised to GTO",
        &["bench", "GTO", "SWL", "PCAL-SWL", "Poise", "Static-Best"],
        &table,
    );
}
