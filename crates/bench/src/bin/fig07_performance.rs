//! Fig. 7 — IPC of SWL, PCAL-SWL, Poise and Static-Best normalised to the
//! GTO baseline across the eleven evaluation benchmarks, plus the
//! harmonic mean. Paper headline: Poise +46.6% H-mean (up to 2.94x on
//! mm), SWL +21.8%, PCAL-SWL +31.5%, Static-Best +52.8%.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("fig07_performance")
}
