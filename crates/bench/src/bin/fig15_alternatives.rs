//! Fig. 15 — Poise against APCM-style cache bypassing and random-restart
//! stochastic search, normalised to GTO. Paper: Poise beats APCM by
//! +39.5% and random-restart by +22.4% on average.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("fig15_alternatives")
}
