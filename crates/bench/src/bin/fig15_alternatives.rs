//! Fig. 15 — Poise against APCM-style cache bypassing and random-restart
//! stochastic search, normalised to GTO. Paper: Poise beats APCM by
//! +39.5% and random-restart by +22.4% on average.

use poise::experiment::{self, harmonic_mean, Scheme};
use poise_bench::*;
use workloads::evaluation_suite;

fn main() {
    let setup = setup();
    let model = load_or_train_model(&setup);
    let cached = main_comparison(&setup, &model);
    let schemes = [Scheme::Apcm, Scheme::RandomRestart];

    let mut table = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for bench in evaluation_suite() {
        let gto = metric(&cached, &bench.name, "GTO", |r| r.ipc);
        let poise = metric(&cached, &bench.name, "Poise", |r| r.ipc) / gto;
        let mut row = vec![bench.name.clone()];
        for (i, &scheme) in schemes.iter().enumerate() {
            eprintln!("[bench] {} under {}...", bench.name, scheme.name());
            let r = experiment::run_benchmark(&bench, scheme, &model, &setup);
            let v = r.ipc / gto;
            cols[i].push(v);
            row.push(cell(v, 3));
        }
        cols[2].push(poise);
        row.push(cell(poise, 3));
        table.push(row);
    }
    let mut hmean = vec!["H-Mean".to_string()];
    for c in &cols {
        hmean.push(cell(harmonic_mean(c), 3));
    }
    table.push(hmean);
    emit_table(
        "fig15_alternatives.txt",
        "Fig. 15 — APCM and random-restart vs Poise (IPC normalised to GTO)",
        &["bench", "APCM", "Random-restart", "Poise"],
        &table,
    );
}
