//! Fig. 13 — leave-one-feature-out ablation: retrain the regression with
//! one feature removed (x3..x7), run Poise *without local search* so the
//! raw prediction quality shows, and report IPC normalised to the
//! all-features model. Paper: removing x6 hurts most (−21.7% H-mean),
//! x7 least (−1.5%); x1/x2 are omitted as they are represented in x7.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("fig13_feature_ablation")
}
