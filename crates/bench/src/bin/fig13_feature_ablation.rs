//! Fig. 13 — leave-one-feature-out ablation: retrain the regression with
//! one feature removed (x3..x7), run Poise *without local search* so the
//! raw prediction quality shows, and report IPC normalised to the
//! all-features model. Paper: removing x6 hurts most (−21.7% H-mean),
//! x7 least (−1.5%); x1/x2 are omitted as they are represented in x7.

use poise::experiment::{self, harmonic_mean, Scheme};
use poise::train;
use poise_bench::*;
use workloads::{evaluation_suite, training_suite};

fn main() {
    let base_setup = setup();
    // No local search: strides (0,0), so prediction accuracy is exposed.
    let mut s = base_setup.clone();
    s.params = s.params.with_strides(0, 0);

    let kernels: Vec<workloads::KernelSpec> = training_suite()
        .iter()
        .flat_map(|b| b.capped(s.train_cap_per_benchmark).kernels)
        .collect();

    // drop index: feature x_i is index i-1 in the vector.
    let variants: Vec<(String, Vec<usize>)> = std::iter::once(("all".to_string(), vec![]))
        .chain((3..=7).rev().map(|i| (format!("-x{i}"), vec![i - 1])))
        .collect();

    let mut models = Vec::new();
    for (name, drop) in &variants {
        eprintln!("[bench] training variant {name}...");
        models.push(train::train_on_kernels(&kernels, &s, drop));
    }

    let mut table = Vec::new();
    let mut per_variant: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for bench in evaluation_suite() {
        eprintln!("[bench] {} ablation runs...", bench.name);
        let mut ipcs = Vec::new();
        for m in &models {
            let r = experiment::run_benchmark(&bench, Scheme::Poise, m, &s);
            ipcs.push(r.ipc);
        }
        let all = ipcs[0];
        let mut row = vec![bench.name.clone()];
        for (vi, ipc) in ipcs.iter().enumerate() {
            let v = ipc / all;
            per_variant[vi].push(v);
            row.push(cell(v, 3));
        }
        table.push(row);
    }
    let mut hmean = vec!["H-Mean".to_string()];
    for pv in &per_variant {
        hmean.push(cell(harmonic_mean(pv), 3));
    }
    table.push(hmean);
    let header: Vec<&str> = std::iter::once("bench")
        .chain(variants.iter().map(|(n, _)| n.as_str()))
        .collect();
    emit_table(
        "fig13_feature_ablation.txt",
        "Fig. 13 — IPC normalised to the all-features model (no local search)",
        &header,
        &table,
    );
}
