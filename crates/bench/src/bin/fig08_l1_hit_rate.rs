//! Fig. 8 — absolute L1 hit rate (%) per scheme with the arithmetic mean.
//! Paper: GTO 20.6%, PCAL-SWL 27.1%, SWL 37.7%, Poise 40.1%,
//! Static-Best 43.6%.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("fig08_l1_hit_rate")
}
