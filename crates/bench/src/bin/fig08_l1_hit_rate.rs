//! Fig. 8 — absolute L1 hit rate (%) per scheme with the arithmetic mean.
//! Paper: GTO 20.6%, PCAL-SWL 27.1%, SWL 37.7%, Poise 40.1%,
//! Static-Best 43.6%.

use poise::experiment::arithmetic_mean;
use poise_bench::*;

fn main() {
    let setup = setup();
    let model = load_or_train_model(&setup);
    let rows = main_comparison(&setup, &model);
    let schemes = ["GTO", "SWL", "PCAL-SWL", "Poise", "Static-Best"];
    let mut table = Vec::new();
    let mut rates: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for bench in bench_order() {
        let mut row = vec![bench.clone()];
        for (i, s) in schemes.iter().enumerate() {
            let v = metric(&rows, &bench, s, |r| r.l1_hit_rate) * 100.0;
            rates[i].push(v);
            row.push(cell(v, 1));
        }
        table.push(row);
    }
    let mut amean = vec!["A-Mean".to_string()];
    for r in &rates {
        amean.push(cell(arithmetic_mean(r), 1));
    }
    table.push(amean);
    emit_table(
        "fig08_l1_hit_rate.txt",
        "Fig. 8 — absolute L1 hit rate (%)",
        &["bench", "GTO", "SWL", "PCAL-SWL", "Poise", "Static-Best"],
        &table,
    );
}
