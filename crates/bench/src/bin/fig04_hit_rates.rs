//! Fig. 4 — L1 hit-rate decomposition at `(N, p) = (24, 1)` for the four
//! characterisation kernels: hit rate of the `p` polluting warps (`hp`),
//! of the `N − p` non-polluting warps (`hnp`), the baseline net rate
//! (`ho`), the intra-/inter-warp split of baseline hits, and the measured
//! per-warp reuse distance `R`.
//!
//! Paper values: ii 97%/3% R=236; bfs 77%/23% R=1136; syr2k 40%/60%
//! R=240; cfd 2%/98% R=3161.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("fig04_hit_rates")
}
