//! Fig. 4 — L1 hit-rate decomposition at `(N, p) = (24, 1)` for the four
//! characterisation kernels: hit rate of the `p` polluting warps (`hp`),
//! of the `N − p` non-polluting warps (`hnp`), the baseline net rate
//! (`ho`), the intra-/inter-warp split of baseline hits, and the measured
//! per-warp reuse distance `R`.
//!
//! Paper values: ii 97%/3% R=236; bfs 77%/23% R=1136; syr2k 40%/60%
//! R=240; cfd 2%/98% R=3161.

use gpu_sim::WarpTuple;
use poise::profiler::{run_tuple, ProfileWindow};
use poise_bench::*;
use workloads::fig4_kernels;

fn main() {
    let setup = setup();
    let mut cfg = setup.cfg.clone();
    cfg.track_reuse_distance = true;
    let window = ProfileWindow {
        warmup: setup.profile_window.warmup,
        measure: setup.profile_window.measure * 2,
    };
    let mut rows = Vec::new();
    for kernel in fig4_kernels() {
        eprintln!("[bench] characterising {}...", kernel.name);
        let base = run_tuple(&kernel, &cfg, WarpTuple::max(24), window);
        let reduced = run_tuple(&kernel, &cfg, WarpTuple::new(24, 1, 24), window);
        let b = &base.window;
        let r = &reduced.window;
        let hits = (b.l1_hits).max(1) as f64;
        rows.push(vec![
            kernel.name.clone(),
            cell(r.polluting_hit_rate(), 3),
            cell(r.non_polluting_hit_rate(), 3),
            cell(b.l1_hit_rate(), 3),
            cell(100.0 * b.l1_intra_hits as f64 / hits, 0),
            cell(100.0 * b.l1_inter_hits as f64 / hits, 0),
            cell(b.reuse_distance(), 0),
        ]);
    }
    emit_table(
        "fig04_hit_rates.txt",
        "Fig. 4 — L1 hit rates at (24, 1): hp, hnp, baseline ho, \
         intra/inter share of baseline hits (%), reuse distance R (lines)",
        &["kernel", "hp", "hnp", "ho", "intra%", "inter%", "R"],
        &rows,
    );
}
