//! Fig. 10 — absolute displacement between Poise's predicted and
//! locally-searched warp-tuples, per benchmark, plus arithmetic means.
//! Paper: mean |ΔN| 1.02, |Δp| 0.87, Euclidean 1.59 — i.e. the search
//! converges about one warp away from the prediction.

use poise::experiment::arithmetic_mean;
use poise_bench::*;

fn main() {
    let setup = setup();
    let model = load_or_train_model(&setup);
    let rows = main_comparison(&setup, &model);
    let mut table = Vec::new();
    let (mut dns, mut dps, mut des) = (Vec::new(), Vec::new(), Vec::new());
    for bench in bench_order() {
        let dn = metric(&rows, &bench, "Poise", |r| r.disp_n);
        let dp = metric(&rows, &bench, "Poise", |r| r.disp_p);
        let de = metric(&rows, &bench, "Poise", |r| r.disp_euclid);
        dns.push(dn);
        dps.push(dp);
        des.push(de);
        table.push(vec![bench, cell(dn, 2), cell(dp, 2), cell(de, 2)]);
    }
    table.push(vec![
        "A-Mean".to_string(),
        cell(arithmetic_mean(&dns), 2),
        cell(arithmetic_mean(&dps), 2),
        cell(arithmetic_mean(&des), 2),
    ]);
    emit_table(
        "fig10_displacement.txt",
        "Fig. 10 — displacement between predicted and converged tuples",
        &["bench", "N-axis", "p-axis", "Euclidean"],
        &table,
    );
}
