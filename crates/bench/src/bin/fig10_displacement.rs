//! Fig. 10 — absolute displacement between Poise's predicted and
//! locally-searched warp-tuples, per benchmark, plus arithmetic means.
//! Paper: mean |ΔN| 1.02, |Δp| 0.87, Euclidean 1.59 — i.e. the search
//! converges about one warp away from the prediction.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("fig10_displacement")
}
