//! Design-choice ablation (DESIGN.md §9): MSHR count sweep.
//!
//! Equation 1 models effective memory latency as
//! `Tmem = Lo × ceil(N·mo / Kmshr)` — memory-level parallelism is
//! quantised by the MSHR file. Sweeping `Kmshr` at the GTO baseline shows
//! the effect directly: fewer MSHRs raise stall time and depress IPC,
//! and the returns of adding MSHRs diminish once the DRAM bandwidth
//! bound takes over.

use gpu_sim::{FixedTuple, Gpu};
use poise_bench::*;
use workloads::evaluation_suite;

fn main() {
    let setup = setup();
    let bench = evaluation_suite()
        .into_iter()
        .find(|b| b.name == "ii")
        .expect("ii");
    let kernel = &bench.kernels[0];
    let mut rows = Vec::new();
    for mshrs in [4usize, 8, 16, 32, 64] {
        let mut cfg = setup.cfg.clone();
        cfg.l1_mshrs = mshrs;
        let mut gpu = Gpu::new(cfg, kernel);
        let mut ctrl = FixedTuple::max();
        gpu.run(&mut ctrl, 60_000);
        let c = gpu.stats().total;
        rows.push(vec![
            mshrs.to_string(),
            cell(c.ipc(), 3),
            cell(c.aml(), 0),
            c.l1_rejects.to_string(),
        ]);
    }
    emit_table(
        "ablation_mshr.txt",
        "Ablation — MSHR count at the GTO baseline (ii), Eq. 1's MLP term",
        &["Kmshr", "IPC", "AML", "rejects"],
        &rows,
    );
}
