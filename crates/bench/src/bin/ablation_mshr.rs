//! Design-choice ablation (DESIGN.md §9): MSHR count sweep.
//!
//! Equation 1 models effective memory latency as
//! `Tmem = Lo × ceil(N·mo / Kmshr)` — memory-level parallelism is
//! quantised by the MSHR file. Sweeping `Kmshr` at the GTO baseline shows
//! the effect directly: fewer MSHRs raise stall time and depress IPC,
//! and the returns of adding MSHRs diminish once the DRAM bandwidth
//! bound takes over.
//!
//! Thin shim over the registered figure of the same name: declares its
//! jobs to the unified experiment engine (cache-backed, shared with
//! `run_all`) and renders from the results. See `poise_bench::figures`.

use std::process::ExitCode;

fn main() -> ExitCode {
    poise_bench::figures::figure_main("ablation_mshr")
}
