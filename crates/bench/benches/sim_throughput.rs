//! `sim_throughput`: simulated cycles per wall-clock second, the tracked
//! perf number for the simulator core.
//!
//! Reports the event-driven and cycle-stepped reference loops side by
//! side on the two regimes that bracket the design space:
//!
//! * **memory-bound** (streaming, N = 1): every vital warp blocks on its
//!   outstanding load almost immediately — the fast-forward sweet spot
//!   and, per the paper, the regime Poise's evaluation lives in;
//! * **compute-bound** (long ALU stretches at full occupancy): the
//!   fast-forward worst case (it almost never triggers), bounding the
//!   overhead of the readiness bookkeeping.
//!
//! Also times `profile_grid` on a coarse(24) grid end-to-end, since that
//! is the harness path every figure regeneration pays.
//!
//! Run with: `cargo bench -p poise-bench --bench sim_throughput`

use std::time::Instant;

use gpu_sim::{FixedTuple, Gpu, GpuConfig, StepMode, UniformKernel, WarpTuple};
use poise::profiler::{profile_grid, GridSpec, ProfileWindow};
use workloads::{AccessMix, KernelSpec};

const BUDGET: u64 = 400_000;
const SAMPLES: usize = 5;

fn cycles_per_second(kernel: &UniformKernel, tuple: WarpTuple, mode: StepMode) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..SAMPLES {
        let mut cfg = GpuConfig::scaled(4);
        cfg.step_mode = mode;
        let mut gpu = Gpu::new(cfg, kernel);
        let mut ctrl = FixedTuple::new(tuple);
        let t = Instant::now();
        let res = gpu.run(&mut ctrl, BUDGET);
        let rate = res.counters.cycles as f64 / t.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2} Gcyc/s", r / 1e9)
    } else {
        format!("{:.1} Mcyc/s", r / 1e6)
    }
}

fn report(name: &str, kernel: &UniformKernel, tuple: WarpTuple) {
    let ev = cycles_per_second(kernel, tuple, StepMode::EventDriven);
    let rf = cycles_per_second(kernel, tuple, StepMode::Reference);
    println!(
        "sim_throughput/{name:<24} event-driven {:>14}   reference {:>14}   speedup {:>5.2}x",
        fmt_rate(ev),
        fmt_rate(rf),
        ev / rf
    );
}

fn profile_grid_end_to_end() {
    let spec = KernelSpec::steady("bench-grid", AccessMix::memory_sensitive(), 13);
    let window = ProfileWindow::default();
    let time_mode = |mode: StepMode| {
        let mut cfg = GpuConfig::scaled(2);
        cfg.step_mode = mode;
        let mut best = f64::INFINITY;
        let mut points = 0;
        for _ in 0..3 {
            let t = Instant::now();
            let grid = profile_grid(&spec, &cfg, &GridSpec::coarse(24), window);
            best = best.min(t.elapsed().as_secs_f64());
            points = grid.iter().count();
        }
        (best, points)
    };
    let (ev, points) = time_mode(StepMode::EventDriven);
    let (rf, _) = time_mode(StepMode::Reference);
    println!(
        "sim_throughput/profile_grid-coarse24     {points} points   \
         event-driven {ev:.2}s   reference {rf:.2}s   speedup {:>5.2}x",
        rf / ev
    );
}

fn main() {
    // Memory-bound: one streaming warp, no ALU padding.
    report(
        "mem-bound-stream-n1",
        &UniformKernel::streaming(1, 0),
        WarpTuple::new(1, 1, 24),
    );
    // Memory-bound at modest occupancy: still stall-dominated.
    report(
        "mem-bound-stream-n4",
        &UniformKernel::streaming(4, 2),
        WarpTuple::new(4, 4, 24),
    );
    // Compute-bound: long ALU stretches, full occupancy.
    report(
        "compute-bound",
        &UniformKernel::streaming(16, 40),
        WarpTuple::new(16, 16, 24),
    );
    profile_grid_end_to_end();
}
