//! `sim_throughput`: simulated cycles per wall-clock second, the tracked
//! perf number for the simulator core.
//!
//! Reports the per-SM decoupled loop, the global event-driven loop and
//! the cycle-stepped reference side by side on the regimes that bracket
//! the design space:
//!
//! * **memory-bound, low occupancy** (streaming, N = 1/4): every vital
//!   warp blocks on its outstanding load almost immediately — the regime
//!   the global skip already handles well;
//! * **memory-bound, high occupancy** (streaming, N = 16): many warps per
//!   scheduler keep *some* SM busy at every instant, so the global skip
//!   collapses to stepping while the per-SM loop still skips each SM's
//!   own stalls — the regime `StepMode::PerSm` exists for;
//! * **compute-bound** (long ALU stretches at full occupancy): the
//!   fast-forward worst case (skips almost never trigger), bounding the
//!   overhead of the readiness/horizon bookkeeping.
//!
//! Each workload additionally ladders `StepMode::ParallelSm` over
//! `sim_threads` ∈ {1, 2, 4, 8} against the single-threaded per-SM
//! loop, reporting speedup and parallel efficiency next to the host's
//! core count (the ladder is only meaningful on multi-core hosts).
//!
//! Also times `profile_grid` on a coarse(24) grid end-to-end, and the
//! experiment engine (`poise::jobs`) cold vs warm over a small job
//! graph, since those are the harness paths every figure regeneration
//! pays.
//!
//! Run with: `cargo bench -p poise-bench --bench sim_throughput`
//!
//! Flags (after `--`):
//!
//! * `--smoke` — one fast sample per point (CI smoke mode);
//! * `--json`  — additionally write machine-readable per-commit results
//!   to `results/sim_throughput.json` (the tracked perf trajectory).

use std::fmt::Write as _;
use std::time::Instant;

use gpu_sim::{FixedTuple, Gpu, GpuConfig, StepMode, UniformKernel, WarpTuple};
use poise::profiler::{profile_grid, GridSpec, ProfileWindow};
use poise_bench::results_dir;
use workloads::{AccessMix, KernelSpec};

const MODES: [(StepMode, &str); 3] = [
    (StepMode::PerSm, "per_sm"),
    (StepMode::EventDriven, "event_driven"),
    (StepMode::Reference, "reference"),
];

/// `sim_threads` points for the `StepMode::ParallelSm` ladder. The
/// 1-thread point measures the round-loop overhead of the parallel
/// path itself (the acceptance bar is a small single-digit regression
/// vs `PerSm`); higher points measure scaling up to the host's cores.
const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

struct Opts {
    smoke: bool,
    json: bool,
}

impl Opts {
    fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Opts {
            smoke: args.iter().any(|a| a == "--smoke"),
            json: args.iter().any(|a| a == "--json"),
        }
    }

    fn budget(&self) -> u64 {
        if self.smoke {
            120_000
        } else {
            400_000
        }
    }

    fn samples(&self) -> usize {
        if self.smoke {
            1
        } else {
            5
        }
    }

    fn grid_reps(&self) -> usize {
        if self.smoke {
            1
        } else {
            3
        }
    }
}

/// Per-mode result of one workload point: best-of-N throughput plus the
/// per-SM fast-forward totals of the last run (spans, skipped SM-cycles,
/// horizon stalls) — the "why didn't this skip?" diagnostics.
struct ModeResult {
    rate: f64,
    ff: (u64, u64, u64),
}

/// Cycles per second of one (kernel, tuple, mode) point: best of N runs.
fn cycles_per_second(
    kernel: &UniformKernel,
    tuple: WarpTuple,
    sms: usize,
    mode: StepMode,
    sim_threads: usize,
    opts: &Opts,
) -> ModeResult {
    let mut best = 0.0f64;
    let mut ff = (0, 0, 0);
    for _ in 0..opts.samples() {
        let mut cfg = GpuConfig::scaled(sms);
        cfg.step_mode = mode;
        cfg.sim_threads = sim_threads;
        let mut gpu = Gpu::new(cfg, kernel);
        let mut ctrl = FixedTuple::new(tuple);
        let t = Instant::now();
        let res = gpu.run(&mut ctrl, opts.budget());
        let rate = res.counters.cycles as f64 / t.elapsed().as_secs_f64();
        best = best.max(rate);
        ff = gpu.fast_forward_breakdown().iter().fold((0, 0, 0), |a, f| {
            (a.0 + f.spans, a.1 + f.skipped, a.2 + f.horizon_stalls)
        });
    }
    ModeResult { rate: best, ff }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2} Gcyc/s", r / 1e9)
    } else {
        format!("{:.1} Mcyc/s", r / 1e6)
    }
}

struct WorkloadResult {
    name: &'static str,
    /// Simulated machine size (SMs).
    sms: usize,
    /// cycles/sec per mode, in `MODES` order.
    rates: [f64; 3],
    /// cycles/sec of `StepMode::ParallelSm` per `THREAD_LADDER` point.
    parallel_rates: [f64; THREAD_LADDER.len()],
    /// Per-SM fast-forward totals of the per-SM mode run:
    /// (spans, skipped SM-cycles, horizon stalls).
    per_sm_ff: (u64, u64, u64),
}

impl WorkloadResult {
    fn speedup_vs_reference(&self) -> f64 {
        self.rates[0] / self.rates[2]
    }

    fn speedup_vs_event_driven(&self) -> f64 {
        self.rates[0] / self.rates[1]
    }

    /// ParallelSm throughput at ladder point `i` relative to the
    /// single-threaded PerSm loop.
    fn parallel_speedup(&self, i: usize) -> f64 {
        self.parallel_rates[i] / self.rates[0]
    }
}

fn report(
    name: &'static str,
    kernel: &UniformKernel,
    tuple: WarpTuple,
    sms: usize,
    opts: &Opts,
) -> WorkloadResult {
    let mut rates = [0.0; 3];
    let mut per_sm_ff = (0, 0, 0);
    for (i, (mode, _)) in MODES.iter().enumerate() {
        let r = cycles_per_second(kernel, tuple, sms, *mode, 1, opts);
        rates[i] = r.rate;
        if *mode == StepMode::PerSm {
            per_sm_ff = r.ff;
        }
    }
    let mut parallel_rates = [0.0; THREAD_LADDER.len()];
    for (i, &t) in THREAD_LADDER.iter().enumerate() {
        parallel_rates[i] =
            cycles_per_second(kernel, tuple, sms, StepMode::ParallelSm, t, opts).rate;
    }
    println!(
        "sim_throughput/{name:<24} per-sm {:>14}   event-driven {:>14}   reference {:>14}   \
         per-sm vs ref {:>6.2}x   vs event {:>5.2}x",
        fmt_rate(rates[0]),
        fmt_rate(rates[1]),
        fmt_rate(rates[2]),
        rates[0] / rates[2],
        rates[0] / rates[1],
    );
    println!(
        "    per-sm breakdown: {} spans, {} skipped SM-cycles, {} horizon stalls",
        per_sm_ff.0, per_sm_ff.1, per_sm_ff.2
    );
    let ladder = THREAD_LADDER
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            format!(
                "t{t} {} ({:.2}x)",
                fmt_rate(parallel_rates[i]),
                parallel_rates[i] / rates[0]
            )
        })
        .collect::<Vec<_>>()
        .join("   ");
    println!("    parallel-sm ladder (vs per-sm): {ladder}");
    WorkloadResult {
        name,
        sms,
        rates,
        parallel_rates,
        per_sm_ff,
    }
}

struct GridResult {
    points: usize,
    /// Wall-clock seconds per mode, in `MODES` order.
    seconds: [f64; 3],
}

fn profile_grid_end_to_end(opts: &Opts) -> GridResult {
    let spec: workloads::Workload =
        KernelSpec::steady("bench-grid", AccessMix::memory_sensitive(), 13).into();
    let window = ProfileWindow::default();
    let mut seconds = [0.0; 3];
    let mut points = 0;
    for (i, (mode, _)) in MODES.iter().enumerate() {
        let mut cfg = GpuConfig::scaled(2);
        cfg.step_mode = *mode;
        let mut best = f64::INFINITY;
        for _ in 0..opts.grid_reps() {
            let t = Instant::now();
            let grid = profile_grid(&spec, &cfg, &GridSpec::coarse(24), window);
            best = best.min(t.elapsed().as_secs_f64());
            points = grid.iter().count();
        }
        seconds[i] = best;
    }
    println!(
        "sim_throughput/profile_grid-coarse24     {points} points   per-sm {:.2}s   \
         event-driven {:.2}s   reference {:.2}s   per-sm vs ref {:>5.2}x   vs event {:>5.2}x",
        seconds[0],
        seconds[1],
        seconds[2],
        seconds[2] / seconds[0],
        seconds[1] / seconds[0],
    );
    GridResult { points, seconds }
}

struct EngineResult {
    jobs: usize,
    cold_seconds: f64,
    warm_seconds: f64,
}

/// Cold vs warm pass of the experiment engine over a small scheme ×
/// kernel job graph (1-SM machine, short budgets): the cold figure
/// tracks per-job orchestration overhead on top of the simulations, the
/// warm figure the cost of answering the whole graph from the
/// content-addressed cache.
fn engine_end_to_end() -> EngineResult {
    use poise::experiment::{Scheme, Setup};
    use poise::jobs::{Engine, KernelRunSpec, SimJob};

    let dir = std::env::temp_dir().join(format!("poise-sim-throughput-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut engine = Engine::new(&dir);
    engine.quiet = true;
    let setup = Setup::for_tests();
    let mut jobs = Vec::new();
    for i in 0..4 {
        let spec: workloads::Workload = KernelSpec::steady(
            format!("engine-bench-{i}"),
            AccessMix::memory_sensitive(),
            i,
        )
        .into();
        for s in [Scheme::Gto, Scheme::Swl] {
            jobs.push(SimJob::Run(KernelRunSpec::new(&spec, s, &setup, None)));
        }
    }
    let t = Instant::now();
    let (_, cold) = engine.run(&jobs);
    let cold_seconds = t.elapsed().as_secs_f64();
    assert_eq!(cold.executed, cold.total, "cold pass must simulate");
    let t = Instant::now();
    let (_, warm) = engine.run(&jobs);
    let warm_seconds = t.elapsed().as_secs_f64();
    assert_eq!(warm.cache_hits, warm.total, "warm pass must hit");
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "sim_throughput/engine-smoke              {} jobs   cold {:.2}s   warm {:.3}s   \
         ({} sims cold, {} cache hits warm)",
        cold.total, cold_seconds, warm_seconds, cold.executed, warm.cache_hits,
    );
    EngineResult {
        jobs: cold.total,
        cold_seconds,
        warm_seconds,
    }
}

struct PrefixReuseResult {
    schemes: usize,
    horizons: usize,
    declared_jobs: usize,
    prefix_jobs: usize,
    prefix_shared: usize,
    /// Simulated epochs (cycles stepped by evaluation runs + prefixes),
    /// cold vs factored — the structural saving, independent of host.
    cold_epochs: u64,
    forked_epochs: u64,
    cold_seconds: f64,
    forked_seconds: f64,
    /// The two run stores agree byte-for-byte (modulo `# wall:` lines).
    stores_identical: bool,
}

/// Every durable cache entry under `dir`, keyed by file name, with the
/// wall-clock header line (the only legitimately nondeterministic byte
/// of an entry) stripped. Prefix blobs are excluded: they exist only in
/// the forked store by design.
fn normalized_cache_entries(dir: &std::path::Path) -> std::collections::BTreeMap<String, String> {
    let mut entries = std::collections::BTreeMap::new();
    let Ok(rd) = std::fs::read_dir(dir) else {
        return entries;
    };
    for entry in rd.flatten() {
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') || name.starts_with("prefix-") {
            continue;
        }
        let body = std::fs::read_to_string(&path).unwrap_or_default();
        let norm = body
            .lines()
            .filter(|l| !l.starts_with("# wall:"))
            .collect::<Vec<_>>()
            .join("\n");
        entries.insert(name, norm);
    }
    entries
}

/// Cold vs prefix-forked pass over a `run_cycles` ladder of every
/// scheme: the cold engine simulates each horizon from cycle 0, the
/// forked engine factors the ladder through `factor_prefixes` so each
/// scheme pays one simulation of the longest horizon (random-restart
/// never factors and stays cold on both sides — the honest comparison).
/// Model training and profiling run in both engines alike, so the
/// wall-clock ratio understates the epoch ratio by that shared cost.
fn prefix_reuse_end_to_end(opts: &Opts) -> PrefixReuseResult {
    use poise::experiment::{Scheme, Setup};
    use poise::jobs::{factor_prefixes, Engine, KernelRunSpec, ModelSpec, SimJob};

    let schemes = [
        Scheme::Gto,
        Scheme::Swl,
        Scheme::PcalSwl,
        Scheme::Poise,
        Scheme::StaticBest,
        Scheme::RandomRestart,
        Scheme::Apcm,
    ];
    let h = if opts.smoke { 3_000u64 } else { 10_000 };
    let horizons = [h, 2 * h, 3 * h, 4 * h];
    let mut setup = Setup::for_tests();
    setup.run_cycles = *horizons.last().unwrap();
    let model = ModelSpec::default_training(&setup);
    let spec: workloads::Workload =
        KernelSpec::steady("prefix-bench", AccessMix::memory_sensitive(), 5).into();
    let mut declared = Vec::new();
    for &s in &schemes {
        let ms = (s == Scheme::Poise).then_some(&model);
        for &cycles in &horizons {
            let mut r = KernelRunSpec::new(&spec, s, &setup, ms);
            r.run_cycles = cycles;
            declared.push(SimJob::Run(r));
        }
    }

    let cold_dir = std::env::temp_dir().join(format!("poise-prefix-cold-{}", std::process::id()));
    let fork_dir = std::env::temp_dir().join(format!("poise-prefix-fork-{}", std::process::id()));
    for d in [&cold_dir, &fork_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
    let mut cold_engine = Engine::new(&cold_dir);
    cold_engine.quiet = true;
    let t = Instant::now();
    let (_, cold) = cold_engine.run(&declared);
    let cold_seconds = t.elapsed().as_secs_f64();
    assert_eq!(cold.failed.len(), 0, "cold pass must succeed");

    let mut factored = declared.clone();
    let prefix_shared = factor_prefixes(&mut factored, 0);
    let mut fork_engine = Engine::new(&fork_dir);
    fork_engine.quiet = true;
    let t = Instant::now();
    let (_, fork) = fork_engine.run(&factored);
    let forked_seconds = t.elapsed().as_secs_f64();
    assert_eq!(fork.failed.len(), 0, "forked pass must succeed");

    // Simulated epochs: each job steps exactly its horizon minus the
    // deepest snapshot boundary it forks from (random-restart's seeded
    // reruns multiply both sides equally and are counted once).
    let span = |job: &SimJob| match job {
        SimJob::Run(r) | SimJob::Prefix(r) => {
            r.run_cycles - r.prefix_chain.last().copied().unwrap_or(0)
        }
        _ => 0,
    };
    let cold_epochs: u64 = declared.iter().map(&span).sum();
    let forked_epochs: u64 = factored.iter().map(&span).sum();

    let stores_identical =
        normalized_cache_entries(&cold_dir) == normalized_cache_entries(&fork_dir);
    for d in [&cold_dir, &fork_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
    let out = PrefixReuseResult {
        schemes: schemes.len(),
        horizons: horizons.len(),
        declared_jobs: declared.len(),
        prefix_jobs: factored.len() - declared.len(),
        prefix_shared,
        cold_epochs,
        forked_epochs,
        cold_seconds,
        forked_seconds,
        stores_identical,
    };
    println!(
        "sim_throughput/prefix-reuse              {} schemes x {} horizons   cold {:.2}s   \
         forked {:.2}s ({:.2}x)   epochs {} -> {} ({:.2}x)   stores {}",
        out.schemes,
        out.horizons,
        out.cold_seconds,
        out.forked_seconds,
        out.cold_seconds / out.forked_seconds,
        out.cold_epochs,
        out.forked_epochs,
        out.cold_epochs as f64 / out.forked_epochs as f64,
        if out.stores_identical {
            "byte-identical"
        } else {
            "DIVERGED"
        },
    );
    assert!(out.stores_identical, "forked store diverged from cold");
    out
}

/// The commit this run measures, for the tracked trajectory under
/// `results/`. Prefers the CI-provided sha, falls back to `git`.
fn commit_id() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Physical core count: unique `(physical id, core id)` pairs from
/// `/proc/cpuinfo`, falling back to the logical count when the file is
/// absent or unparsable (non-Linux hosts, restricted containers).
fn physical_cores(logical: usize) -> usize {
    let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") else {
        return logical;
    };
    let mut cores = std::collections::HashSet::new();
    let mut package = String::from("0");
    for line in info.lines() {
        if let Some((k, v)) = line.split_once(':') {
            match k.trim() {
                "physical id" => package = v.trim().to_string(),
                "core id" => {
                    cores.insert((package.clone(), v.trim().to_string()));
                }
                _ => {}
            }
        }
    }
    if cores.is_empty() {
        logical
    } else {
        cores.len()
    }
}

fn write_json(
    opts: &Opts,
    workloads: &[WorkloadResult],
    grid: &GridResult,
    engine: &EngineResult,
    prefix: &PrefixReuseResult,
) {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"sim_throughput\",");
    let _ = writeln!(s, "  \"commit\": \"{}\",", json_escape(&commit_id()));
    let _ = writeln!(s, "  \"unix_time\": {unix_time},");
    let _ = writeln!(s, "  \"smoke\": {},", opts.smoke);
    let _ = writeln!(s, "  \"budget_cycles\": {},", opts.budget());
    // Host context: thread-ladder numbers are only interpretable
    // against the parallelism the host can actually supply (a 1-core
    // container pins every ladder point at the inline path).
    let logical = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let _ = writeln!(s, "  \"host\": {{");
    let _ = writeln!(s, "    \"logical_cpus\": {logical},");
    let _ = writeln!(s, "    \"physical_cores\": {},", physical_cores(logical));
    let _ = writeln!(
        s,
        "    \"thread_budget\": {}",
        gpu_sim::threadpool::thread_budget()
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"workloads\": [");
    for (wi, w) in workloads.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(s, "      \"sms\": {},", w.sms);
        for (i, (_, mode_name)) in MODES.iter().enumerate() {
            let _ = writeln!(
                s,
                "      \"{}_cycles_per_sec\": {:.1},",
                mode_name, w.rates[i]
            );
        }
        let _ = writeln!(
            s,
            "      \"per_sm_speedup_vs_reference\": {:.3},",
            w.speedup_vs_reference()
        );
        let _ = writeln!(
            s,
            "      \"per_sm_speedup_vs_event_driven\": {:.3},",
            w.speedup_vs_event_driven()
        );
        let _ = writeln!(s, "      \"parallel_sm_ladder\": [");
        for (i, &t) in THREAD_LADDER.iter().enumerate() {
            let comma = if i + 1 < THREAD_LADDER.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "        {{\"sim_threads\": {t}, \"cycles_per_sec\": {:.1}, \
                 \"speedup_vs_per_sm\": {:.3}, \"parallel_efficiency\": {:.3}}}{comma}",
                w.parallel_rates[i],
                w.parallel_speedup(i),
                w.parallel_speedup(i) / t as f64,
            );
        }
        let _ = writeln!(s, "      ],");
        let _ = writeln!(
            s,
            "      \"per_sm_ff\": {{\"spans\": {}, \"skipped_sm_cycles\": {}, \"horizon_stalls\": {}}}",
            w.per_sm_ff.0, w.per_sm_ff.1, w.per_sm_ff.2
        );
        let comma = if wi + 1 < workloads.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"profile_grid_coarse24\": {{");
    let _ = writeln!(s, "    \"points\": {},", grid.points);
    for (i, (_, mode_name)) in MODES.iter().enumerate() {
        let comma = if i + 1 < MODES.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    \"{}_seconds\": {:.4}{comma}",
            mode_name, grid.seconds[i]
        );
    }
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"engine_smoke\": {{");
    let _ = writeln!(s, "    \"jobs\": {},", engine.jobs);
    let _ = writeln!(s, "    \"cold_seconds\": {:.4},", engine.cold_seconds);
    let _ = writeln!(s, "    \"warm_seconds\": {:.4}", engine.warm_seconds);
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"prefix_reuse\": {{");
    let _ = writeln!(s, "    \"schemes\": {},", prefix.schemes);
    let _ = writeln!(s, "    \"horizons\": {},", prefix.horizons);
    let _ = writeln!(s, "    \"declared_jobs\": {},", prefix.declared_jobs);
    let _ = writeln!(s, "    \"prefix_jobs\": {},", prefix.prefix_jobs);
    let _ = writeln!(s, "    \"prefix_shared\": {},", prefix.prefix_shared);
    let _ = writeln!(s, "    \"cold_epochs\": {},", prefix.cold_epochs);
    let _ = writeln!(s, "    \"forked_epochs\": {},", prefix.forked_epochs);
    let _ = writeln!(
        s,
        "    \"epoch_reduction\": {:.3},",
        prefix.cold_epochs as f64 / prefix.forked_epochs as f64
    );
    let _ = writeln!(s, "    \"cold_seconds\": {:.4},", prefix.cold_seconds);
    let _ = writeln!(s, "    \"forked_seconds\": {:.4},", prefix.forked_seconds);
    let _ = writeln!(
        s,
        "    \"wall_speedup\": {:.3},",
        prefix.cold_seconds / prefix.forked_seconds
    );
    let _ = writeln!(s, "    \"stores_identical\": {}", prefix.stores_identical);
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    let path = results_dir().join("sim_throughput.json");
    std::fs::write(&path, s).expect("write sim_throughput.json");
    eprintln!("[bench] wrote {}", path.display());
}

fn main() {
    let opts = Opts::from_args();
    let workloads = vec![
        // Memory-bound: one streaming warp, no ALU padding.
        report(
            "mem-bound-stream-n1",
            &UniformKernel::streaming(1, 0),
            WarpTuple::new(1, 1, 24),
            4,
            &opts,
        ),
        // Memory-bound at modest occupancy: still stall-dominated.
        report(
            "mem-bound-stream-n4",
            &UniformKernel::streaming(4, 2),
            WarpTuple::new(4, 4, 24),
            4,
            &opts,
        ),
        // Memory-bound at high occupancy on the full Table IIIb machine:
        // the SMs desynchronise, the global skip collapses, and only the
        // per-SM loop keeps skipping each SM's own stalls.
        report(
            "mem-bound-stream-n16",
            &UniformKernel::streaming(16, 2),
            WarpTuple::new(16, 16, 24),
            32,
            &opts,
        ),
        // Full occupancy beyond the MSHR file (48 outstanding loads
        // wanted vs 32 MSHRs) on the full machine: a structural reject
        // storm, the most expensive rows of a `GridSpec::full(24)`
        // profiling sweep. Ready warps retry every cycle, so neither
        // stepped mode can skip at all; the per-SM loop bulk-replays the
        // storm cycles.
        report(
            "reject-storm-stream-n24",
            &UniformKernel::streaming(24, 0),
            WarpTuple::new(24, 24, 24),
            32,
            &opts,
        ),
        // Compute-bound: long ALU stretches, full occupancy.
        report(
            "compute-bound",
            &UniformKernel::streaming(16, 40),
            WarpTuple::new(16, 16, 24),
            4,
            &opts,
        ),
    ];
    let grid = profile_grid_end_to_end(&opts);
    let engine = engine_end_to_end();
    let prefix = prefix_reuse_end_to_end(&opts);
    if opts.json {
        write_json(&opts, &workloads, &grid, &engine, &prefix);
    }
}
