//! Criterion micro-benchmarks of the simulator substrate and the ML
//! framework: per-cycle simulation cost, cache/MSHR operations, GLM
//! fitting, HIE prediction and scoring. These guard the performance of
//! the pieces every figure regenerator leans on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gpu_sim::{
    CacheGeometry, FixedTuple, Gpu, GpuConfig, SetAssocCache, SetIndexing, UniformKernel, WarpTuple,
};
use poise_ml::{FeatureVector, NbRegression, ScoringWeights, SpeedupGrid};

fn bench_cache_ops(c: &mut Criterion) {
    let geo = CacheGeometry {
        sets: 32,
        ways: 4,
        line_bytes: 128,
        indexing: SetIndexing::Hashed,
    };
    c.bench_function("cache/insert+access", |b| {
        b.iter_batched(
            || SetAssocCache::new(geo),
            |mut cache| {
                for line in 0..512u64 {
                    cache.insert(line * 7);
                    cache.access(line * 3);
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_sim_cycles(c: &mut Criterion) {
    let kernel = UniformKernel::streaming(24, 4);
    c.bench_function("sim/1sm-2k-cycles", |b| {
        b.iter_batched(
            || Gpu::new(GpuConfig::scaled(1), &kernel),
            |mut gpu| {
                gpu.run(&mut FixedTuple::max(), 2_000);
                gpu
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_glm_fit(c: &mut Criterion) {
    let xs: Vec<Vec<f64>> = (0..128)
        .map(|i| {
            let t = i as f64 / 128.0;
            vec![1.0, t, t * t, (1.0 - t), t.sqrt(), t * 2.0, 0.5, 1.0]
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|r| (0.4 + 1.2 * r[1] - 0.5 * r[2]).exp().round())
        .collect();
    c.bench_function("ml/nb-fit-128x8", |b| {
        b.iter(|| NbRegression::fit(&xs, &ys, 1e-6).expect("fit"))
    });
}

fn bench_scoring(c: &mut Criterion) {
    let mut grid = SpeedupGrid::new(24);
    for n in 1..=24 {
        for p in 1..=n {
            grid.set(n, p, 1.0 + ((n * p) % 7) as f64 / 10.0);
        }
    }
    let w = ScoringWeights::default();
    c.bench_function("ml/score-full-grid", |b| {
        b.iter(|| grid.best_scored(&w).expect("scored"))
    });
}

fn bench_prediction(c: &mut Criterion) {
    let model = poise_ml::TrainedModel {
        alpha: [0.5, -0.2, 1.1, -0.6, -2.0, 0.4, 0.01, 1.8],
        beta: [1.2, 0.3, -1.4, 2.2, -1.0, -0.2, 0.02, -0.9],
        dispersion_n: 0.1,
        dispersion_p: 0.1,
        samples_used: 100,
        dropped_features: Vec::new(),
    };
    let x = FeatureVector([0.2, 0.8, 0.15, 0.7, 0.3, 0.9, 0.4, 1.0]);
    c.bench_function("hie/link-function-predict", |b| {
        b.iter(|| model.predict(&x, 24))
    });
    // The warp-tuple arithmetic on the scheduler side.
    c.bench_function("hie/tuple-clamp", |b| b.iter(|| WarpTuple::new(19, 7, 24)));
}

criterion_group!(
    benches,
    bench_cache_ops,
    bench_sim_cycles,
    bench_glm_fit,
    bench_scoring,
    bench_prediction
);
criterion_main!(benches);
