//! Criterion benches — one group per paper table/figure, each timing a
//! scaled-down version of the regeneration pipeline (1-SM machine, short
//! windows). The full-size regenerators are the `poise-bench` binaries
//! (`cargo run --release -p poise-bench --bin fig07_performance`, or
//! `run_all`); these bench targets exist so `cargo bench` exercises every
//! experiment's code path with measured cost.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{Gpu, WarpTuple};
use poise::experiment::{self, Scheme, Setup};
use poise::profiler::{pbest, profile_grid, run_tuple, GridSpec, ProfileWindow};
use poise::{PoiseController, PoiseParams};
use poise_ml::{FeatureVector, ScoringWeights, TrainedModel, N_FEATURES};
use workloads::{compute_insensitive_suite, evaluation_suite, fig4_kernels};

fn tiny_setup() -> Setup {
    Setup::for_tests()
}

fn tiny_model() -> TrainedModel {
    let mut alpha = [0.0; N_FEATURES];
    let mut beta = [0.0; N_FEATURES];
    alpha[N_FEATURES - 1] = (8.0f64).ln();
    beta[N_FEATURES - 1] = (2.0f64).ln();
    TrainedModel {
        alpha,
        beta,
        dispersion_n: 0.1,
        dispersion_p: 0.1,
        samples_used: 0,
        dropped_features: Vec::new(),
    }
}

fn win() -> ProfileWindow {
    ProfileWindow {
        warmup: 400,
        measure: 800,
    }
}

fn ii_kernel() -> workloads::Workload {
    evaluation_suite()
        .into_iter()
        .find(|b| b.name == "ii")
        .expect("ii")
        .kernels[0]
        .clone()
}

fn fig02_grid(c: &mut Criterion) {
    let s = tiny_setup();
    let k = ii_kernel();
    c.bench_function("fig02/solution-space-profile", |b| {
        b.iter(|| profile_grid(&k, &s.cfg, &GridSpec::full(6), win()))
    });
}

fn fig04_characterisation(c: &mut Criterion) {
    let s = tiny_setup();
    let mut cfg = s.cfg.clone();
    cfg.track_reuse_distance = true;
    let k: workloads::Workload = fig4_kernels().remove(0).into();
    c.bench_function("fig04/hit-rate-decomposition", |b| {
        b.iter(|| run_tuple(&k, &cfg, WarpTuple::new(24, 1, 24), win()))
    });
}

fn fig05_scoring(c: &mut Criterion) {
    let s = tiny_setup();
    let k = ii_kernel();
    c.bench_function("fig05/score-profiled-grid", |b| {
        let grid = profile_grid(&k, &s.cfg, &GridSpec::full(6), win());
        b.iter(|| grid.best_scored(&ScoringWeights::default()))
    });
}

fn table2_training(c: &mut Criterion) {
    // One training sample collection + fit on synthetic features: the
    // pipeline cost without the full suite sweep.
    let rows: Vec<FeatureVector> = (0..24)
        .map(|i| {
            let t = i as f64 / 24.0;
            FeatureVector([
                0.2 + 0.1 * t,
                0.6 + 0.3 * t,
                0.1 + 0.1 * t,
                0.4 + 0.5 * t,
                t * t,
                3.0 * t * t,
                0.2,
                1.0,
            ])
        })
        .collect();
    let samples: Vec<poise_ml::TrainingSample> = rows
        .iter()
        .enumerate()
        .map(|(i, f)| poise_ml::TrainingSample {
            kernel: format!("k{i}"),
            features: *f,
            target: WarpTuple::new(4 + i % 12, 1 + i % 4, 24),
            best_speedup: 1.3,
            baseline_cycles: 50_000,
            ref_hit_rate: 0.5,
        })
        .collect();
    c.bench_function("table2/nb-training", |b| {
        b.iter(|| {
            poise_ml::TrainedModel::fit(&samples, &poise_ml::TrainingThresholds::default(), &[])
                .expect("fit")
        })
    });
}

fn table3_pbest(c: &mut Criterion) {
    let s = tiny_setup();
    let k = ii_kernel();
    c.bench_function("table3/pbest-classification", |b| {
        b.iter(|| pbest(&k, &s.cfg, win()))
    });
}

fn fig07_to_09_comparison(c: &mut Criterion) {
    let s = tiny_setup();
    let m = tiny_model();
    let bench = workloads::Benchmark::new("ii-tiny", vec![ii_kernel()]);
    for scheme in [Scheme::Gto, Scheme::Swl, Scheme::PcalSwl, Scheme::Poise] {
        c.bench_function(&format!("fig07-09/run-{}", scheme.name()), |b| {
            b.iter(|| experiment::run_benchmark(&bench, scheme, &m, &s))
        });
    }
}

fn fig10_11_hie_epoch(c: &mut Criterion) {
    let s = tiny_setup();
    let k = ii_kernel();
    c.bench_function("fig10-11/poise-epoch", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(s.cfg.clone(), &k);
            let mut ctrl = PoiseController::new(tiny_model(), PoiseParams::scaled_down(50));
            gpu.run(&mut ctrl, 6_000);
            ctrl.log.len()
        })
    });
}

fn fig12_cache_scaling(c: &mut Criterion) {
    let s = tiny_setup();
    let k = ii_kernel();
    c.bench_function("fig12/64k-l1-run", |b| {
        let cfg = s.cfg.clone().with_l1_scale(4);
        b.iter(|| run_tuple(&k, &cfg, WarpTuple::max(24), win()))
    });
}

fn fig13_ablated_prediction(c: &mut Criterion) {
    let m = tiny_model();
    let x = FeatureVector([0.2, 0.8, 0.15, 0.7, 0.3, 0.9, 0.4, 1.0]);
    c.bench_function("fig13/ablated-predict", |b| {
        b.iter(|| {
            let ab = x.without_feature(5);
            m.predict(&ab, 24)
        })
    });
}

fn fig14_energy(c: &mut Criterion) {
    let s = tiny_setup();
    let k = ii_kernel();
    c.bench_function("fig14/energy-accounting", |b| {
        let st = run_tuple(&k, &s.cfg, WarpTuple::max(24), win());
        b.iter(|| {
            gpu_sim::EnergyBreakdown::from_counters(&st.window, &s.cfg.energy, s.cfg.sms).total()
        })
    });
}

fn fig15_alternatives(c: &mut Criterion) {
    let s = tiny_setup();
    let m = tiny_model();
    let bench = workloads::Benchmark::new("ii-tiny", vec![ii_kernel()]);
    for scheme in [Scheme::Apcm, Scheme::RandomRestart] {
        c.bench_function(&format!("fig15/run-{}", scheme.name()), |b| {
            b.iter(|| experiment::run_benchmark(&bench, scheme, &m, &s))
        });
    }
}

fn fig16_insensitive(c: &mut Criterion) {
    let s = tiny_setup();
    let m = tiny_model();
    let bench = compute_insensitive_suite().remove(0);
    c.bench_function("fig16/compute-intensive-early-out", |b| {
        b.iter(|| experiment::run_benchmark(&bench, Scheme::Poise, &m, &s))
    });
}

fn fig17_case_study(c: &mut Criterion) {
    let s = tiny_setup();
    let bfs = evaluation_suite()
        .into_iter()
        .find(|b| b.name == "bfs")
        .expect("bfs")
        .kernels[0]
        .clone();
    c.bench_function("fig17/bfs-trajectory", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(s.cfg.clone(), &bfs);
            let mut ctrl = PoiseController::new(tiny_model(), PoiseParams::scaled_down(50));
            gpu.run(&mut ctrl, 8_000);
            ctrl.tuple_trace.len()
        })
    });
}

criterion_group!(
    figures,
    fig02_grid,
    fig04_characterisation,
    fig05_scoring,
    table2_training,
    table3_pbest,
    fig07_to_09_comparison,
    fig10_11_hie_epoch,
    fig12_cache_scaling,
    fig13_ablated_prediction,
    fig14_energy,
    fig15_alternatives,
    fig16_insensitive,
    fig17_case_study
);
criterion_main!(figures);
