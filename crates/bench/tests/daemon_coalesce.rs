//! The sweep daemon crown test: two clients submit overlapping plans
//! concurrently; the daemon coalesces their job graphs (shared jobs
//! execute exactly once, `cross_client_shared >= 1`), the resulting
//! store and figures are byte-identical to sequential standalone runs,
//! killing one client mid-stream leaves the other unaffected, and a
//! graceful shutdown leaks neither leases nor the socket.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn run_all_bin() -> &'static str {
    env!("CARGO_BIN_EXE_run_all")
}

fn poised_bin() -> &'static str {
    env!("CARGO_BIN_EXE_poised")
}

/// Smoke-scale knobs (shared with crash_resume.rs): one evaluation
/// kernel, three training kernels, tiny cycle budget.
const KNOBS: &[&str] = &[
    "--set",
    "sms=1",
    "--set",
    "kernels_cap=1",
    "--set",
    "train_cap=3",
    "--set",
    "run_cycles=20000",
];

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("poise-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_all(dir: &Path, extra: &[&str]) -> std::process::ExitStatus {
    Command::new(run_all_bin())
        .args(KNOBS)
        .args(extra)
        .env("POISE_RESULTS_DIR", dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn run_all")
}

fn spawn_client(dir: &Path, name: &str, only: &str) -> Child {
    Command::new(run_all_bin())
        .args(KNOBS)
        .args(["--only", only, "--connect", "--client", name])
        .env("POISE_RESULTS_DIR", dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn client")
}

/// Every cache entry's bytes with the `# wall:` metadata line dropped —
/// the only line allowed to differ between two runs of the same spec.
fn store_snapshot(dir: &Path) -> BTreeMap<String, String> {
    let cache = dir.join("cache");
    let mut snap = BTreeMap::new();
    for entry in std::fs::read_dir(&cache).expect("cache dir") {
        let entry = entry.expect("dir entry");
        if !entry.file_type().expect("file type").is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        let body = std::fs::read_to_string(entry.path()).expect("read entry");
        let normalized: String = body
            .lines()
            .filter(|l| !l.starts_with("# wall:"))
            .collect::<Vec<_>>()
            .join("\n");
        snap.insert(name, normalized);
    }
    snap
}

/// Wait until the daemon event log contains `needle`, or panic after
/// `secs`. Returns the log text at match time.
fn wait_for_event(dir: &Path, needle: &str, secs: u64) -> String {
    let log = dir.join("daemon").join("events.jsonl");
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Ok(text) = std::fs::read_to_string(&log) {
            if text.contains(needle) {
                return text;
            }
        }
        assert!(
            Instant::now() < deadline,
            "no {needle:?} in {} within {secs}s",
            log.display()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn concurrent_clients_coalesce_to_identical_outputs() {
    // Sequential reference: two standalone passes over one store, the
    // second reusing the first's shared jobs from cache — exactly what
    // the daemon must reproduce across *processes*.
    let ref_dir = tmp_dir("ref");
    assert!(run_all(&ref_dir, &["--only", "fig07"]).success());
    assert!(run_all(&ref_dir, &["--only", "fig08"]).success());
    let reference = store_snapshot(&ref_dir);
    assert!(!reference.is_empty(), "reference runs stored nothing");
    let ref_fig07 = std::fs::read_to_string(ref_dir.join("fig07_performance.txt")).unwrap();
    let ref_fig08 = std::fs::read_to_string(ref_dir.join("fig08_l1_hit_rate.txt")).unwrap();

    // The daemon run.
    let dir = tmp_dir("live");
    std::fs::create_dir_all(&dir).unwrap();
    let mut daemon = Command::new(poised_bin())
        .args(KNOBS)
        .env("POISE_RESULTS_DIR", &dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn poised");
    let socket = dir.join("daemon.sock");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "poised never bound its socket");
        std::thread::sleep(Duration::from_millis(25));
    }

    // Client A submits fig07; once admitted (and its batch is the one
    // running), client B submits the overlapping fig08 plan. Waiting
    // for A's admission makes the overlap deterministic: B's closure is
    // compared against A's queued/running jobs, never an empty daemon.
    let mut alice = spawn_client(&dir, "alice", "fig07");
    wait_for_event(&dir, r#""client":"alice""#, 120);
    let mut bob = spawn_client(&dir, "bob", "fig08");
    let log = wait_for_event(&dir, r#""client":"bob""#, 120);

    // Coalescing is visible at admission: fig08 shares the main
    // comparison runs (and the whole training pipeline) with fig07.
    let bob_admitted = log
        .lines()
        .find(|l| l.contains(r#""event":"admitted""#) && l.contains(r#""client":"bob""#))
        .expect("bob's admitted event");
    let shared: u64 = bob_admitted
        .split(r#""cross_client_shared":"#)
        .nth(1)
        .and_then(|rest| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .expect("cross_client_shared field");
    assert!(
        shared >= 1,
        "overlapping plans must coalesce (cross_client_shared={shared}): {bob_admitted}"
    );

    // Kill client A mid-stream: its submission keeps running (results
    // land in the shared cache) and B is unaffected.
    alice.kill().expect("SIGKILL alice");
    let _ = alice.wait();
    let bob_status = bob.wait().expect("wait bob");
    assert!(
        bob_status.success(),
        "surviving client failed: {bob_status}"
    );
    assert_eq!(
        std::fs::read_to_string(dir.join("fig08_l1_hit_rate.txt")).unwrap(),
        ref_fig08,
        "fig08 diverged from the sequential standalone run"
    );

    // A's replacement resubmits the same plan: everything answers from
    // the daemon-warmed cache, and fig07 renders byte-identically.
    assert!(
        run_all(
            &dir,
            &["--only", "fig07", "--connect", "--client", "alice2"]
        )
        .success(),
        "resubmitted client failed"
    );
    assert_eq!(
        std::fs::read_to_string(dir.join("fig07_performance.txt")).unwrap(),
        ref_fig07,
        "fig07 diverged from the sequential standalone run"
    );

    // `--status` against the live daemon answers (idle by now).
    assert!(run_all(&dir, &["--status"]).success());

    // Graceful shutdown: the daemon drains, exits 0, removes its
    // socket, and leaks no lease or tmp orphan.
    assert!(run_all(&dir, &["--daemon-shutdown"]).success());
    let deadline = Instant::now() + Duration::from_secs(60);
    let daemon_status = loop {
        if let Some(status) = daemon.try_wait().expect("try_wait poised") {
            break status;
        }
        assert!(Instant::now() < deadline, "poised ignored shutdown");
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(daemon_status.success(), "poised exited {daemon_status}");
    assert!(!socket.exists(), "socket file survived shutdown");
    let leaked: Vec<String> = std::fs::read_dir(dir.join("cache").join("leases"))
        .map(|d| {
            d.flatten()
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.ends_with(".lease") || n.starts_with(".steal-"))
                .collect()
        })
        .unwrap_or_default();
    assert!(
        leaked.is_empty(),
        "leaked leases after shutdown: {leaked:?}"
    );

    // The coalesced store is byte-identical to the sequential
    // reference: shared jobs executed once, with identical bytes.
    assert_eq!(store_snapshot(&dir), reference);

    // `--status` still works headless (summarizing the event log).
    assert!(run_all(&dir, &["--status"]).success());

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
