//! Crash-resume: a `run_all` child killed (SIGKILL) mid-wave must leave
//! a store that a plain re-run resumes to completion — no quarantined
//! entries (atomic tmp+rename writes cannot tear on kill) and a final
//! store byte-identical to an uninterrupted run, modulo the recorded
//! wall-clock metadata line.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn run_all_bin() -> &'static str {
    env!("CARGO_BIN_EXE_run_all")
}

const KNOBS: &[&str] = &[
    "--only",
    "fig07",
    "--set",
    "sms=1",
    "--set",
    "kernels_cap=1",
    "--set",
    "train_cap=3",
    "--set",
    "run_cycles=20000",
];

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("poise-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_to_completion(dir: &Path) -> std::process::ExitStatus {
    Command::new(run_all_bin())
        .args(KNOBS)
        .env("POISE_RESULTS_DIR", dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn run_all")
}

/// Every cache entry's bytes with the `# wall:` metadata line dropped —
/// the only line allowed to differ between two runs of the same spec.
fn store_snapshot(dir: &Path) -> BTreeMap<String, String> {
    let cache = dir.join("cache");
    let mut snap = BTreeMap::new();
    for entry in std::fs::read_dir(&cache).expect("cache dir") {
        let entry = entry.expect("dir entry");
        if !entry.file_type().expect("file type").is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        let body = std::fs::read_to_string(entry.path()).expect("read entry");
        let normalized: String = body
            .lines()
            .filter(|l| !l.starts_with("# wall:"))
            .collect::<Vec<_>>()
            .join("\n");
        snap.insert(name, normalized);
    }
    snap
}

#[test]
fn sigkill_mid_wave_resumes_to_an_identical_store() {
    // Reference: one uninterrupted pass.
    let ref_dir = tmp_dir("ref");
    let status = run_to_completion(&ref_dir);
    assert!(status.success(), "reference run failed: {status}");
    let reference = store_snapshot(&ref_dir);
    assert!(!reference.is_empty(), "reference run stored nothing");
    let ref_fig =
        std::fs::read_to_string(ref_dir.join("fig07_performance.txt")).expect("fig07 output");

    // Crash run: kill the child once it has committed a few entries.
    let crash_dir = tmp_dir("kill");
    let mut child = Command::new(run_all_bin())
        .args(KNOBS)
        .env("POISE_RESULTS_DIR", &crash_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn run_all");
    let cache = crash_dir.join("cache");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut saw_entries = false;
    loop {
        if Instant::now() > deadline {
            break;
        }
        if let Some(_status) = child.try_wait().expect("try_wait") {
            // Finished before we pulled the trigger: the resume below
            // degenerates to a warm pass, which is still a valid (if
            // weaker) check. Keep going.
            break;
        }
        let committed = std::fs::read_dir(&cache)
            .map(|d| {
                d.filter_map(|e| e.ok())
                    .filter(|e| e.file_name().to_string_lossy().ends_with(".txt"))
                    .count()
            })
            .unwrap_or(0);
        if committed >= 2 {
            saw_entries = true;
            child.kill().expect("SIGKILL the child");
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.wait();
    assert!(
        saw_entries || child.try_wait().is_ok(),
        "child neither stored entries nor finished within the deadline"
    );

    // Resume: a plain re-run over the killed store completes cleanly.
    let status = run_to_completion(&crash_dir);
    assert!(status.success(), "resumed run failed: {status}");

    // Nothing was quarantined — the kill tore no committed entry.
    let quarantined = std::fs::read_dir(cache.join("quarantine"))
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(quarantined, 0, "SIGKILL must not corrupt committed entries");

    // The final store matches the uninterrupted one (modulo `# wall:`),
    // and the rendered figure is byte-identical.
    assert_eq!(store_snapshot(&crash_dir), reference);
    let fig =
        std::fs::read_to_string(crash_dir.join("fig07_performance.txt")).expect("fig07 output");
    assert_eq!(fig, ref_fig, "figure output diverged after crash-resume");

    // And an offline fsck agrees the store is clean (exit 0).
    let fsck = Command::new(run_all_bin())
        .arg("--fsck")
        .env("POISE_RESULTS_DIR", &crash_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn fsck");
    assert!(fsck.success(), "fsck found corruption after crash-resume");

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

/// Multi-worker crash tolerance: three standalone fabric workers drain
/// one shared store; one is SIGKILLed mid-wave. The survivors steal its
/// stale leases and finish the graph, fsck reclaims whatever lease the
/// dead worker still held, and a plain `run_all` pass over the store
/// completes from cache alone.
#[test]
fn sigkill_one_of_three_workers_survivors_finish() {
    let dir = tmp_dir("fleet");
    let fabric_dir = dir.join("fabric");
    // A short lease TTL so survivors steal the dead worker's claims
    // quickly instead of waiting out the default 2 s.
    let worker_knobs: Vec<String> = KNOBS
        .iter()
        .map(|s| s.to_string())
        .chain(["--set".into(), "lease_ttl=0.5".into()])
        .collect();
    let spawn_worker = |id: &str| {
        Command::new(run_all_bin())
            .args(&worker_knobs)
            .arg("--worker")
            .arg("--fabric-dir")
            .arg(&fabric_dir)
            .args(["--worker-id", id])
            .env("POISE_RESULTS_DIR", &dir)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn worker")
    };
    let mut victim = spawn_worker("w1");
    let mut survivors = vec![("w2", spawn_worker("w2")), ("w3", spawn_worker("w3"))];

    // Kill w1 once the store shows progress (so it plausibly holds a
    // lease when it dies).
    let cache = dir.join("cache");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if Instant::now() > deadline {
            break;
        }
        if victim.try_wait().expect("try_wait").is_some() {
            break; // finished early: degenerates to a two-survivor drain
        }
        let committed = std::fs::read_dir(&cache)
            .map(|d| {
                d.filter_map(|e| e.ok())
                    .filter(|e| e.file_name().to_string_lossy().ends_with(".txt"))
                    .count()
            })
            .unwrap_or(0);
        if committed >= 2 {
            victim.kill().expect("SIGKILL w1");
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = victim.wait();

    // The survivors must finish the whole graph on their own.
    for (id, child) in &mut survivors {
        let status = child.wait().expect("wait worker");
        assert!(status.success(), "worker {id} failed: {status}");
    }
    for (id, _) in &survivors {
        assert!(
            fabric_dir
                .join("reports")
                .join(format!("{id}.json"))
                .is_file(),
            "worker {id} published no report"
        );
    }

    // fsck reclaims any lease the dead worker still held and finds no
    // corruption (SIGKILL cannot tear committed entries).
    let fsck = Command::new(run_all_bin())
        .arg("--fsck")
        .env("POISE_RESULTS_DIR", &dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn fsck");
    assert!(fsck.success(), "fsck found corruption after worker death");
    let leases = std::fs::read_dir(cache.join("leases"))
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(leases, 0, "stale leases survived fsck");

    // A plain pass over the drained store completes purely from cache
    // and renders the figure.
    let status = run_to_completion(&dir);
    assert!(status.success(), "post-fleet run failed: {status}");
    assert!(dir.join("fig07_performance.txt").is_file());

    let _ = std::fs::remove_dir_all(&dir);
}
