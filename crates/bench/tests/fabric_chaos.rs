//! Chaos oracle for the distributed sweep fabric: for several fault
//! seeds, a three-worker fleet with random mid-wave worker kills (plus
//! torn leases and store bit-flips) must converge — after a heal pass —
//! to a store byte-identical to a clean single-process run, modulo the
//! recorded `# wall:` metadata line.
//!
//! Protocol per seed:
//!   1. chaos fleet run (`--workers 3 --inject ... kinds=kill+...`):
//!      exits 0 or 3 (self-healed), leaves no leases behind;
//!   2. heal pass (plain re-run, no injection): quarantines any entry a
//!      bit-flip corrupted on disk and re-executes it, exits 0 or 3;
//!   3. `--fsck` exits clean;
//!   4. the store matches the clean reference byte-for-byte.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use poise::FaultPlan;

fn run_all_bin() -> &'static str {
    env!("CARGO_BIN_EXE_run_all")
}

const KNOBS: &[&str] = &[
    "--only",
    "fig07",
    "--set",
    "sms=1",
    "--set",
    "kernels_cap=1",
    "--set",
    "train_cap=3",
    "--set",
    "run_cycles=20000",
];

/// Chaos seeds. Each is verified below to actually kill at least one
/// worker within its first few lease claims — a seed that never fires
/// would make the oracle vacuous.
const SEEDS: &[u64] = &[1, 2, 3];
// Kill, torn-lease and bit-flip faults never consume a job's in-process
// retry budget (kills are healed by lease steal + the coordinator's
// final pass, torn leases only delay a claim, bit flips are caught at
// load and re-executed), so at ANY rate the fleet must converge —
// unlike `transient`, which at this rate would terminally exhaust some
// job's retries by design.
const INJECT_RATE: &str = "0.25";
const INJECT_KINDS: &str = "kill+tornlease+bitflip";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("poise-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn store_snapshot(dir: &Path) -> BTreeMap<String, String> {
    let cache = dir.join("cache");
    let mut snap = BTreeMap::new();
    for entry in std::fs::read_dir(&cache).expect("cache dir") {
        let entry = entry.expect("dir entry");
        if !entry.file_type().expect("file type").is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        let body = std::fs::read_to_string(entry.path()).expect("read entry");
        let normalized: String = body
            .lines()
            .filter(|l| !l.starts_with("# wall:"))
            .collect::<Vec<_>>()
            .join("\n");
        snap.insert(name, normalized);
    }
    snap
}

fn run(dir: &Path, extra: &[&str]) -> std::process::ExitStatus {
    Command::new(run_all_bin())
        .args(KNOBS)
        .args(extra)
        .env("POISE_RESULTS_DIR", dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn run_all")
}

/// 0 = clean, 3 = self-healed (recovered/corrupt entries): both mean
/// the run converged. Anything else is a hard failure.
fn assert_converged(status: std::process::ExitStatus, what: &str) {
    let code = status.code();
    assert!(
        code == Some(0) || code == Some(3),
        "{what} did not converge: {status}"
    );
}

#[test]
fn chaos_fleet_converges_to_the_clean_store_across_seeds() {
    // The oracle is only meaningful if the kill fault actually fires:
    // check (deterministically — kill decisions depend only on seed,
    // worker id and claim ordinal) that every seed kills at least one
    // of the three workers within its first 8 claims.
    for &seed in SEEDS {
        let plan = FaultPlan::parse(&format!("seed={seed},rate={INJECT_RATE},kinds=kill"))
            .expect("parse inject spec");
        let fires = ["w1", "w2", "w3"]
            .iter()
            .any(|w| (1..=8).any(|claim| plan.worker_kill(w, claim)));
        assert!(
            fires,
            "seed {seed} never kills a worker — pick another seed"
        );
    }

    // Clean single-process reference.
    let ref_dir = tmp_dir("ref");
    let status = run(&ref_dir, &[]);
    assert!(status.success(), "reference run failed: {status}");
    let reference = store_snapshot(&ref_dir);
    assert!(!reference.is_empty(), "reference run stored nothing");

    for &seed in SEEDS {
        let dir = tmp_dir(&format!("s{seed}"));
        let inject = format!("seed={seed},rate={INJECT_RATE},kinds={INJECT_KINDS}");

        // 1. Chaos fleet: three workers, short lease TTL, kills and
        //    torn leases mid-wave. The coordinator's final in-process
        //    pass (kill faults never apply there) guarantees the graph
        //    drains even if every worker dies.
        let status = run(
            &dir,
            &[
                "--workers",
                "3",
                "--set",
                "lease_ttl=0.4",
                "--inject",
                &inject,
            ],
        );
        assert_converged(status, &format!("seed {seed} chaos fleet"));
        let leases = std::fs::read_dir(dir.join("cache").join("leases"))
            .map(|d| d.count())
            .unwrap_or(0);
        assert_eq!(leases, 0, "seed {seed}: leases left after the fleet");

        // The failures ledger exists and every line is valid JSON
        // carrying a worker attribution.
        let jsonl = std::fs::read_to_string(dir.join("run_all_failures.jsonl"))
            .expect("run_all_failures.jsonl written");
        for line in jsonl.lines() {
            let v = poise::fabric::json::Json::parse(line)
                .unwrap_or_else(|| panic!("seed {seed}: unparseable JSONL line: {line}"));
            assert!(
                v.get("worker").and_then(|w| w.as_str()).is_some(),
                "seed {seed}: JSONL line lacks worker id: {line}"
            );
            assert!(
                v.get("label").and_then(|l| l.as_str()).is_some(),
                "seed {seed}: JSONL line lacks label: {line}"
            );
        }

        // 2. Heal pass: no injection; detects and re-executes anything a
        //    bit-flip corrupted on disk.
        let status = run(&dir, &[]);
        assert_converged(status, &format!("seed {seed} heal pass"));

        // 3. Offline fsck agrees the store is clean.
        let fsck = Command::new(run_all_bin())
            .arg("--fsck")
            .env("POISE_RESULTS_DIR", &dir)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("spawn fsck");
        assert!(fsck.success(), "seed {seed}: fsck found corruption");

        // 4. Byte-identical to the clean run, modulo `# wall:`.
        assert_eq!(
            store_snapshot(&dir),
            reference,
            "seed {seed}: chaos store diverged from the clean reference"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
}
