//! Static properties of the figure registry: job declarations are pure
//! (no simulation happens here), so these tests can assert the
//! cross-figure deduplication structure that `run_all` relies on.

use std::collections::HashSet;

use poise_bench::figures::{registry, FigCtx};

/// A context over the pure default setup (tests must not depend on the
/// invoking environment).
fn test_ctx() -> FigCtx {
    FigCtx::new(poise::Setup::default())
}

fn jobs_of(ctx: &FigCtx, name: &str) -> Vec<poise::SimJob> {
    let reg = registry();
    let f = reg
        .iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("{name} not registered"));
    (f.jobs)(ctx, &ctx.setup)
}

fn specs_of(jobs: &[poise::SimJob]) -> HashSet<String> {
    jobs.iter().map(|j| j.spec_text()).collect()
}

#[test]
fn registry_is_complete_and_unique() {
    let reg = registry();
    assert_eq!(
        reg.len(),
        23,
        "all 21 paper figures/tables plus trace_eval and sm_scaling"
    );
    let names: HashSet<&str> = reg.iter().map(|f| f.name).collect();
    assert_eq!(names.len(), reg.len(), "figure names must be unique");
    for expected in [
        "table2_weights",
        "table3_workloads",
        "table4_params",
        "table_hw_cost",
        "fig02_pitfalls",
        "fig07_performance",
        "fig17_case_study",
        "ablation_epoch",
        "prediction_error",
        "trace_eval",
        "sm_scaling",
    ] {
        assert!(names.contains(expected), "missing {expected}");
    }
}

#[test]
fn trace_eval_covers_all_schemes_per_trace() {
    // Each committed trace runs under all 7 schemes; every job carries a
    // trace workload keyed by content digest (visible in the spec text).
    let ctx = test_ctx();
    let jobs = jobs_of(&ctx, "trace_eval");
    if jobs.is_empty() {
        // No traces/ directory in this checkout — nothing to assert.
        return;
    }
    assert_eq!(jobs.len() % 7, 0, "7 schemes per trace workload");
    for j in &jobs {
        let spec = j.spec_text();
        assert!(
            spec.contains("trace TraceRef") && spec.contains("digest"),
            "trace jobs must be keyed by trace digest, got:\n{spec}"
        );
    }
}

#[test]
fn main_comparison_figures_declare_identical_jobs() {
    // Figs. 7, 8, 9, 10 and 14 all render from the same scheme × kernel
    // runs; under the engine they must declare spec-identical job sets so
    // the whole block simulates exactly once.
    let ctx = test_ctx();
    let fig07 = specs_of(&jobs_of(&ctx, "fig07_performance"));
    for other in [
        "fig08_l1_hit_rate",
        "fig09_aml",
        "fig10_displacement",
        "fig14_energy",
    ] {
        assert_eq!(
            fig07,
            specs_of(&jobs_of(&ctx, other)),
            "{other} must share fig07's jobs"
        );
    }
}

#[test]
fn stride_default_and_alternatives_reuse_main_comparison_runs() {
    let ctx = test_ctx();
    let main = specs_of(&jobs_of(&ctx, "fig07_performance"));
    // Fig. 11's (2, 4) stride equals the Table IV default, and its GTO
    // baselines are the main comparison's, so its job set must overlap
    // the main block substantially — and add only the non-default stride
    // variants on top.
    let fig11 = jobs_of(&ctx, "fig11_stride");
    let fig11_specs = specs_of(&fig11);
    assert!(
        main.is_subset(&fig11_specs),
        "fig11 must reuse the whole main comparison"
    );
    let extra = fig11_specs.len() - main.len();
    let declared_poise_variants = 4 * 11 * ctx.setup.kernels_cap; // non-default strides
    assert!(
        extra <= declared_poise_variants,
        "fig11 may only add per-stride Poise runs, got {extra} extras"
    );
    // Fig. 15 reuses the main block too (plus APCM/random-restart runs).
    let fig15 = specs_of(&jobs_of(&ctx, "fig15_alternatives"));
    assert!(main.is_subset(&fig15));
}

#[test]
fn fig13_variants_share_sampling_through_train_deps() {
    // The six Fig. 13 model variants differ only in dropped features, so
    // their Train jobs must expand to the *same* per-kernel Sample jobs —
    // the expensive profiling passes are collected once, not six times.
    let ctx = test_ctx();
    let jobs = jobs_of(&ctx, "fig13_feature_ablation");
    let trains: Vec<_> = jobs
        .iter()
        .filter(|j| matches!(j, poise::SimJob::Train(_)))
        .collect();
    assert_eq!(trains.len(), 6, "six model variants");
    let sample_sets: Vec<HashSet<String>> = trains
        .iter()
        .map(|t| t.deps().iter().map(|d| d.spec_text()).collect())
        .collect();
    for set in &sample_sets[1..] {
        assert_eq!(&sample_sets[0], set, "variants must share sample jobs");
    }
    assert!(!sample_sets[0].is_empty());
}

#[test]
fn whole_registry_dedupes_substantially() {
    // The headline property of the engine: the union of every figure's
    // declared jobs collapses to far fewer unique specs than the figures
    // declare in total (the old harness re-simulated each declaration).
    let ctx = test_ctx();
    let mut declared = 0usize;
    let mut unique: HashSet<String> = HashSet::new();
    for f in registry() {
        let jobs = (f.jobs)(&ctx, &ctx.setup);
        declared += jobs.len();
        unique.extend(jobs.iter().map(|j| j.spec_text()));
    }
    assert!(
        unique.len() * 2 < declared,
        "dedup must at least halve the workload: {} unique of {declared} declared",
        unique.len()
    );
}
