use gpu_sim::*;
use poise::profiler::{profile_grid, run_tuple, GridSpec, ProfileWindow};
use workloads::*;

fn characterize(name: &str, spec: &Workload, cfg: &GpuConfig) {
    let w = ProfileWindow::default();
    let base = run_tuple(spec, cfg, WarpTuple::max(spec.warps_per_scheduler()), w);
    // Pbest with a long window
    let pw = ProfileWindow::pbest();
    let pbase = run_tuple(spec, cfg, WarpTuple::max(spec.warps_per_scheduler()), pw);
    let big_cfg = cfg.clone().with_l1_scale(64);
    let pbig = run_tuple(
        spec,
        &big_cfg,
        WarpTuple::max(spec.warps_per_scheduler()),
        pw,
    );
    let pb = pbig.ipc() / pbase.ipc().max(1e-9);
    let t241 = run_tuple(spec, cfg, WarpTuple::new(24, 1, 24), w);
    let c = &t241.window;
    let cb = &base.window;
    let intra_share = if cb.l1_hits > 0 {
        cb.l1_intra_hits as f64 / cb.l1_hits as f64
    } else {
        0.0
    };
    println!("{name:10} Pbest={pb:5.2} ho={:.2} ipc_base={:.3} | @(24,1): hp={:.2} hnp={:.2} | intra%={:.0} In={:.1}",
        cb.l1_hit_rate(), cb.ipc(), c.polluting_hit_rate(), c.non_polluting_hit_rate(),
        intra_share*100.0, cb.in_avg());
    let g = profile_grid(spec, cfg, &GridSpec::coarse(24), w);
    let (bt, bs) = g.best_performance().unwrap();
    let (dt, ds) = g.best_diagonal().unwrap();
    println!("{:10}   best {bt}={bs:.2}  diag-best {dt}={ds:.2}", "");
}

fn main() {
    let cfg = GpuConfig::scaled(8);
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(|s| s.as_str()).unwrap_or("all");
    for b in evaluation_suite() {
        if which != "all" && b.name != which {
            continue;
        }
        characterize(&b.name, &b.kernels[0], &cfg);
    }
    if which == "all" || which == "fig4" {
        for k in fig4_kernels() {
            characterize(&format!("f4-{}", k.name), &k.clone().into(), &cfg);
        }
    }
}
