//! Deterministic fault injection for the experiment engine.
//!
//! A [`FaultPlan`] turns the failure modes a distributed sweep fabric
//! must survive — crashing workers, flaky transient errors, hung jobs,
//! writers dying mid-store, silent media corruption — into *injectable,
//! reproducible* events. Every decision is a pure function of the plan
//! seed, the injection site, a stable identity (the job's spec hash or
//! the cache entry's key) and an occurrence index; no wall clock, no
//! process entropy. Two invocations of `run_all --inject seed=S,rate=P`
//! over the same job graph therefore inject the *same* faults, which is
//! what makes the differential robustness oracle (surviving outputs
//! bit-identical to a fault-free run) a meaningful test rather than a
//! flaky one.
//!
//! ## Sites and kinds
//!
//! Execution faults fire in `Engine::run` around a job attempt
//! ([`FaultKind::Panic`], [`FaultKind::Transient`], [`FaultKind::Stall`]),
//! keyed by the job's spec hash and the attempt number — so a retried
//! attempt re-rolls independently and bounded retry genuinely converges.
//! Store faults fire in `Cache::store` ([`FaultKind::TornWrite`],
//! [`FaultKind::BitFlip`]), keyed by the entry key and an occurrence
//! index that counts both prior in-process stores *and* quarantined
//! casualties of earlier runs — so a key that tore on the first run is
//! re-rolled (not deterministically re-torn) after self-healing
//! quarantines the wreck, and kill/restart cycles converge to a clean
//! store.
//!
//! The decision hash is the engine's canonical SHA-256 (see
//! [`crate::cache`]): the first 8 bytes of
//! `sha256(seed \n site \n identity \n occurrence)` map to `[0, 1)` and
//! fire when below `rate`; the next 8 bytes pick uniformly among the
//! plan's enabled kinds for that site.

use crate::cache::Sha256;

/// One injectable failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The job panics mid-execution (a crashed worker). Terminal: real
    /// panics are deterministic bugs, so injected ones are not retried.
    Panic,
    /// The job fails with a transient error (a flaky I/O layer, a lost
    /// RPC). Retryable with exponential backoff.
    Transient,
    /// The job hangs until the watchdog's cooperative cancellation fires
    /// (a wedged worker). Surfaces as a timeout; retryable.
    Stall,
    /// The cache entry is truncated mid-write (a writer killed between
    /// `write` and `rename` on a filesystem without atomic semantics).
    TornWrite,
    /// One bit of the stored entry body flips (silent media corruption);
    /// only the body checksum can catch it.
    BitFlip,
    /// The whole worker process is killed (SIGKILL semantics: `abort()`
    /// immediately after a claim, lease held, nothing released). Fires
    /// only in spawned fabric workers — the coordinator's own pass must
    /// survive to converge the run.
    WorkerKill,
    /// The lease claim file is truncated mid-write (a claimer killed
    /// between `write` and close): the claim reads back as garbage that
    /// nobody owns and must age out before it can be stolen.
    TornLease,
    /// The owner's heartbeat thread stops touching one lease long enough
    /// for peers to deem it dead and steal it — the owner then wakes up
    /// late and its store attempt must be discarded.
    HeartbeatStall,
}

/// All kinds, in documentation order.
pub const ALL_KINDS: [FaultKind; 8] = [
    FaultKind::Panic,
    FaultKind::Transient,
    FaultKind::Stall,
    FaultKind::TornWrite,
    FaultKind::BitFlip,
    FaultKind::WorkerKill,
    FaultKind::TornLease,
    FaultKind::HeartbeatStall,
];

impl FaultKind {
    /// Stable CLI name (the `kinds=` grammar).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Transient => "transient",
            FaultKind::Stall => "stall",
            FaultKind::TornWrite => "torn",
            FaultKind::BitFlip => "bitflip",
            FaultKind::WorkerKill => "kill",
            FaultKind::TornLease => "tornlease",
            FaultKind::HeartbeatStall => "hbstall",
        }
    }

    /// Look a kind up by CLI name.
    pub fn from_name(name: &str) -> Option<FaultKind> {
        ALL_KINDS.iter().copied().find(|k| k.name() == name)
    }

    /// Does this kind fire at the execution site (`Engine::run`)?
    pub fn is_exec(self) -> bool {
        matches!(
            self,
            FaultKind::Panic | FaultKind::Transient | FaultKind::Stall
        )
    }

    /// Does this kind fire at the store site (`Cache::store`)?
    pub fn is_store(self) -> bool {
        matches!(self, FaultKind::TornWrite | FaultKind::BitFlip)
    }

    /// Does this kind fire at the fabric seams (lease claims, worker
    /// processes, heartbeat threads — see [`crate::fabric`])?
    pub fn is_fabric(self) -> bool {
        matches!(
            self,
            FaultKind::WorkerKill | FaultKind::TornLease | FaultKind::HeartbeatStall
        )
    }
}

/// A deterministic, seeded fault-injection plan. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every decision hash.
    pub seed: u64,
    /// Per-site firing probability in `[0, 1]`.
    pub rate: f64,
    /// Enabled kinds (sorted, deduplicated). Defaults to all.
    pub kinds: Vec<FaultKind>,
}

impl FaultPlan {
    /// A plan enabling every kind.
    pub fn new(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            rate,
            kinds: ALL_KINDS.to_vec(),
        }
    }

    /// Restrict the plan to `kinds`.
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> Self {
        self.kinds = kinds.to_vec();
        self.kinds.sort();
        self.kinds.dedup();
        self
    }

    /// Parse the `--inject` grammar: comma-separated `seed=S`, `rate=P`
    /// and optional `kinds=a+b+c` (kind names joined by `+`). `seed` and
    /// `rate` are required; `kinds` defaults to all five.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut seed: Option<u64> = None;
        let mut rate: Option<f64> = None;
        let mut kinds: Option<Vec<FaultKind>> = None;
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("--inject: expected key=value, got `{part}`"))?;
            match k.trim() {
                "seed" => {
                    seed = Some(
                        v.trim()
                            .parse()
                            .map_err(|_| format!("--inject: seed must be an integer, got `{v}`"))?,
                    )
                }
                "rate" => {
                    let r: f64 = v
                        .trim()
                        .parse()
                        .map_err(|_| format!("--inject: rate must be a number, got `{v}`"))?;
                    if !(0.0..=1.0).contains(&r) {
                        return Err(format!("--inject: rate must be in [0, 1], got {r}"));
                    }
                    rate = Some(r);
                }
                "kinds" => {
                    let parsed: Result<Vec<FaultKind>, String> = v
                        .split('+')
                        .map(str::trim)
                        .filter(|t| !t.is_empty())
                        .map(|t| {
                            FaultKind::from_name(t).ok_or_else(|| {
                                format!(
                                    "--inject: unknown fault kind `{t}` (expected one of {})",
                                    ALL_KINDS
                                        .iter()
                                        .map(|k| k.name())
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                )
                            })
                        })
                        .collect();
                    let parsed = parsed?;
                    if parsed.is_empty() {
                        return Err("--inject: kinds= must list at least one kind".to_string());
                    }
                    kinds = Some(parsed);
                }
                other => {
                    return Err(format!(
                        "--inject: unknown key `{other}` (expected seed, rate, kinds)"
                    ))
                }
            }
        }
        let seed = seed.ok_or("--inject: missing seed=")?;
        let rate = rate.ok_or("--inject: missing rate=")?;
        let plan = FaultPlan::new(seed, rate);
        Ok(match kinds {
            Some(k) => plan.with_kinds(&k),
            None => plan,
        })
    }

    /// Render back to the `--inject` grammar (for reports and logs).
    pub fn summary(&self) -> String {
        let kinds = if self.kinds.as_slice() == ALL_KINDS {
            String::new()
        } else {
            format!(
                ",kinds={}",
                self.kinds
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join("+")
            )
        };
        format!("seed={},rate={}{kinds}", self.seed, self.rate)
    }

    /// Does the plan enable any stall faults? (The engine applies a
    /// fallback deadline when stalls are injectable but no budget is
    /// configured, so a stalled job cannot wedge the wave forever.)
    pub fn can_stall(&self) -> bool {
        self.kinds.contains(&FaultKind::Stall)
    }

    /// The two independent 64-bit lanes of one decision hash.
    fn lanes(&self, site: &str, identity: &str, occurrence: u64) -> (u64, u64) {
        let mut h = Sha256::new();
        h.update(self.seed.to_string().as_bytes());
        h.update(b"\n");
        h.update(site.as_bytes());
        h.update(b"\n");
        h.update(identity.as_bytes());
        h.update(b"\n");
        h.update(occurrence.to_string().as_bytes());
        let d = h.finish_hex();
        let word =
            |o: usize| u64::from_str_radix(&d[o..o + 16], 16).expect("hex digest is valid hex");
        (word(0), word(16))
    }

    /// Roll one decision among `pool`: `None` (no fault) with
    /// probability `1 − rate`, else a uniform pick from the pool.
    fn roll(
        &self,
        site: &str,
        identity: &str,
        occurrence: u64,
        pool: &[FaultKind],
    ) -> Option<FaultKind> {
        if pool.is_empty() || self.rate <= 0.0 {
            return None;
        }
        let (fire, pick) = self.lanes(site, identity, occurrence);
        // Map the top 53 bits to [0, 1) exactly (f64 mantissa width).
        let u = (fire >> 11) as f64 / (1u64 << 53) as f64;
        (u < self.rate).then(|| pool[(pick % pool.len() as u64) as usize])
    }

    /// The fault (if any) injected into execution attempt `attempt` of
    /// the job with spec hash `spec_hash`.
    pub fn exec_fault(&self, spec_hash: &str, attempt: u32) -> Option<FaultKind> {
        let pool: Vec<FaultKind> = self.kinds.iter().copied().filter(|k| k.is_exec()).collect();
        self.roll("exec", spec_hash, u64::from(attempt), &pool)
    }

    /// The fault (if any) injected into the `occurrence`-th store of the
    /// cache entry `key` (see the module docs for how occurrences count
    /// across self-healing cycles).
    pub fn store_fault(&self, key: &str, occurrence: u64) -> Option<FaultKind> {
        let pool: Vec<FaultKind> = self
            .kinds
            .iter()
            .copied()
            .filter(|k| k.is_store())
            .collect();
        self.roll("store", key, occurrence, &pool)
    }

    /// Does the `claim_seq`-th lease claim of `worker` kill the whole
    /// worker process ([`FaultKind::WorkerKill`])? Keyed per worker and
    /// per-process claim sequence, so which jobs die with the worker
    /// depends on the (racy) claim schedule but *whether and when* a
    /// given worker dies is a pure function of the seed.
    pub fn worker_kill(&self, worker: &str, claim_seq: u64) -> bool {
        let pool = [FaultKind::WorkerKill];
        self.kinds.contains(&FaultKind::WorkerKill)
            && self.roll("kill", worker, claim_seq, &pool).is_some()
    }

    /// Is the `occurrence`-th claim write of lease file `name` torn
    /// ([`FaultKind::TornLease`])?
    pub fn lease_fault(&self, name: &str, occurrence: u64) -> bool {
        let pool = [FaultKind::TornLease];
        self.kinds.contains(&FaultKind::TornLease)
            && self.roll("lease", name, occurrence, &pool).is_some()
    }

    /// Does the heartbeat of the claim on `key` at cumulative attempt
    /// `attempt` stall ([`FaultKind::HeartbeatStall`]) — long enough for
    /// peers to steal the lease from the still-running owner?
    pub fn heartbeat_stall(&self, key: &str, attempt: u32) -> bool {
        let pool = [FaultKind::HeartbeatStall];
        self.kinds.contains(&FaultKind::HeartbeatStall)
            && self.roll("hb", key, u64::from(attempt), &pool).is_some()
    }

    /// A deterministic corruption offset for [`FaultKind::BitFlip`] /
    /// truncation point for [`FaultKind::TornWrite`], in `[0, len)`.
    pub fn corrupt_offset(&self, key: &str, occurrence: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let (_, pick) = self.lanes("offset", key, occurrence);
        (pick % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_grammar_round_trips() {
        let p = FaultPlan::parse("seed=42,rate=0.15").unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.rate, 0.15);
        assert_eq!(p.kinds, ALL_KINDS.to_vec());
        assert_eq!(p.summary(), "seed=42,rate=0.15");

        let p = FaultPlan::parse("seed=7, rate=0.5, kinds=transient+torn").unwrap();
        assert_eq!(p.kinds, vec![FaultKind::Transient, FaultKind::TornWrite]);
        assert_eq!(p.summary(), "seed=7,rate=0.5,kinds=transient+torn");

        assert!(FaultPlan::parse("rate=0.5").is_err(), "seed required");
        assert!(FaultPlan::parse("seed=1").is_err(), "rate required");
        assert!(FaultPlan::parse("seed=1,rate=1.5").is_err(), "rate range");
        assert!(FaultPlan::parse("seed=1,rate=0.1,kinds=bogus").is_err());
        assert!(FaultPlan::parse("seed=1,rate=0.1,frob=2").is_err());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(1, 0.5);
        let b = FaultPlan::new(1, 0.5);
        let c = FaultPlan::new(2, 0.5);
        let specs: Vec<String> = (0..64).map(|i| format!("spec-{i}")).collect();
        let roll = |p: &FaultPlan| -> Vec<Option<FaultKind>> {
            specs.iter().map(|s| p.exec_fault(s, 0)).collect()
        };
        assert_eq!(roll(&a), roll(&b), "same seed, same decisions");
        assert_ne!(roll(&a), roll(&c), "different seed, different decisions");
    }

    #[test]
    fn rate_bounds_and_kind_filtering() {
        let never = FaultPlan::new(9, 0.0);
        let always = FaultPlan::new(9, 1.0);
        for i in 0..32 {
            let s = format!("s{i}");
            assert_eq!(never.exec_fault(&s, 0), None);
            assert_eq!(never.store_fault(&s, 0), None);
            assert!(always.exec_fault(&s, 0).is_some_and(|k| k.is_exec()));
            assert!(always.store_fault(&s, 0).is_some_and(|k| k.is_store()));
        }
        // A store-only plan never injects execution faults and vice versa.
        let store_only = FaultPlan::new(9, 1.0).with_kinds(&[FaultKind::TornWrite]);
        let exec_only = FaultPlan::new(9, 1.0).with_kinds(&[FaultKind::Transient]);
        assert_eq!(store_only.exec_fault("x", 0), None);
        assert_eq!(store_only.store_fault("x", 0), Some(FaultKind::TornWrite));
        assert_eq!(exec_only.exec_fault("x", 0), Some(FaultKind::Transient));
        assert_eq!(exec_only.store_fault("x", 0), None);
        assert!(!exec_only.can_stall());
        assert!(FaultPlan::new(0, 0.1).can_stall());
    }

    #[test]
    fn fabric_kinds_fire_only_at_fabric_sites() {
        // Every kind belongs to exactly one site family.
        for k in ALL_KINDS {
            assert_eq!(
                [k.is_exec(), k.is_store(), k.is_fabric()]
                    .iter()
                    .filter(|b| **b)
                    .count(),
                1,
                "{k:?} must belong to exactly one site"
            );
        }
        // Enabling the fabric kinds does not perturb exec/store pools:
        // the PR 6 differential oracle's decisions stay identical.
        let old = FaultPlan::new(7, 0.5).with_kinds(&[
            FaultKind::Panic,
            FaultKind::Transient,
            FaultKind::Stall,
            FaultKind::TornWrite,
            FaultKind::BitFlip,
        ]);
        let all = FaultPlan::new(7, 0.5);
        for i in 0..64 {
            let s = format!("spec-{i}");
            assert_eq!(old.exec_fault(&s, 0), all.exec_fault(&s, 0));
            assert_eq!(old.store_fault(&s, 0), all.store_fault(&s, 0));
            assert!(!old.worker_kill("w1", i), "kind disabled, never fires");
        }
        // Fabric rolls are deterministic and kind-gated.
        let kill = FaultPlan::new(3, 1.0).with_kinds(&[FaultKind::WorkerKill]);
        assert!(kill.worker_kill("w1", 0));
        assert!(!kill.lease_fault("run-x.lease", 0));
        assert!(!kill.heartbeat_stall("key", 0));
        let torn = FaultPlan::new(3, 1.0).with_kinds(&[FaultKind::TornLease]);
        assert!(torn.lease_fault("run-x.lease", 0));
        assert!(!torn.worker_kill("w1", 0));
        let stall = FaultPlan::new(3, 1.0).with_kinds(&[FaultKind::HeartbeatStall]);
        assert!(stall.heartbeat_stall("key", 0));
        // The CLI grammar knows the new names.
        let p = FaultPlan::parse("seed=1,rate=0.5,kinds=kill+tornlease+hbstall").unwrap();
        assert_eq!(
            p.kinds,
            vec![
                FaultKind::WorkerKill,
                FaultKind::TornLease,
                FaultKind::HeartbeatStall
            ]
        );
        assert_eq!(p.summary(), "seed=1,rate=0.5,kinds=kill+tornlease+hbstall");
    }

    #[test]
    fn empirical_rate_tracks_requested_rate() {
        let p = FaultPlan::new(3, 0.2);
        let n = 4000;
        let fired = (0..n)
            .filter(|i| p.exec_fault(&format!("job-{i}"), 0).is_some())
            .count();
        let observed = fired as f64 / n as f64;
        assert!(
            (observed - 0.2).abs() < 0.03,
            "observed rate {observed} far from 0.2"
        );
    }

    #[test]
    fn occurrence_and_attempt_reroll_independently() {
        // With rate 0.5 some (identity, 0) decisions fire and their
        // (identity, 1) re-roll does not — the property retry/self-heal
        // convergence rests on.
        let p = FaultPlan::new(5, 0.5);
        let recovers = (0..64).any(|i| {
            let s = format!("spec-{i}");
            p.exec_fault(&s, 0).is_some() && p.exec_fault(&s, 1).is_none()
        });
        assert!(recovers, "no attempt-1 recovery in 64 specs at rate 0.5");
        let heals = (0..64).any(|i| {
            let k = format!("key-{i}");
            p.store_fault(&k, 0).is_some() && p.store_fault(&k, 1).is_none()
        });
        assert!(heals, "no occurrence-1 recovery in 64 keys at rate 0.5");
    }
}
