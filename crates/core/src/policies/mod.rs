//! The comparison warp-scheduling policies of Section VII.
//!
//! All policies implement [`gpu_sim::Controller`]:
//!
//! * **GTO** — [`gpu_sim::FixedTuple::max`]: maximum warps, all polluting.
//! * **SWL** — [`swl`]: static warp limiting; the best tuple on the
//!   `p = N` diagonal found by offline profiling, no runtime overhead.
//! * **PCAL-SWL** — [`pcal`]: dynamic priority-based cache allocation
//!   seeded by the SWL profile: samples `p` candidates, then hill-climbs
//!   `N` — and, as the paper shows, is prone to nearby local optima.
//! * **Static-Best** — [`static_best`]: the best tuple from a full offline
//!   {N, p} profile of each kernel.
//! * **Random-restart** — [`random_restart`]: stochastic search with local
//!   gradient ascent from random starting tuples each epoch.
//! * **APCM** — [`apcm`]: instruction-based (per-PC) cache bypassing that
//!   filters streaming accesses; no warp throttling.

pub mod apcm;
pub mod pcal;
pub mod random_restart;
pub mod static_best;
pub mod swl;

pub use apcm::ApcmController;
pub use pcal::PcalSwlController;
pub use random_restart::RandomRestartController;
pub use static_best::{static_best_from_grid, static_best_tuple};
pub use swl::{swl_tuple, swl_tuple_from_grid};
