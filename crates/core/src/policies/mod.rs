//! The comparison warp-scheduling policies of Section VII.
//!
//! All policies implement [`gpu_sim::Controller`]:
//!
//! * **GTO** — [`gpu_sim::FixedTuple::max`]: maximum warps, all polluting.
//! * **SWL** — [`swl`]: static warp limiting; the best tuple on the
//!   `p = N` diagonal found by offline profiling, no runtime overhead.
//! * **PCAL-SWL** — [`pcal`]: dynamic priority-based cache allocation
//!   seeded by the SWL profile: samples `p` candidates, then hill-climbs
//!   `N` — and, as the paper shows, is prone to nearby local optima.
//! * **Static-Best** — [`static_best`]: the best tuple from a full offline
//!   {N, p} profile of each kernel.
//! * **Random-restart** — [`random_restart`]: stochastic search with local
//!   gradient ascent from random starting tuples each epoch.
//! * **APCM** — [`apcm`]: instruction-based (per-PC) cache bypassing that
//!   filters streaming accesses; no warp throttling.
//!
//! Every policy declares its control cadence through
//! [`gpu_sim::Controller::next_wake`] so the event-driven run loop can
//! fast-forward stalled spans between controller actions: the dynamic
//! controllers (PCAL-SWL, random-restart, APCM, and Poise's HIE in
//! [`crate::hie`]) report their state-machine deadlines and epoch
//! boundaries, while the static schemes (GTO, SWL, Static-Best) execute
//! through [`gpu_sim::FixedTuple`], which never needs waking. The
//! differential suite in `tests/differential.rs` proves counters are
//! bit-identical to the cycle-stepped reference loop for all seven.

pub mod apcm;
pub mod pcal;
pub mod random_restart;
pub mod static_best;
pub mod swl;

pub use apcm::ApcmController;
pub use pcal::PcalSwlController;
pub use random_restart::RandomRestartController;
pub use static_best::{static_best_from_grid, static_best_tuple};
pub use swl::{swl_tuple, swl_tuple_from_grid};
