//! Static Warp Limiting (SWL), the static flavour of CCWS.
//!
//! SWL couples the two knobs (`p = N`) and picks the best diagonal point
//! by offline profiling. Being static, it pays no runtime overhead — the
//! paper's comparison is deliberately conservative in SWL's favour — but
//! it can only reach the `p = N` line of the solution space.
//!
//! At runtime the chosen tuple executes through [`gpu_sim::FixedTuple`],
//! whose `next_wake` returns `None`: the event-driven run loop may
//! fast-forward stalled spans without ever consulting the controller.

use crate::profiler::{profile_grid, GridSpec, ProfileWindow};
use gpu_sim::{GpuConfig, KernelSource, WarpTuple};
use poise_ml::SpeedupGrid;
use workloads::Workload;

/// Offline-profile the kernel's diagonal and return the best `(n, n)`.
pub fn swl_tuple(spec: &Workload, cfg: &GpuConfig, window: ProfileWindow) -> WarpTuple {
    let max_warps = spec.warps_per_scheduler().min(cfg.max_warps_per_scheduler);
    let grid = profile_grid(spec, cfg, &GridSpec::diagonal(max_warps), window);
    best_of_diagonal(&grid, max_warps)
}

/// Extract the SWL choice from an existing profile (avoids re-profiling
/// when a full grid is already available).
pub fn swl_tuple_from_grid(grid: &SpeedupGrid, max_warps: usize) -> WarpTuple {
    best_of_diagonal(grid, max_warps)
}

fn best_of_diagonal(grid: &SpeedupGrid, max_warps: usize) -> WarpTuple {
    grid.best_diagonal()
        .map(|(t, _)| t)
        .unwrap_or_else(|| WarpTuple::max(max_warps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_best_diagonal_point() {
        let mut g = SpeedupGrid::new(8);
        for n in 1..=8 {
            g.set(n, n, 1.0 + 0.1 * (4 - (n as i64 - 4).abs()) as f64);
        }
        // Peak at n = 4.
        assert_eq!(swl_tuple_from_grid(&g, 8), WarpTuple { n: 4, p: 4 });
    }

    #[test]
    fn empty_grid_falls_back_to_max() {
        let g = SpeedupGrid::new(8);
        assert_eq!(swl_tuple_from_grid(&g, 8), WarpTuple { n: 8, p: 8 });
    }
}
