//! Random-restart hill climbing (paper §VII-J, "Stochastic search").
//!
//! Each epoch the controller picks a uniformly random warp-tuple, performs
//! the same stride-halving gradient-ascent local search Poise uses, and
//! runs at the converged tuple for the remainder of the epoch. Random
//! restarts escape local optima eventually, but — as the paper observes —
//! a random starting point is usually far from the optimum, so much of the
//! epoch is burned sampling mediocre tuples.

use crate::ctrl_state::{Loader, Saver};
use gpu_sim::{ControlCtx, Controller, WarpTuple};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Version header of the serialized random-restart state.
const STATE_HEADER: &str = "random-restart-v1";

/// Default sampling window length per probe (cycles); matches Poise's
/// Tsearch.
const SAMPLE_CYCLES: u64 = 4_000;
/// Default warmup after each steering change (cycles).
const WARMUP_CYCLES: u64 = 2_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    N,
    P,
}

#[derive(Debug, Clone)]
enum State {
    Warmup { until: u64 },
    Sample { until: u64 },
    Stable,
}

/// The random-restart stochastic search controller.
#[derive(Debug)]
pub struct RandomRestartController {
    rng: SmallRng,
    epoch_len: u64,
    epoch_start: u64,
    warmup_cycles: u64,
    sample_cycles: u64,
    state: State,
    axis: Axis,
    stride: usize,
    stride_n: usize,
    stride_p: usize,
    current: WarpTuple,
    current_ipc: Option<f64>,
    pending: Vec<WarpTuple>,
    sampled: Vec<(WarpTuple, f64)>,
    measuring: Option<WarpTuple>,
    /// Converged tuples per epoch (diagnostics).
    pub converged: Vec<WarpTuple>,
}

impl RandomRestartController {
    /// Build with an RNG seed (experiments average over several seeds) and
    /// an epoch length comparable to Poise's Tperiod.
    pub fn new(seed: u64, epoch_len: u64) -> Self {
        RandomRestartController {
            rng: SmallRng::seed_from_u64(seed),
            epoch_len,
            epoch_start: 0,
            warmup_cycles: WARMUP_CYCLES,
            sample_cycles: SAMPLE_CYCLES,
            state: State::Stable,
            axis: Axis::N,
            stride: 2,
            stride_n: 2,
            stride_p: 4,
            current: WarpTuple { n: 1, p: 1 },
            current_ipc: None,
            pending: Vec::new(),
            sampled: Vec::new(),
            measuring: None,
            converged: Vec::new(),
        }
    }

    fn restart(&mut self, ctx: &mut ControlCtx) {
        self.epoch_start = ctx.cycle;
        let n = self.rng.gen_range(1..=ctx.kernel_warps);
        let p = self.rng.gen_range(1..=n);
        self.current = WarpTuple::new(n, p, ctx.kernel_warps);
        self.current_ipc = None;
        self.axis = Axis::N;
        self.stride = self.stride_n;
        self.pending.clear();
        self.sampled.clear();
        self.measure(ctx, self.current);
    }

    /// Builder: override the probe windows (used by fast tests).
    pub fn with_windows(mut self, warmup: u64, sample: u64) -> Self {
        self.warmup_cycles = warmup;
        self.sample_cycles = sample;
        self
    }

    fn measure(&mut self, ctx: &mut ControlCtx, t: WarpTuple) {
        ctx.set_tuple_all(t);
        ctx.reset_window();
        self.measuring = Some(t);
        self.state = State::Warmup {
            until: ctx.cycle + self.warmup_cycles,
        };
    }

    fn neighbour(&self, dir: i64, max_warps: usize) -> Option<WarpTuple> {
        let s = self.stride as i64 * dir;
        let (n, p) = match self.axis {
            Axis::N => (self.current.n as i64 + s, self.current.p as i64),
            Axis::P => (self.current.n as i64, self.current.p as i64 + s),
        };
        (n >= 1 && p >= 1 && p <= n && n <= max_warps as i64)
            .then(|| WarpTuple::new(n as usize, p as usize, max_warps))
    }

    fn queue_step(&mut self, max_warps: usize) {
        self.pending.clear();
        self.sampled.clear();
        for dir in [-1i64, 1] {
            if let Some(t) = self.neighbour(dir, max_warps) {
                self.pending.push(t);
            }
        }
    }

    fn advance(&mut self, ctx: &mut ControlCtx) {
        loop {
            if let Some(t) = self.pending.pop() {
                self.measure(ctx, t);
                return;
            }
            if !self.sampled.is_empty() {
                let cur = self.current_ipc.unwrap_or(0.0);
                let best = self
                    .sampled
                    .iter()
                    .copied()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
                match best {
                    Some((t, ipc)) if ipc > cur => {
                        self.current = t;
                        self.current_ipc = Some(ipc);
                    }
                    _ => self.stride /= 2,
                }
                self.sampled.clear();
            }
            if self.stride == 0 {
                match self.axis {
                    Axis::N => {
                        self.axis = Axis::P;
                        self.stride = self.stride_p;
                        continue;
                    }
                    Axis::P => {
                        self.converged.push(self.current);
                        ctx.set_tuple_all(self.current);
                        self.state = State::Stable;
                        return;
                    }
                }
            }
            self.queue_step(ctx.kernel_warps);
            if self.pending.is_empty() {
                self.stride /= 2;
            }
        }
    }
}

impl Controller for RandomRestartController {
    fn on_kernel_start(&mut self, ctx: &mut ControlCtx) {
        self.restart(ctx);
    }

    fn on_cycle(&mut self, ctx: &mut ControlCtx) {
        if ctx.cycle.saturating_sub(self.epoch_start) >= self.epoch_len {
            self.restart(ctx);
            return;
        }
        match self.state {
            State::Warmup { until } => {
                if ctx.cycle >= until {
                    ctx.reset_window();
                    self.state = State::Sample {
                        until: ctx.cycle + self.sample_cycles,
                    };
                }
            }
            State::Sample { until } => {
                if ctx.cycle >= until {
                    let ipc = ctx.window().ipc;
                    if let Some(t) = self.measuring.take() {
                        if t == self.current && self.current_ipc.is_none() {
                            self.current_ipc = Some(ipc);
                        } else {
                            self.sampled.push((t, ipc));
                        }
                    }
                    self.advance(ctx);
                }
            }
            State::Stable => {}
        }
    }

    fn next_wake(&self, _now: u64) -> Option<u64> {
        // Acts at the active probe deadline and at every epoch restart.
        let epoch_end = self.epoch_start + self.epoch_len;
        let state_deadline = match self.state {
            State::Warmup { until } | State::Sample { until } => Some(until),
            State::Stable => None,
        };
        Some(state_deadline.map_or(epoch_end, |u| u.min(epoch_end)))
    }

    fn save_state(&self) -> String {
        // Exhaustive destructure: construction-time config (epoch length,
        // probe windows, initial strides) is rebuilt from the spec; the RNG
        // stream position and the search FSM are the mutable state.
        let RandomRestartController {
            rng,
            epoch_len: _,
            epoch_start,
            warmup_cycles: _,
            sample_cycles: _,
            state,
            axis,
            stride,
            stride_n: _,
            stride_p: _,
            current,
            current_ipc,
            pending,
            sampled,
            measuring,
            converged,
        } = self;
        let mut s = Saver::new(STATE_HEADER);
        for word in rng.state() {
            s.u64(word);
        }
        s.u64(*epoch_start);
        match state {
            State::Warmup { until } => {
                s.lit("warmup");
                s.u64(*until);
            }
            State::Sample { until } => {
                s.lit("sample");
                s.u64(*until);
            }
            State::Stable => s.lit("stable"),
        }
        s.lit(match axis {
            Axis::N => "n",
            Axis::P => "p",
        });
        s.usize(*stride);
        s.tuple(*current);
        s.opt_f64(*current_ipc);
        s.tuples(pending);
        s.pairs(sampled);
        s.opt_tuple(*measuring);
        s.tuples(converged);
        s.finish()
    }

    fn load_state(&mut self, state: &str) -> bool {
        let parse = || -> Option<_> {
            let mut l = Loader::new(state, STATE_HEADER)?;
            let rng_state = [l.u64()?, l.u64()?, l.u64()?, l.u64()?];
            let epoch_start = l.u64()?;
            let fsm = match l.next()? {
                "warmup" => State::Warmup { until: l.u64()? },
                "sample" => State::Sample { until: l.u64()? },
                "stable" => State::Stable,
                _ => return None,
            };
            let axis = match l.next()? {
                "n" => Axis::N,
                "p" => Axis::P,
                _ => return None,
            };
            let stride = l.usize()?;
            let current = l.tuple()?;
            let current_ipc = l.opt_f64()?;
            let pending = l.tuples()?;
            let sampled = l.pairs()?;
            let measuring = l.opt_tuple()?;
            let converged = l.tuples()?;
            l.done()?;
            Some((
                rng_state,
                epoch_start,
                fsm,
                axis,
                stride,
                current,
                current_ipc,
                pending,
                sampled,
                measuring,
                converged,
            ))
        };
        let Some((
            rng_state,
            epoch_start,
            fsm,
            axis,
            stride,
            current,
            current_ipc,
            pending,
            sampled,
            measuring,
            converged,
        )) = parse()
        else {
            return false;
        };
        self.rng = SmallRng::from_state(rng_state);
        self.epoch_start = epoch_start;
        self.state = fsm;
        self.axis = axis;
        self.stride = stride;
        self.current = current;
        self.current_ipc = current_ipc;
        self.pending = pending;
        self.sampled = sampled;
        self.measuring = measuring;
        self.converged = converged;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig};
    use workloads::{AccessMix, KernelSpec};

    #[test]
    fn converges_each_epoch_within_domain() {
        let spec = KernelSpec::steady("rr-t", AccessMix::memory_sensitive(), 5);
        let mut gpu = Gpu::new(GpuConfig::scaled(1), &spec);
        let mut ctrl = RandomRestartController::new(42, 15_000).with_windows(200, 400);
        gpu.run(&mut ctrl, 60_000);
        assert!(
            ctrl.converged.len() >= 2,
            "expected multiple restarts, got {}",
            ctrl.converged.len()
        );
        for t in &ctrl.converged {
            assert!(t.p <= t.n && t.n <= 24);
        }
    }

    #[test]
    fn different_seeds_restart_differently() {
        let spec = KernelSpec::steady("rr-s", AccessMix::memory_sensitive(), 5);
        let run = |seed| {
            let mut gpu = Gpu::new(GpuConfig::scaled(1), &spec);
            let mut ctrl = RandomRestartController::new(seed, 12_000).with_windows(200, 400);
            gpu.run(&mut ctrl, 40_000);
            ctrl.converged
        };
        // Not guaranteed distinct in principle, but over several epochs
        // with different seeds a collision of all tuples is vanishingly
        // rare.
        assert_ne!(run(1), run(999));
    }
}
