//! Dynamic PCAL-SWL: priority-based cache allocation seeded by the SWL
//! profile (paper Section III-B and VII-C).
//!
//! The controller starts at the SWL point `(n0, n0)`. It then (1) samples
//! a small set of `p` candidates — the hardware does this in parallel
//! across SMs; this model samples them in consecutive windows, charging
//! an equivalent total sampling time — and adopts the best; (2) hill
//! climbs `N` in ±1 steps, one sampling window per step, until no
//! neighbour improves. As in the paper, the search is greedy with unit
//! steps, so a nearby performance valley traps it in a local optimum.

use crate::ctrl_state::{Loader, Saver};
use gpu_sim::{ControlCtx, Controller, WarpTuple, WindowSample};

/// Version header of the serialized PCAL state.
const STATE_HEADER: &str = "pcal-swl-v1";

/// Sampling window length of each PCAL measurement (cycles).
const SAMPLE_CYCLES: u64 = 6_000;
/// Warmup after each steering change (cycles).
const WARMUP_CYCLES: u64 = 2_000;

#[derive(Debug, Clone)]
enum State {
    /// Warmup before the next measurement.
    Warmup { until: u64 },
    /// Measuring the current candidate.
    Sample { until: u64 },
    /// All done; running at the converged tuple.
    Stable,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Trying the `p` candidates.
    SearchP,
    /// Hill climbing in `N`.
    ClimbN,
}

/// The dynamic PCAL-SWL controller.
#[derive(Debug)]
pub struct PcalSwlController {
    /// SWL starting point (from the offline diagonal profile).
    start: WarpTuple,
    state: State,
    phase: Phase,
    /// Remaining `p` candidates to try.
    p_candidates: Vec<usize>,
    /// Measurements taken in the current phase: (tuple, ipc).
    measured: Vec<(WarpTuple, f64)>,
    /// The tuple currently being measured.
    measuring: Option<WarpTuple>,
    /// Best tuple adopted so far and its IPC.
    best: WarpTuple,
    best_ipc: f64,
    /// Hill-climb direction state: candidates left to try around best.
    n_candidates: Vec<usize>,
}

impl PcalSwlController {
    /// Build the controller from the SWL profile point.
    pub fn new(swl_point: WarpTuple) -> Self {
        PcalSwlController {
            start: swl_point,
            state: State::Stable,
            phase: Phase::SearchP,
            p_candidates: Vec::new(),
            measured: Vec::new(),
            measuring: None,
            best: swl_point,
            best_ipc: 0.0,
            n_candidates: Vec::new(),
        }
    }

    /// The tuple PCAL converged to (meaningful once stable).
    pub fn converged(&self) -> WarpTuple {
        self.best
    }

    fn steer_and_measure(&mut self, ctx: &mut ControlCtx, t: WarpTuple) {
        ctx.set_tuple_all(t);
        ctx.reset_window();
        self.measuring = Some(t);
        self.state = State::Warmup {
            until: ctx.cycle + WARMUP_CYCLES,
        };
    }

    fn p_candidate_set(n: usize) -> Vec<usize> {
        let mut ps = vec![1usize, 2, 4, 8, 16];
        ps.push(n);
        ps.retain(|&p| p >= 1 && p <= n);
        ps.sort_unstable();
        ps.dedup();
        ps.reverse(); // pop() yields ascending order
        ps
    }

    fn next_action(&mut self, ctx: &mut ControlCtx) {
        match self.phase {
            Phase::SearchP => {
                if let Some(p) = self.p_candidates.pop() {
                    let t = WarpTuple::new(self.start.n, p, ctx.kernel_warps);
                    self.steer_and_measure(ctx, t);
                    return;
                }
                // Adopt the best p measured; move to the N climb.
                if let Some(&(t, ipc)) = self
                    .measured
                    .iter()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                {
                    self.best = t;
                    self.best_ipc = ipc;
                }
                self.measured.clear();
                self.phase = Phase::ClimbN;
                self.n_candidates = vec![
                    self.best.n.saturating_sub(1).max(1),
                    (self.best.n + 1).min(ctx.kernel_warps),
                ];
                self.n_candidates.retain(|&n| n != self.best.n);
                self.next_action(ctx);
            }
            Phase::ClimbN => {
                if let Some(n) = self.n_candidates.pop() {
                    let t = WarpTuple::new(n, self.best.p.min(n), ctx.kernel_warps);
                    self.steer_and_measure(ctx, t);
                    return;
                }
                // Unit-step gradient ascent: move if a neighbour beat the
                // current best, else converge.
                let better = self
                    .measured
                    .iter()
                    .copied()
                    .filter(|&(_, ipc)| ipc > self.best_ipc)
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
                self.measured.clear();
                match better {
                    Some((t, ipc)) => {
                        let moved_up = t.n > self.best.n;
                        self.best = t;
                        self.best_ipc = ipc;
                        // Keep climbing in the improving direction only.
                        let next = if moved_up {
                            (t.n + 1).min(ctx.kernel_warps)
                        } else {
                            t.n.saturating_sub(1).max(1)
                        };
                        if next != t.n {
                            self.n_candidates = vec![next];
                            self.next_action(ctx);
                        } else {
                            self.finish(ctx);
                        }
                    }
                    None => self.finish(ctx),
                }
            }
        }
    }

    fn finish(&mut self, ctx: &mut ControlCtx) {
        ctx.set_tuple_all(self.best);
        self.state = State::Stable;
    }
}

impl Controller for PcalSwlController {
    fn on_kernel_start(&mut self, ctx: &mut ControlCtx) {
        self.start = WarpTuple::new(self.start.n, self.start.p, ctx.kernel_warps);
        self.best = self.start;
        self.best_ipc = 0.0;
        self.phase = Phase::SearchP;
        self.measured.clear();
        self.p_candidates = Self::p_candidate_set(self.start.n);
        self.next_action(ctx);
    }

    fn on_cycle(&mut self, ctx: &mut ControlCtx) {
        match self.state {
            State::Warmup { until } => {
                if ctx.cycle >= until {
                    ctx.reset_window();
                    self.state = State::Sample {
                        until: ctx.cycle + SAMPLE_CYCLES,
                    };
                }
            }
            State::Sample { until } => {
                if ctx.cycle >= until {
                    let w: WindowSample = ctx.window();
                    if let Some(t) = self.measuring.take() {
                        self.measured.push((t, w.ipc));
                    }
                    self.next_action(ctx);
                }
            }
            State::Stable => {}
        }
    }

    fn next_wake(&self, _now: u64) -> Option<u64> {
        // PCAL has no epoch rollover: once converged it never acts again.
        match self.state {
            State::Warmup { until } | State::Sample { until } => Some(until),
            State::Stable => None,
        }
    }

    fn save_state(&self) -> String {
        // Exhaustive destructure: a new mutable field must join the encoding.
        let PcalSwlController {
            start,
            state,
            phase,
            p_candidates,
            measured,
            measuring,
            best,
            best_ipc,
            n_candidates,
        } = self;
        let mut s = Saver::new(STATE_HEADER);
        s.tuple(*start);
        match state {
            State::Warmup { until } => {
                s.lit("warmup");
                s.u64(*until);
            }
            State::Sample { until } => {
                s.lit("sample");
                s.u64(*until);
            }
            State::Stable => s.lit("stable"),
        }
        s.lit(match phase {
            Phase::SearchP => "search-p",
            Phase::ClimbN => "climb-n",
        });
        s.usizes(p_candidates);
        s.pairs(measured);
        s.opt_tuple(*measuring);
        s.tuple(*best);
        s.f64(*best_ipc);
        s.usizes(n_candidates);
        s.finish()
    }

    fn load_state(&mut self, state: &str) -> bool {
        let parse = || -> Option<_> {
            let mut l = Loader::new(state, STATE_HEADER)?;
            let start = l.tuple()?;
            let fsm = match l.next()? {
                "warmup" => State::Warmup { until: l.u64()? },
                "sample" => State::Sample { until: l.u64()? },
                "stable" => State::Stable,
                _ => return None,
            };
            let phase = match l.next()? {
                "search-p" => Phase::SearchP,
                "climb-n" => Phase::ClimbN,
                _ => return None,
            };
            let p_candidates = l.usizes()?;
            let measured = l.pairs()?;
            let measuring = l.opt_tuple()?;
            let best = l.tuple()?;
            let best_ipc = l.f64()?;
            let n_candidates = l.usizes()?;
            l.done()?;
            Some((
                start,
                fsm,
                phase,
                p_candidates,
                measured,
                measuring,
                best,
                best_ipc,
                n_candidates,
            ))
        };
        let Some((
            start,
            fsm,
            phase,
            p_candidates,
            measured,
            measuring,
            best,
            best_ipc,
            n_candidates,
        )) = parse()
        else {
            return false;
        };
        self.start = start;
        self.state = fsm;
        self.phase = phase;
        self.p_candidates = p_candidates;
        self.measured = measured;
        self.measuring = measuring;
        self.best = best;
        self.best_ipc = best_ipc;
        self.n_candidates = n_candidates;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig};
    use workloads::{AccessMix, KernelSpec};

    #[test]
    fn p_candidates_are_bounded_and_sorted() {
        let ps = PcalSwlController::p_candidate_set(6);
        // pop order: ascending → stored descending.
        assert_eq!(ps, vec![6, 4, 2, 1]);
        let ps24 = PcalSwlController::p_candidate_set(24);
        assert!(ps24.contains(&16) && ps24.contains(&24));
    }

    #[test]
    fn pcal_converges_and_stays_in_domain() {
        let spec = KernelSpec::steady("pcal-t", AccessMix::memory_sensitive(), 3);
        let mut gpu = Gpu::new(GpuConfig::scaled(1), &spec);
        let mut ctrl = PcalSwlController::new(WarpTuple::new(4, 4, 24));
        gpu.run(&mut ctrl, 200_000);
        let t = ctrl.converged();
        assert!(t.p <= t.n && t.n <= 24);
        assert!(matches!(ctrl.state, State::Stable), "search must converge");
    }

    #[test]
    fn pcal_improves_over_naive_start_for_thrashing_kernel() {
        // With a thrash-heavy kernel, PCAL should not end up at max warps
        // with max pollution.
        let mut mix = AccessMix::memory_sensitive();
        mix.hot_lines = 24;
        mix.hot_frac = 0.9;
        let spec = KernelSpec::steady("pcal-t2", mix, 4);
        let mut gpu = Gpu::new(GpuConfig::scaled(1), &spec);
        let mut ctrl = PcalSwlController::new(WarpTuple::new(3, 3, 24));
        gpu.run(&mut ctrl, 200_000);
        let t = ctrl.converged();
        assert!(t.n < 24 || t.p < 24, "PCAL stayed at the baseline: {t}");
    }
}
