//! APCM-style access-pattern-aware cache management (paper §VII-J,
//! after Koo et al., ISCA 2017).
//!
//! APCM classifies static load instructions (PCs) by their observed
//! locality and bypasses the L1 for streaming PCs, protecting the cache
//! for high-locality instructions. Unlike Poise it exercises no control
//! over the degree of multithreading: the kernel always runs with maximum
//! warps. The controller samples per-PC counters for a monitoring window
//! each epoch, then installs bypass decisions.

use crate::ctrl_state::{Loader, Saver};
use gpu_sim::{ControlCtx, Controller, WarpTuple};

/// Version header of the serialized APCM state.
const STATE_HEADER: &str = "apcm-v1";

/// Default monitoring window per epoch (cycles). Long enough that the
/// protected working set has warmed before classification.
const MONITOR_CYCLES: u64 = 24_000;
/// Hit-rate threshold below which a PC is classified as streaming or
/// thrashing and bypassed.
const BYPASS_HIT_RATE: f64 = 0.15;
/// Minimum accesses before a PC is classified (avoids noisy decisions).
const MIN_ACCESSES: u64 = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Monitoring { until: u64 },
    Applied,
}

/// The APCM-style controller.
#[derive(Debug)]
pub struct ApcmController {
    epoch_len: u64,
    epoch_start: u64,
    monitor_cycles: u64,
    state: State,
    /// PCs currently bypassed (diagnostics).
    pub bypassed: Vec<usize>,
}

impl ApcmController {
    /// Build with an epoch length (re-classification period).
    pub fn new(epoch_len: u64) -> Self {
        ApcmController {
            epoch_len,
            epoch_start: 0,
            monitor_cycles: MONITOR_CYCLES,
            state: State::Applied,
            bypassed: Vec::new(),
        }
    }

    /// Builder: override the monitoring window (used by fast tests).
    pub fn with_monitor_cycles(mut self, cycles: u64) -> Self {
        self.monitor_cycles = cycles;
        self
    }

    fn begin_monitoring(&mut self, ctx: &mut ControlCtx) {
        self.epoch_start = ctx.cycle;
        // Monitoring observes the unfiltered access stream.
        let n_pcs = ctx.pc_stats().len();
        for pc in 0..n_pcs {
            ctx.set_bypass_pc(pc, false);
        }
        ctx.reset_pc_stats();
        ctx.set_tuple_all(WarpTuple::max(ctx.kernel_warps));
        self.state = State::Monitoring {
            until: ctx.cycle + self.monitor_cycles,
        };
    }

    fn classify_and_apply(&mut self, ctx: &mut ControlCtx) {
        self.bypassed.clear();
        let stats = ctx.pc_stats();
        let decisions: Vec<(usize, bool)> = stats
            .iter()
            .enumerate()
            .map(|(pc, s)| {
                let bypass = s.accesses >= MIN_ACCESSES
                    && (s.hits as f64) < BYPASS_HIT_RATE * s.accesses as f64;
                (pc, bypass)
            })
            .collect();
        for (pc, bypass) in decisions {
            ctx.set_bypass_pc(pc, bypass);
            if bypass {
                self.bypassed.push(pc);
            }
        }
        self.state = State::Applied;
    }
}

impl Controller for ApcmController {
    fn on_kernel_start(&mut self, ctx: &mut ControlCtx) {
        self.begin_monitoring(ctx);
    }

    fn on_cycle(&mut self, ctx: &mut ControlCtx) {
        if ctx.cycle.saturating_sub(self.epoch_start) >= self.epoch_len {
            self.begin_monitoring(ctx);
            return;
        }
        if let State::Monitoring { until } = self.state {
            if ctx.cycle >= until {
                self.classify_and_apply(ctx);
            }
        }
    }

    fn next_wake(&self, _now: u64) -> Option<u64> {
        // Acts at the monitoring deadline and at every epoch rollover.
        let epoch_end = self.epoch_start + self.epoch_len;
        match self.state {
            State::Monitoring { until } => Some(until.min(epoch_end)),
            State::Applied => Some(epoch_end),
        }
    }

    fn save_state(&self) -> String {
        // Exhaustive destructure: epoch/monitor lengths are construction
        // config; the epoch phase and installed bypass set are the state.
        // (The bypass bits themselves live in the GPU snapshot.)
        let ApcmController {
            epoch_len: _,
            epoch_start,
            monitor_cycles: _,
            state,
            bypassed,
        } = self;
        let mut s = Saver::new(STATE_HEADER);
        s.u64(*epoch_start);
        match state {
            State::Monitoring { until } => {
                s.lit("monitoring");
                s.u64(*until);
            }
            State::Applied => s.lit("applied"),
        }
        s.usizes(bypassed);
        s.finish()
    }

    fn load_state(&mut self, state: &str) -> bool {
        let parse = || -> Option<_> {
            let mut l = Loader::new(state, STATE_HEADER)?;
            let epoch_start = l.u64()?;
            let fsm = match l.next()? {
                "monitoring" => State::Monitoring { until: l.u64()? },
                "applied" => State::Applied,
                _ => return None,
            };
            let bypassed = l.usizes()?;
            l.done()?;
            Some((epoch_start, fsm, bypassed))
        };
        let Some((epoch_start, fsm, bypassed)) = parse() else {
            return false;
        };
        self.epoch_start = epoch_start;
        self.state = fsm;
        self.bypassed = bypassed;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig};
    use workloads::spec::pcs;
    use workloads::{AccessMix, KernelSpec};

    fn pc_cfg() -> GpuConfig {
        let mut cfg = GpuConfig::scaled(1);
        cfg.track_pc_stats = true;
        cfg
    }

    #[test]
    fn apcm_bypasses_streaming_pcs_not_hot_ones() {
        // A kernel with a strong hot set and a strong stream component.
        let mut mix = AccessMix::memory_sensitive();
        mix.stream_frac = 0.3;
        mix.shared_frac = 0.0;
        mix.hot_frac = 1.0;
        mix.hot_lines = 1; // single line per warp: hits even under thrash
        mix.hot_repeat = 4;
        let spec = KernelSpec::steady("apcm-t", mix, 6);
        let mut gpu = Gpu::new(pc_cfg(), &spec);
        let mut ctrl = ApcmController::new(100_000);
        gpu.run(&mut ctrl, 40_000);
        assert!(
            ctrl.bypassed.contains(&(pcs::STREAM as usize)),
            "streaming PC must be bypassed, got {:?}",
            ctrl.bypassed
        );
        assert!(
            !ctrl.bypassed.contains(&(pcs::HOT as usize)),
            "hot PC must be protected, got {:?}",
            ctrl.bypassed
        );
    }

    #[test]
    fn apcm_runs_at_maximum_warps() {
        let spec = KernelSpec::steady("apcm-w", AccessMix::memory_sensitive(), 6);
        let mut gpu = Gpu::new(pc_cfg(), &spec);
        let mut ctrl = ApcmController::new(100_000);
        gpu.run(&mut ctrl, 20_000);
        assert_eq!(
            gpu.sms()[0].schedulers[0].tuple(),
            WarpTuple { n: 24, p: 24 },
            "APCM exercises no warp throttling"
        );
    }
}
