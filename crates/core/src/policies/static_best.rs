//! Static-Best: run each kernel at the best-performing warp-tuple found by
//! exhaustive offline profiling of the {N, p} space.
//!
//! This is the paper's oracle-like upper bound for static schemes: it pays
//! no runtime overhead but, profiling at whole-kernel granularity, it
//! cannot react to phase changes inside monolithic kernels — which is how
//! Poise occasionally beats it (syrk, gsmv, mvt, atax).
//!
//! At runtime the chosen tuple executes through [`gpu_sim::FixedTuple`],
//! whose `next_wake` returns `None`: the event-driven run loop may
//! fast-forward stalled spans without ever consulting the controller.

use crate::profiler::{profile_grid, GridSpec, ProfileWindow};
use gpu_sim::{GpuConfig, KernelSource, WarpTuple};
use poise_ml::SpeedupGrid;
use workloads::Workload;

/// Offline-profile the kernel over a grid and return the best tuple.
pub fn static_best_tuple(
    spec: &Workload,
    cfg: &GpuConfig,
    grid: &GridSpec,
    window: ProfileWindow,
) -> WarpTuple {
    let max_warps = spec.warps_per_scheduler().min(cfg.max_warps_per_scheduler);
    let profile = profile_grid(spec, cfg, grid, window);
    static_best_from_grid(&profile, max_warps)
}

/// Extract the best tuple from an existing profile.
pub fn static_best_from_grid(grid: &SpeedupGrid, max_warps: usize) -> WarpTuple {
    grid.best_performance()
        .map(|(t, _)| t)
        .unwrap_or_else(|| WarpTuple::max(max_warps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_global_optimum_off_diagonal() {
        let mut g = SpeedupGrid::new(8);
        for n in 1..=8 {
            for p in 1..=n {
                g.set(n, p, 1.0);
            }
        }
        g.set(7, 1, 1.9);
        g.set(3, 3, 1.4);
        assert_eq!(static_best_from_grid(&g, 8), WarpTuple { n: 7, p: 1 });
    }

    #[test]
    fn empty_grid_falls_back_to_max() {
        let g = SpeedupGrid::new(6);
        assert_eq!(static_best_from_grid(&g, 6), WarpTuple { n: 6, p: 6 });
    }
}
