//! Poise's runtime parameters (paper Table IV).

use poise_ml::ScoringWeights;

/// All timing and threshold parameters of Poise, with Table IV defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoiseParams {
    /// ω0, ω1, ω2 — performance scoring weights (Eq. 12).
    pub scoring: ScoringWeights,
    /// Tperiod — inference epoch length in cycles.
    pub t_period: u64,
    /// Twarmup — warmup before each sampling window, in cycles.
    pub t_warmup: u64,
    /// Tfeature — feature-collection sampling window, in cycles.
    pub t_feature: u64,
    /// Tsearch — local-search sampling window, in cycles.
    pub t_search: u64,
    /// Imax — In cut-off above which a kernel is treated as
    /// compute-intensive and run at maximum warps.
    pub i_max: f64,
    /// εN — initial local-search stride along N.
    pub stride_n: usize,
    /// εp — initial local-search stride along p.
    pub stride_p: usize,
}

impl Default for PoiseParams {
    fn default() -> Self {
        PoiseParams {
            scoring: ScoringWeights::default(),
            t_period: 200_000,
            t_warmup: 2_000,
            t_feature: 10_000,
            t_search: 4_000,
            i_max: 49.0,
            stride_n: 2,
            stride_p: 4,
        }
    }
}

impl PoiseParams {
    /// A scaled-down parameter set for fast tests: all windows shrunk by
    /// `factor` (minimum 1 cycle each).
    pub fn scaled_down(factor: u64) -> Self {
        let d = |v: u64| (v / factor).max(1);
        let p = PoiseParams::default();
        PoiseParams {
            t_period: d(p.t_period),
            t_warmup: d(p.t_warmup),
            t_feature: d(p.t_feature),
            t_search: d(p.t_search),
            ..p
        }
    }

    /// Builder: override the local-search strides (Fig. 11 study).
    pub fn with_strides(mut self, n: usize, p: usize) -> Self {
        self.stride_n = n;
        self.stride_p = p;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iv() {
        let p = PoiseParams::default();
        assert_eq!(p.scoring.0, [1.0, 0.50, 0.25]);
        assert_eq!(p.t_period, 200_000);
        assert_eq!(p.t_warmup, 2_000);
        assert_eq!(p.t_feature, 10_000);
        assert_eq!(p.t_search, 4_000);
        assert_eq!(p.i_max, 49.0);
        assert_eq!(p.stride_n, 2);
        assert_eq!(p.stride_p, 4);
    }

    #[test]
    fn scaled_down_divides_windows() {
        let p = PoiseParams::scaled_down(10);
        assert_eq!(p.t_period, 20_000);
        assert_eq!(p.t_warmup, 200);
        assert_eq!(p.i_max, 49.0);
    }

    #[test]
    fn with_strides_overrides() {
        let p = PoiseParams::default().with_strides(4, 4);
        assert_eq!((p.stride_n, p.stride_p), (4, 4));
    }
}
