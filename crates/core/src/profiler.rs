//! Offline {N, p} profiling: steady-state runs at fixed tuples, full or
//! coarse grid sweeps (parallelised with [`std::thread::scope`]), and the
//! `Pbest` classification.

use crate::parallel::parallel_map;
use gpu_sim::{Counters, FixedTuple, Gpu, GpuConfig, KernelSource, WarpTuple};
use poise_ml::SpeedupGrid;
use workloads::Workload;

/// Warmup/measure windows of a profiling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileWindow {
    /// Cycles simulated before measurement starts.
    pub warmup: u64,
    /// Cycles measured.
    pub measure: u64,
}

impl Default for ProfileWindow {
    fn default() -> Self {
        // Under maximal thrashing the protected working set of a small-p
        // tuple takes ~20k cycles to become resident (every fill fights a
        // saturated memory system), so steady-state measurement needs a
        // long warmup.
        ProfileWindow {
            warmup: 18_000,
            measure: 8_000,
        }
    }
}

impl ProfileWindow {
    /// A long window for the Pbest classification runs: a 64× L1 holds
    /// thousands of lines and takes ~100k cycles to warm through a cold
    /// memory hierarchy.
    pub fn pbest() -> Self {
        ProfileWindow {
            warmup: 100_000,
            measure: 30_000,
        }
    }
}

/// The result of one steady-state run at a fixed tuple.
#[derive(Debug, Clone)]
pub struct SteadyState {
    /// The tuple the run executed at.
    pub tuple: WarpTuple,
    /// Counters over the measurement window only.
    pub window: Counters,
}

impl SteadyState {
    /// Instructions per cycle over the measurement window.
    pub fn ipc(&self) -> f64 {
        self.window.ipc()
    }
}

/// Run `spec` at a fixed `tuple` and return windowed counters.
pub fn run_tuple(
    spec: &Workload,
    cfg: &GpuConfig,
    tuple: WarpTuple,
    window: ProfileWindow,
) -> SteadyState {
    let mut gpu = Gpu::new(cfg.clone(), spec);
    let mut ctrl = FixedTuple::new(tuple);
    gpu.run(&mut ctrl, window.warmup);
    gpu.stats_mut().reset_window();
    gpu.run(&mut ctrl, window.measure);
    SteadyState {
        tuple,
        window: gpu.stats().window,
    }
}

/// Which {N, p} points to profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSpec {
    points: Vec<(usize, usize)>,
    max_n: usize,
}

impl GridSpec {
    /// Every tuple with `1 <= p <= n <= max_n`.
    pub fn full(max_n: usize) -> Self {
        let points = (1..=max_n)
            .flat_map(|n| (1..=n).map(move |p| (n, p)))
            .collect();
        GridSpec { points, max_n }
    }

    /// A cheaper grid: N restricted to a geometric-ish ladder and p to
    /// powers of two plus the diagonal — dense enough for scoring while an
    /// order of magnitude cheaper than the full triangle.
    pub fn coarse(max_n: usize) -> Self {
        let mut ns: Vec<usize> = vec![1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24];
        ns.retain(|&n| n <= max_n);
        if !ns.contains(&max_n) {
            ns.push(max_n);
        }
        let mut points = Vec::new();
        for &n in &ns {
            let mut ps = vec![1usize, 2, 4, 8, 16];
            ps.push(n);
            ps.push(n.saturating_sub(1).max(1));
            ps.sort_unstable();
            ps.dedup();
            for p in ps {
                if p <= n {
                    points.push((n, p));
                }
            }
        }
        GridSpec { points, max_n }
    }

    /// The diagonal `p == n` only (the SWL search space).
    pub fn diagonal(max_n: usize) -> Self {
        GridSpec {
            points: (1..=max_n).map(|n| (n, n)).collect(),
            max_n,
        }
    }

    /// The profiled points.
    pub fn points(&self) -> &[(usize, usize)] {
        &self.points
    }

    /// Largest N in the grid.
    pub fn max_n(&self) -> usize {
        self.max_n
    }
}

/// Profile `spec` over `grid`, returning speedups relative to the maximal
/// tuple `(max, max)` (the GTO baseline). Runs points in parallel across
/// the host's cores.
pub fn profile_grid(
    spec: &Workload,
    cfg: &GpuConfig,
    grid: &GridSpec,
    window: ProfileWindow,
) -> SpeedupGrid {
    let max_warps = spec.warps_per_scheduler().min(cfg.max_warps_per_scheduler);
    let base = run_tuple(spec, cfg, WarpTuple::max(max_warps), window);
    let base_ipc = base.ipc().max(1e-9);

    let points: Vec<(usize, usize)> = grid
        .points()
        .iter()
        .copied()
        .filter(|&(n, p)| n <= max_warps && p <= n)
        .collect();

    let results = parallel_map(&points, |&(n, p)| {
        let st = run_tuple(spec, cfg, WarpTuple { n, p }, window);
        (n, p, st.ipc() / base_ipc)
    });

    let mut out = SpeedupGrid::new(max_warps);
    for (n, p, s) in results {
        out.set(n, p, s);
    }
    // The baseline point is a speedup of exactly 1 by construction.
    out.set(max_warps, max_warps, 1.0);
    out
}

/// Compute `Pbest`: the speedup of the kernel when the L1 is scaled 64×
/// (the paper's memory-sensitivity classifier; sensitive iff > 1.4).
pub fn pbest(spec: &Workload, cfg: &GpuConfig, window: ProfileWindow) -> f64 {
    let max_warps = spec.warps_per_scheduler().min(cfg.max_warps_per_scheduler);
    let t = WarpTuple::max(max_warps);
    let base = run_tuple(spec, cfg, t, window);
    let big_cfg = cfg.clone().with_l1_scale(64);
    let big = run_tuple(spec, &big_cfg, t, window);
    big.ipc() / base.ipc().max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{AccessMix, KernelSpec};

    fn quick_cfg() -> GpuConfig {
        GpuConfig::scaled(2)
    }

    fn thrashy_kernel() -> Workload {
        KernelSpec::steady("thrash", AccessMix::memory_sensitive(), 5).into()
    }

    #[test]
    fn grid_specs_cover_expected_points() {
        let full = GridSpec::full(4);
        assert_eq!(full.points().len(), 1 + 2 + 3 + 4);
        let diag = GridSpec::diagonal(6);
        assert!(diag.points().iter().all(|&(n, p)| n == p));
        assert_eq!(diag.points().len(), 6);
        let coarse = GridSpec::coarse(24);
        assert!(coarse.points().len() < GridSpec::full(24).points().len());
        // The diagonal of every ladder N must be present for SWL-style
        // lookups, including the extremes.
        for n in [1, 2, 4, 8, 16, 24] {
            assert!(coarse.points().contains(&(n, n)), "missing ({n},{n})");
        }
    }

    #[test]
    fn run_tuple_measures_window_only() {
        let st = run_tuple(
            &thrashy_kernel(),
            &quick_cfg(),
            WarpTuple::new(4, 2, 24),
            ProfileWindow {
                warmup: 500,
                measure: 1_000,
            },
        );
        assert_eq!(st.window.cycles, 1_000);
        assert!(st.window.instructions > 0);
    }

    #[test]
    fn profile_grid_normalises_to_baseline() {
        let g = profile_grid(
            &thrashy_kernel(),
            &quick_cfg(),
            &GridSpec::diagonal(8),
            ProfileWindow {
                warmup: 300,
                measure: 800,
            },
        );
        // The max-warps diagonal point is the baseline itself.
        let max_n = g.max_n();
        let s = g.get(max_n, max_n).unwrap();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pbest_exceeds_one_for_thrashing_kernels() {
        // The big cache needs a long warmup before its benefit shows.
        let p = pbest(
            &thrashy_kernel(),
            &quick_cfg(),
            ProfileWindow {
                warmup: 30_000,
                measure: 8_000,
            },
        );
        assert!(p > 1.1, "64x L1 must help a thrashing kernel, got {p}");
    }

    #[test]
    fn profile_respects_kernel_occupancy() {
        let k: Workload = KernelSpec::steady("thrash", AccessMix::memory_sensitive(), 5)
            .with_warps(8)
            .into();
        let g = profile_grid(
            &k,
            &quick_cfg(),
            &GridSpec::full(24),
            ProfileWindow {
                warmup: 100,
                measure: 300,
            },
        );
        assert_eq!(g.max_n(), 8);
        assert!(g.get(9, 1).is_none());
    }
}
