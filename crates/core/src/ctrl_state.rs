//! Token-stream helpers for controller state serialization.
//!
//! Policy controllers carry mutable state between controller barriers
//! (FSM positions, sampled IPCs, RNG streams). Simulation snapshots
//! (`gpu_sim::snapshot`) capture the machine; the [`Controller::save_state`]
//! / [`Controller::load_state`] hooks capture the policy. This module gives
//! every controller the same compact, whitespace-separated token format:
//!
//! * integers in decimal;
//! * `f64` as 16 hex digits of `to_bits` (bit-exact round trips — the
//!   differential oracle compares restored runs for byte identity, so
//!   decimal shortest-round-trip formatting is not good enough);
//! * warp-tuples as `n:p` single tokens;
//! * `Option<_>` as `-` for `None`, the value token otherwise;
//! * `Vec<_>` as a length token followed by the elements.
//!
//! Loading is all-or-nothing: [`Loader`] methods return `Option` so a
//! controller can parse the full stream into locals and only then commit,
//! and [`Loader::done`] rejects trailing garbage. A failed load leaves the
//! controller untouched and `load_state` returns `false`, which the
//! segmented runner treats as "snapshot unusable — fall back to a cold
//! prefix run".
//!
//! [`Controller::save_state`]: gpu_sim::Controller::save_state
//! [`Controller::load_state`]: gpu_sim::Controller::load_state

use gpu_sim::{WarpTuple, WindowSample};
use std::fmt::Write as _;
use std::str::SplitWhitespace;

/// Accumulates tokens for `save_state`.
#[derive(Debug)]
pub(crate) struct Saver {
    buf: String,
}

impl Saver {
    /// Start a stream with a single-token version header
    /// (e.g. `poise-hie-v1`).
    pub(crate) fn new(header: &str) -> Self {
        debug_assert!(!header.contains(char::is_whitespace));
        Saver {
            buf: header.to_string(),
        }
    }

    fn tok(&mut self, t: &str) {
        self.buf.push(' ');
        self.buf.push_str(t);
    }

    pub(crate) fn lit(&mut self, t: &str) {
        debug_assert!(!t.is_empty() && !t.contains(char::is_whitespace));
        self.tok(t);
    }

    pub(crate) fn u64(&mut self, v: u64) {
        let _ = write!(self.buf, " {v}");
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.tok(if v { "1" } else { "0" });
    }

    pub(crate) fn f64(&mut self, v: f64) {
        let _ = write!(self.buf, " {:016x}", v.to_bits());
    }

    pub(crate) fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(v) => self.f64(v),
            None => self.tok("-"),
        }
    }

    pub(crate) fn tuple(&mut self, t: WarpTuple) {
        let _ = write!(self.buf, " {}:{}", t.n, t.p);
    }

    pub(crate) fn opt_tuple(&mut self, t: Option<WarpTuple>) {
        match t {
            Some(t) => self.tuple(t),
            None => self.tok("-"),
        }
    }

    pub(crate) fn tuples(&mut self, ts: &[WarpTuple]) {
        self.usize(ts.len());
        for &t in ts {
            self.tuple(t);
        }
    }

    /// `(tuple, ipc)` measurement lists, common to every search FSM.
    pub(crate) fn pairs(&mut self, ps: &[(WarpTuple, f64)]) {
        self.usize(ps.len());
        for &(t, ipc) in ps {
            self.tuple(t);
            self.f64(ipc);
        }
    }

    pub(crate) fn usizes(&mut self, vs: &[usize]) {
        self.usize(vs.len());
        for &v in vs {
            self.usize(v);
        }
    }

    pub(crate) fn opt_window(&mut self, w: Option<&WindowSample>) {
        match w {
            None => self.tok("-"),
            Some(w) => {
                // Exhaustive destructure: a new WindowSample field fails
                // compile here until the encoding is versioned.
                let WindowSample {
                    cycles,
                    instructions,
                    hit_rate,
                    intra_rate,
                    aml,
                    in_avg,
                    ipc,
                } = *w;
                self.lit("w");
                self.u64(cycles);
                self.u64(instructions);
                self.f64(hit_rate);
                self.f64(intra_rate);
                self.f64(aml);
                self.f64(in_avg);
                self.f64(ipc);
            }
        }
    }

    pub(crate) fn finish(self) -> String {
        self.buf
    }
}

/// Cursor over a `save_state` token stream.
#[derive(Debug)]
pub(crate) struct Loader<'a> {
    it: SplitWhitespace<'a>,
}

/// Guard against hostile or corrupt length prefixes allocating unbounded
/// memory before a later token fails to parse.
const MAX_LIST: usize = 1 << 20;

impl<'a> Loader<'a> {
    /// Open a stream, consuming and checking the version header.
    pub(crate) fn new(state: &'a str, header: &str) -> Option<Self> {
        let mut it = state.split_whitespace();
        (it.next() == Some(header)).then_some(Loader { it })
    }

    pub(crate) fn next(&mut self) -> Option<&'a str> {
        self.it.next()
    }

    #[cfg(test)]
    pub(crate) fn lit(&mut self, expect: &str) -> Option<()> {
        (self.next()? == expect).then_some(())
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.next()?.parse().ok()
    }

    pub(crate) fn usize(&mut self) -> Option<usize> {
        self.next()?.parse().ok()
    }

    pub(crate) fn bool(&mut self) -> Option<bool> {
        match self.next()? {
            "0" => Some(false),
            "1" => Some(true),
            _ => None,
        }
    }

    fn f64_tok(tok: &str) -> Option<f64> {
        (tok.len() == 16)
            .then(|| u64::from_str_radix(tok, 16).ok())
            .flatten()
            .map(f64::from_bits)
    }

    pub(crate) fn f64(&mut self) -> Option<f64> {
        Self::f64_tok(self.next()?)
    }

    pub(crate) fn opt_f64(&mut self) -> Option<Option<f64>> {
        let tok = self.next()?;
        if tok == "-" {
            return Some(None);
        }
        Self::f64_tok(tok).map(Some)
    }

    fn tuple_tok(tok: &str) -> Option<WarpTuple> {
        let (n, p) = tok.split_once(':')?;
        let (n, p) = (n.parse().ok()?, p.parse().ok()?);
        (1 <= p && p <= n).then_some(WarpTuple { n, p })
    }

    pub(crate) fn tuple(&mut self) -> Option<WarpTuple> {
        Self::tuple_tok(self.next()?)
    }

    pub(crate) fn opt_tuple(&mut self) -> Option<Option<WarpTuple>> {
        let tok = self.next()?;
        if tok == "-" {
            return Some(None);
        }
        Self::tuple_tok(tok).map(Some)
    }

    fn len(&mut self) -> Option<usize> {
        let n = self.usize()?;
        (n <= MAX_LIST).then_some(n)
    }

    pub(crate) fn tuples(&mut self) -> Option<Vec<WarpTuple>> {
        let n = self.len()?;
        (0..n).map(|_| self.tuple()).collect()
    }

    pub(crate) fn pairs(&mut self) -> Option<Vec<(WarpTuple, f64)>> {
        let n = self.len()?;
        (0..n).map(|_| Some((self.tuple()?, self.f64()?))).collect()
    }

    pub(crate) fn usizes(&mut self) -> Option<Vec<usize>> {
        let n = self.len()?;
        (0..n).map(|_| self.usize()).collect()
    }

    pub(crate) fn opt_window(&mut self) -> Option<Option<WindowSample>> {
        match self.next()? {
            "-" => Some(None),
            "w" => Some(Some(WindowSample {
                cycles: self.u64()?,
                instructions: self.u64()?,
                hit_rate: self.f64()?,
                intra_rate: self.f64()?,
                aml: self.f64()?,
                in_avg: self.f64()?,
                ipc: self.f64()?,
            })),
            _ => None,
        }
    }

    /// The stream must be fully consumed; trailing tokens mean the writer
    /// and reader disagree about the format and the load must fail.
    pub(crate) fn done(mut self) -> Option<()> {
        self.it.next().is_none().then_some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_token_kind() {
        let mut s = Saver::new("t-v1");
        s.lit("tag");
        s.u64(42);
        s.bool(true);
        s.f64(-0.0);
        s.f64(f64::NAN);
        s.opt_f64(None);
        s.opt_f64(Some(1.5));
        s.tuple(WarpTuple { n: 8, p: 3 });
        s.opt_tuple(None);
        s.tuples(&[WarpTuple { n: 2, p: 1 }]);
        s.pairs(&[(WarpTuple { n: 4, p: 4 }, 0.25)]);
        s.usizes(&[7, 9]);
        let text = s.finish();

        let mut l = Loader::new(&text, "t-v1").unwrap();
        l.lit("tag").unwrap();
        assert_eq!(l.u64(), Some(42));
        assert_eq!(l.bool(), Some(true));
        let neg_zero = l.f64().unwrap();
        assert_eq!(neg_zero.to_bits(), (-0.0f64).to_bits());
        assert!(l.f64().unwrap().is_nan());
        assert_eq!(l.opt_f64(), Some(None));
        assert_eq!(l.opt_f64(), Some(Some(1.5)));
        assert_eq!(l.tuple(), Some(WarpTuple { n: 8, p: 3 }));
        assert_eq!(l.opt_tuple(), Some(None));
        assert_eq!(l.tuples(), Some(vec![WarpTuple { n: 2, p: 1 }]));
        assert_eq!(l.pairs(), Some(vec![(WarpTuple { n: 4, p: 4 }, 0.25)]));
        assert_eq!(l.usizes(), Some(vec![7, 9]));
        l.done().unwrap();
    }

    #[test]
    fn rejects_header_mismatch_truncation_and_trailing() {
        assert!(Loader::new("t-v2 1", "t-v1").is_none());
        let mut l = Loader::new("t-v1", "t-v1").unwrap();
        assert_eq!(l.u64(), None); // truncated
        let l = Loader::new("t-v1 extra", "t-v1").unwrap();
        assert!(l.done().is_none()); // trailing garbage
        let mut l = Loader::new("t-v1 5:2 2:5", "t-v1").unwrap();
        assert_eq!(l.tuple(), Some(WarpTuple { n: 5, p: 2 }));
        assert_eq!(l.tuple(), None); // p > n rejected
    }
}
