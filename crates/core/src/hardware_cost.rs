//! Storage-overhead accounting for Poise's hardware (paper §VII-I).
//!
//! Per SM, Poise needs: seven 32-bit performance counters for the Table II
//! features, two 3-bit state registers for the seven-state HIE FSM, and a
//! vital plus a pollute bit for each of the 48 warp-scheduler queue
//! entries. The paper totals this to 40.75 bytes per SM — about 1,304
//! bytes for the 32-SM chip, under 0.01% of area. The link function is
//! computed on existing ALUs during idle issue slots, so no arithmetic
//! hardware is added.

/// Itemised per-SM storage cost in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareCost {
    /// Performance-counter bits (7 × 32).
    pub counter_bits: u64,
    /// FSM state-register bits (2 × 3).
    pub fsm_bits: u64,
    /// Vital + pollute bits across the warp queues.
    pub warp_bits: u64,
}

impl HardwareCost {
    /// The configuration of the paper's baseline (7 counters, 7-state FSM,
    /// 48 warps per SM with 2 bits each).
    pub fn paper_baseline() -> Self {
        HardwareCost::for_machine(7, 7, 48)
    }

    /// Compute the cost for an arbitrary machine.
    pub fn for_machine(counters: u64, fsm_states: u64, warps_per_sm: u64) -> Self {
        // Two replicated state registers sized to hold `fsm_states` states.
        let state_bits = 64 - (fsm_states.max(2) - 1).leading_zeros() as u64;
        HardwareCost {
            counter_bits: counters * 32,
            fsm_bits: 2 * state_bits,
            warp_bits: warps_per_sm * 2,
        }
    }

    /// Total bits per SM.
    pub fn bits_per_sm(&self) -> u64 {
        self.counter_bits + self.fsm_bits + self.warp_bits
    }

    /// Total bytes per SM (fractional, as the paper reports 40.75 B).
    pub fn bytes_per_sm(&self) -> f64 {
        self.bits_per_sm() as f64 / 8.0
    }

    /// Total bytes for a chip with `sms` SMs.
    pub fn bytes_total(&self, sms: u64) -> f64 {
        self.bytes_per_sm() * sms as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_accounting() {
        let c = HardwareCost::paper_baseline();
        // 7 counters x 32 = 224 bits; 2 x 3-bit FSM = 6 bits;
        // 48 warps x 2 = 96 bits → 326 bits = 40.75 bytes.
        assert_eq!(c.counter_bits, 224);
        assert_eq!(c.fsm_bits, 6);
        assert_eq!(c.warp_bits, 96);
        assert_eq!(c.bits_per_sm(), 326);
        assert!((c.bytes_per_sm() - 40.75).abs() < 1e-12);
        // 32 SMs → 1304 bytes, the paper's total.
        assert!((c.bytes_total(32) - 1304.0).abs() < 1e-12);
    }

    #[test]
    fn fsm_register_width_scales_with_states() {
        assert_eq!(HardwareCost::for_machine(0, 2, 0).fsm_bits, 2);
        assert_eq!(HardwareCost::for_machine(0, 8, 0).fsm_bits, 6);
        assert_eq!(HardwareCost::for_machine(0, 9, 0).fsm_bits, 8);
    }
}
