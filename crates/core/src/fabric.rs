//! The distributed sweep fabric: crash-tolerant cooperative execution of
//! one job graph by many worker processes over the shared
//! content-addressed cache.
//!
//! ## Design
//!
//! The fabric distributes *work*, not job descriptions. Every worker
//! re-expands the same deduplicated job graph from the same invocation
//! (the expansion is deterministic — see [`crate::jobs`]), so the only
//! coordination needed is mutual exclusion per job, and the cache itself
//! carries the results between processes. Mutual exclusion is a
//! crash-safe filesystem *lease* protocol (see [`crate::cache`]): a
//! worker claims a job by atomically creating
//! `cache/leases/<kind>-<key>.lease`, heartbeats the claim by touching
//! its mtime while executing, and releases it after committing the
//! result. A lease whose heartbeat goes stale belongs to a dead worker;
//! one older than the straggler threshold belongs to a wedged one;
//! either may be *stolen* by any peer, carrying the recorded attempt
//! count forward so retry classification, backoff and the watchdog of
//! [`crate::jobs`] apply unchanged across process boundaries.
//!
//! Because any worker can redo any job idempotently (content-addressed
//! keys, atomic tmp+rename commits, deterministic simulations) the
//! fabric needs no group membership, no consensus and no recovery
//! protocol: a worker may die at any instruction and the survivors
//! converge to the same store a single uninterrupted process would have
//! produced. A worker that wakes up late — its lease stolen mid-run —
//! discards its finished result at the store gate instead of
//! double-committing it.
//!
//! Terminal failures are shared as *tombstones* under
//! `<fabric_dir>/failed/` so peers neither re-claim a deterministically
//! failing job nor wait forever on its lease. Workers publish their
//! [`RunReport`]s as JSON under `<fabric_dir>/reports/`; the
//! coordinator merges them into the report of its authoritative final
//! in-process pass (which re-executes whatever dying workers left
//! behind). All files are written atomically, so a SIGKILL can orphan a
//! tmp file or a lease but never publish a torn artifact.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::cache::{sha256_hex, Cache, LeaseInfo, Lookup};
use crate::experiment::Setup;
use crate::jobs::{
    expand_graph, AttemptRecord, Engine, EventDetail, FailClass, JobGraph, JobIdentity, JobOutcome,
    JobOutput, JobStatus, JobTrouble, ResultStore, RunReport, SimJob, Watchdog,
};

pub use self::json::Json;

// ---------------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------------

/// One worker's view of the fabric.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Coordination directory: manifest, tombstones, worker reports.
    pub fabric_dir: PathBuf,
    /// This worker's id (`w1`, `w2`, … under a coordinator; anything
    /// unique per process otherwise).
    pub worker_id: String,
    /// Heartbeat TTL in seconds: a lease whose mtime is older belongs
    /// to a dead worker and may be stolen.
    pub lease_ttl: f64,
    /// Straggler threshold in seconds: a claim older than this is
    /// stolen even while its owner still heartbeats. `None` = only
    /// heartbeat staleness steals.
    pub steal_after: Option<f64>,
    /// Sleep between poll rounds while peers hold the remaining jobs.
    pub poll_ms: u64,
    /// Honour injected [`crate::faults::FaultKind::WorkerKill`] faults.
    /// True only in worker processes — the coordinator's in-process
    /// pass must never abort itself.
    pub allow_kills: bool,
    /// Max leases claimed per poll round. Claiming more jobs than the
    /// host can execute at once only widens the blast radius of this
    /// worker's own death (every held lease must age out before a peer
    /// can steal it).
    pub claim_cap: usize,
}

impl FabricConfig {
    /// The standard worker configuration for `fabric_dir`, taking the
    /// lease knobs from `setup`.
    pub fn for_worker(fabric_dir: impl Into<PathBuf>, worker_id: &str, setup: &Setup) -> Self {
        FabricConfig {
            fabric_dir: fabric_dir.into(),
            worker_id: worker_id.to_string(),
            lease_ttl: setup.lease_ttl,
            steal_after: setup.steal_after,
            poll_ms: 25,
            allow_kills: true,
            claim_cap: crate::parallel::host_parallelism(),
        }
    }
}

// ---------------------------------------------------------------------------
// Shared fabric artifacts: manifest, tombstones, worker reports.
// ---------------------------------------------------------------------------

/// Atomic publish: tmp + rename, like every cache commit — a kill can
/// orphan the tmp file (reclaimed by fsck) but never tear the artifact.
fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// The canonical rendering of an expanded job graph: what the
/// coordinator publishes and every worker re-derives. Any byte of
/// difference means coordinator and worker would disagree about which
/// jobs exist — a build or argument skew that must fail loudly, not
/// silently execute a different sweep.
pub fn manifest_text(jobs: &[SimJob]) -> String {
    let JobGraph { by_spec, order } = expand_graph(jobs);
    let mut s = format!("# poise fabric manifest v1\njobs {}\n", order.len());
    for spec in &order {
        let job = &by_spec[spec];
        s.push_str(&format!(
            "{} {} {}\n",
            job.wave(),
            sha256_hex(spec),
            job.label()
        ));
    }
    s
}

/// Publish the manifest for `jobs` under `dir` (coordinator side).
pub fn write_manifest(dir: &Path, jobs: &[SimJob]) -> std::io::Result<()> {
    write_atomic(&dir.join("manifest.txt"), &manifest_text(jobs))
}

/// Check this process's expansion of `jobs` against the published
/// manifest (worker side).
pub fn verify_manifest(dir: &Path, jobs: &[SimJob]) -> Result<(), String> {
    let path = dir.join("manifest.txt");
    let published = std::fs::read_to_string(&path)
        .map_err(|e| format!("no fabric manifest at {}: {e}", path.display()))?;
    let ours = manifest_text(jobs);
    if published == ours {
        return Ok(());
    }
    Err(format!(
        "job-graph skew: this worker expands {} job(s) but the manifest lists {} — \
         coordinator and workers must run the same binary with the same arguments",
        ours.lines().count().saturating_sub(2),
        published.lines().count().saturating_sub(2),
    ))
}

/// A shared record of a terminal job failure. Written by whichever
/// worker exhausted the retry budget; read by every peer so the job is
/// neither re-claimed nor waited on.
#[derive(Debug, Clone)]
pub struct Tombstone {
    pub label: String,
    pub spec_hash: String,
    pub worker: String,
    pub error: String,
    pub outcome: JobOutcome,
    pub attempts: Vec<AttemptRecord>,
}

fn tombstone_path(dir: &Path, kind: &str, key: &str) -> PathBuf {
    dir.join("failed").join(format!("{kind}-{key}.json"))
}

fn attempts_json(attempts: &[AttemptRecord]) -> Json {
    Json::Arr(
        attempts
            .iter()
            .map(|a| {
                json::obj(vec![
                    ("class", Json::Str(a.class.name().to_string())),
                    ("error", Json::Str(a.error.clone())),
                    ("backoff_ms", Json::Num(a.backoff_ms as f64)),
                    ("wall_ms", Json::Num(a.wall_ms as f64)),
                ])
            })
            .collect(),
    )
}

fn attempts_from_json(j: &Json) -> Option<Vec<AttemptRecord>> {
    j.as_arr()?
        .iter()
        .map(|a| {
            Some(AttemptRecord {
                class: FailClass::from_name(a.get("class")?.as_str()?)?,
                error: a.get("error")?.as_str()?.to_string(),
                backoff_ms: a.get("backoff_ms")?.as_u64()?,
                wall_ms: a.get("wall_ms")?.as_u64()?,
            })
        })
        .collect()
}

/// One [`JobTrouble`] as a JSON object — also the line format of
/// `results/run_all_failures.jsonl`.
pub fn trouble_json(t: &JobTrouble) -> Json {
    json::obj(vec![
        ("label", Json::Str(t.label.clone())),
        ("spec_hash", Json::Str(t.spec_hash.clone())),
        ("worker", Json::Str(t.worker.clone())),
        ("outcome", Json::Str(t.outcome.name().to_string())),
        ("attempts", attempts_json(&t.attempts)),
    ])
}

fn trouble_from_json(j: &Json) -> Option<JobTrouble> {
    Some(JobTrouble {
        label: j.get("label")?.as_str()?.to_string(),
        spec_hash: j.get("spec_hash")?.as_str()?.to_string(),
        worker: j.get("worker")?.as_str()?.to_string(),
        outcome: JobOutcome::from_name(j.get("outcome")?.as_str()?)?,
        attempts: attempts_from_json(j.get("attempts")?)?,
    })
}

fn write_tombstone(dir: &Path, kind: &str, key: &str, t: &Tombstone) -> std::io::Result<()> {
    let body = json::obj(vec![
        ("label", Json::Str(t.label.clone())),
        ("spec_hash", Json::Str(t.spec_hash.clone())),
        ("worker", Json::Str(t.worker.clone())),
        ("error", Json::Str(t.error.clone())),
        ("outcome", Json::Str(t.outcome.name().to_string())),
        ("attempts", attempts_json(&t.attempts)),
    ]);
    write_atomic(&tombstone_path(dir, kind, key), &body.render())
}

/// Read a peer's tombstone for `(kind, key)`, if any. An unparseable
/// file reads as absent: the job is simply re-claimed, re-fails, and
/// the tombstone is rewritten — self-healing, like the cache.
pub fn read_tombstone(dir: &Path, kind: &str, key: &str) -> Option<Tombstone> {
    let text = std::fs::read_to_string(tombstone_path(dir, kind, key)).ok()?;
    let j = Json::parse(&text)?;
    Some(Tombstone {
        label: j.get("label")?.as_str()?.to_string(),
        spec_hash: j.get("spec_hash")?.as_str()?.to_string(),
        worker: j.get("worker")?.as_str()?.to_string(),
        error: j.get("error")?.as_str()?.to_string(),
        outcome: JobOutcome::from_name(j.get("outcome")?.as_str()?)?,
        attempts: attempts_from_json(j.get("attempts")?)?,
    })
}

/// Serialise a worker's [`RunReport`] for the coordinator.
pub fn report_json(worker: &str, r: &RunReport) -> Json {
    json::obj(vec![
        ("worker", Json::Str(worker.to_string())),
        ("total", Json::Num(r.total as f64)),
        ("executed", Json::Num(r.executed as f64)),
        ("cache_hits", Json::Num(r.cache_hits as f64)),
        (
            "failed",
            Json::Arr(
                r.failed
                    .iter()
                    .map(|(l, e)| Json::Arr(vec![Json::Str(l.clone()), Json::Str(e.clone())]))
                    .collect(),
            ),
        ),
        ("retried", Json::Num(r.retried as f64)),
        ("recovered", Json::Num(r.recovered as f64)),
        ("timed_out", Json::Num(r.timed_out as f64)),
        ("corrupt", Json::Num(r.corrupt as f64)),
        ("quarantined", Json::Num(r.quarantined as f64)),
        ("stolen", Json::Num(r.stolen as f64)),
        ("lost", Json::Num(r.lost as f64)),
        ("reaped", Json::Num(r.reaped as f64)),
        ("wall_ms", Json::Num(r.wall.as_millis() as f64)),
        (
            "trouble",
            Json::Arr(r.trouble.iter().map(trouble_json).collect()),
        ),
    ])
}

/// Inverse of [`report_json`].
pub fn report_from_json(j: &Json) -> Option<(String, RunReport)> {
    let failed = j
        .get("failed")?
        .as_arr()?
        .iter()
        .map(|pair| {
            let p = pair.as_arr()?;
            Some((
                p.first()?.as_str()?.to_string(),
                p.get(1)?.as_str()?.to_string(),
            ))
        })
        .collect::<Option<Vec<_>>>()?;
    let trouble = j
        .get("trouble")?
        .as_arr()?
        .iter()
        .map(trouble_from_json)
        .collect::<Option<Vec<_>>>()?;
    let report = RunReport {
        total: j.get("total")?.as_u64()? as usize,
        executed: j.get("executed")?.as_u64()? as usize,
        cache_hits: j.get("cache_hits")?.as_u64()? as usize,
        failed,
        retried: j.get("retried")?.as_u64()? as usize,
        recovered: j.get("recovered")?.as_u64()? as usize,
        timed_out: j.get("timed_out")?.as_u64()? as usize,
        corrupt: j.get("corrupt")?.as_u64()?,
        quarantined: j.get("quarantined")?.as_u64()?,
        trouble,
        stolen: j.get("stolen")?.as_u64()?,
        lost: j.get("lost")?.as_u64()?,
        reaped: j.get("reaped")?.as_u64()?,
        workers: 1,
        wall: Duration::from_millis(j.get("wall_ms")?.as_u64()?),
    };
    Some((j.get("worker")?.as_str()?.to_string(), report))
}

/// Publish this worker's report under `<fabric_dir>/reports/`.
pub fn write_worker_report(dir: &Path, worker: &str, report: &RunReport) -> std::io::Result<()> {
    write_atomic(
        &dir.join("reports").join(format!("{worker}.json")),
        &report_json(worker, report).render(),
    )
}

/// Collect every published worker report, sorted by worker id.
/// Unparseable files are skipped: a report torn by a kill only loses
/// attribution detail — the coordinator's final pass re-derives the
/// authoritative outcome regardless.
pub fn read_worker_reports(dir: &Path) -> Vec<(String, RunReport)> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir.join("reports")) else {
        return out;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        if entry.path().extension().is_none_or(|e| e != "json") {
            continue;
        }
        if let Some(parsed) = std::fs::read_to_string(entry.path())
            .ok()
            .and_then(|text| Json::parse(&text))
            .and_then(|j| report_from_json(&j))
        {
            out.push(parsed);
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

// ---------------------------------------------------------------------------
// The worker loop.
// ---------------------------------------------------------------------------

/// One lease this worker won in the current poll round.
struct Claim {
    spec: String,
    kind: &'static str,
    key: String,
    spec_hash: String,
    label: String,
    /// Cumulative attempt counter carried from stolen leases (0 for a
    /// fresh claim).
    start_attempt: u32,
    /// Ownership token checked by the store gate and the heartbeat.
    nonce: String,
    /// `(previous owner, attempts it consumed)` when stolen.
    prior: Option<(String, u32)>,
}

fn stable_hash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Execute `jobs` cooperatively: resolve what peers (or earlier runs)
/// already committed from the cache, lease and execute what is free,
/// steal what dead or wedged peers hold, and wait out what live peers
/// are executing. Returns the same `(store, report)` contract as
/// [`Engine::run`]; the report's fabric counters (`stolen`, `lost`)
/// record this worker's share of the chaos.
pub fn run_worker(
    engine: &Engine,
    jobs: &[SimJob],
    cfg: &FabricConfig,
) -> (ResultStore, RunReport) {
    let t0 = Instant::now();
    let JobGraph { by_spec, order } = expand_graph(jobs);
    let total = order.len();
    let mut store = ResultStore::default();
    let mut report = RunReport {
        total,
        workers: 1,
        ..RunReport::default()
    };
    let (corrupt0, quarantined0) = (
        engine.cache.stats.corrupt_count(),
        engine.cache.stats.quarantined_count(),
    );
    let _ = std::fs::create_dir_all(cfg.fabric_dir.join("failed"));

    // Heartbeat registry: (kind, key) -> (nonce, stalled). One thread
    // touches every live claim's lease mtime; an injected
    // `HeartbeatStall` marks the claim so the thread skips it — the
    // owner keeps executing while its lease goes stale, which is
    // exactly the wedged-worker scenario the steal + store-gate pair
    // must absorb.
    type Registry = Arc<Mutex<HashMap<(String, String), (String, bool)>>>;
    let registry: Registry = Arc::default();
    let hb_stop = Arc::new(AtomicBool::new(false));
    let hb = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&hb_stop);
        // The thread gets its own Cache handle on the same root:
        // heartbeating is pure filesystem work and must not contend on
        // the engine's fault plan or stats.
        let cache = Cache::new(engine.cache().root());
        let period = Duration::from_secs_f64((cfg.lease_ttl / 4.0).clamp(0.01, 0.5));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for ((kind, key), (nonce, stalled)) in
                    registry.lock().expect("heartbeat registry").iter()
                {
                    if !*stalled {
                        cache.heartbeat(kind, key, nonce);
                    }
                }
                std::thread::sleep(period);
            }
        })
    };
    let watchdog = Arc::new(Watchdog::default());
    let patrol = {
        let w = Arc::clone(&watchdog);
        std::thread::spawn(move || w.patrol())
    };

    let mut resolved = 0usize;
    let mut claim_seq = 0u64;
    let mut nonce_seq = 0u64;
    let nonce_base = format!("{}:{}", cfg.worker_id, std::process::id());

    // Distinct waves actually present, ascending — the classic three
    // plus one per prefix-chain depth when the plan was prefix-factored
    // (identical on every worker: all expand the same manifest).
    let mut waves: Vec<usize> = order.iter().map(|s| by_spec[s].wave()).collect();
    waves.sort_unstable();
    waves.dedup();
    for wave in waves {
        let mut pending: Vec<String> = order
            .iter()
            .filter(|s| by_spec[*s].wave() == wave)
            .cloned()
            .collect();
        // Stagger the claim order across workers so peers race
        // different jobs first. Pure contention relief — correctness
        // never depends on who claims what.
        if !pending.is_empty() {
            let rot = (stable_hash(&cfg.worker_id) as usize) % pending.len();
            pending.rotate_left(rot);
        }
        // Poll rounds until the wave is fully resolved (waves are
        // barriers: wave N+1 keys hash wave-N outputs).
        while !pending.is_empty() {
            let mut next_round: Vec<String> = Vec::new();
            let mut claims: Vec<Claim> = Vec::new();
            for spec in pending.drain(..) {
                let job = &by_spec[&spec];
                let identity = match engine.identify(job, &store) {
                    Ok(i) => i,
                    Err(error) => {
                        resolved += 1;
                        engine.emit(
                            &job.label(),
                            &sha256_hex(&spec),
                            JobStatus::Failed,
                            EventDetail {
                                error: Some(error.clone()),
                                ..EventDetail::default()
                            },
                        );
                        report.failed.push((job.label(), error.clone()));
                        report.trouble.push(JobTrouble {
                            label: job.label(),
                            spec_hash: sha256_hex(&spec),
                            worker: cfg.worker_id.clone(),
                            attempts: vec![AttemptRecord {
                                class: FailClass::Dependency,
                                error: error.clone(),
                                backoff_ms: 0,
                                wall_ms: 0,
                            }],
                            outcome: JobOutcome::Failed,
                        });
                        store.outputs.insert(spec, Err(error));
                        continue;
                    }
                };
                let JobIdentity {
                    kind,
                    key,
                    spec_hash,
                    ..
                } = identity;
                // A peer proved this job fails deterministically: adopt
                // the verdict (the peer's report carries the history).
                if let Some(t) = read_tombstone(&cfg.fabric_dir, kind, &key) {
                    resolved += 1;
                    if t.outcome == JobOutcome::TimedOut {
                        report.timed_out += 1;
                    }
                    engine.emit(
                        &t.label,
                        &spec_hash,
                        JobStatus::Failed,
                        EventDetail {
                            error: Some(t.error.clone()),
                            ..EventDetail::default()
                        },
                    );
                    report.failed.push((t.label, t.error.clone()));
                    store.outputs.insert(spec, Err(t.error));
                    continue;
                }
                // A peer (or an earlier run) may have committed it.
                let skip_cache =
                    engine.retrain && matches!(job, SimJob::Train(_) | SimJob::Sample(_));
                if !skip_cache {
                    if let Lookup::Hit(body, wall) = engine.cache.lookup(kind, &key) {
                        if let Some(out) = JobOutput::from_text(kind, &body) {
                            resolved += 1;
                            report.cache_hits += 1;
                            engine.emit(
                                &job.label(),
                                &spec_hash,
                                JobStatus::Hit,
                                EventDetail {
                                    wall,
                                    ..EventDetail::default()
                                },
                            );
                            if !engine.quiet {
                                eprintln!(
                                    "[{}] {resolved}/{total} {} hit",
                                    cfg.worker_id,
                                    job.label()
                                );
                            }
                            store.walls.insert(spec.clone(), wall);
                            store.outputs.insert(spec, Ok(out));
                            continue;
                        }
                    }
                }
                if claims.len() >= cfg.claim_cap {
                    next_round.push(spec);
                    continue;
                }
                // The lease state machine: free → claim; stale (dead
                // worker's heartbeat, straggler past the threshold, or
                // a torn write that aged out) → steal, carrying the
                // attempt count; held and fresh → the owner's this
                // round.
                let mut start_attempt = 0u32;
                let mut prior: Option<(String, u32)> = None;
                match engine.cache.read_lease(kind, &key) {
                    None => {}
                    Some(Ok(l)) => {
                        let hb_age = engine.cache.lease_age(kind, &key).unwrap_or(0.0);
                        let dead = hb_age >= cfg.lease_ttl;
                        let straggler = cfg.steal_after.is_some_and(|s| l.claim_age() >= s);
                        if !(dead || straggler) {
                            next_round.push(spec);
                            continue;
                        }
                        // Straggler steals pass min_age 0: the owner
                        // still heartbeats, so an mtime threshold would
                        // never admit the steal.
                        let min_age = if dead { cfg.lease_ttl } else { 0.0 };
                        match engine.cache.try_steal(kind, &key, min_age) {
                            Some(n) => {
                                // The death consumed the attempt the
                                // lease recorded; resume past it.
                                // Clamped so worker deaths alone can
                                // never exhaust a retry budget that
                                // real failures did not.
                                start_attempt = (n + 1).min(engine.max_retries);
                                prior = Some((l.worker, n + 1));
                            }
                            None => {
                                next_round.push(spec);
                                continue;
                            }
                        }
                    }
                    Some(Err(age)) => {
                        // A torn lease claims nothing and heartbeats
                        // never (its owner is unverifiable), so it ages
                        // out like a dead worker's.
                        if age < cfg.lease_ttl {
                            next_round.push(spec);
                            continue;
                        }
                        match engine.cache.try_steal(kind, &key, cfg.lease_ttl) {
                            Some(n) => {
                                start_attempt = (n + 1).min(engine.max_retries);
                                prior = Some(("unknown (torn lease)".to_string(), n + 1));
                            }
                            None => {
                                next_round.push(spec);
                                continue;
                            }
                        }
                    }
                }
                if prior.is_some() {
                    report.stolen += 1;
                }
                nonce_seq += 1;
                let nonce = format!("{nonce_base}:{nonce_seq}");
                if !engine.cache.try_claim(
                    kind,
                    &key,
                    &LeaseInfo::new(&cfg.worker_id, &nonce, start_attempt),
                ) {
                    next_round.push(spec);
                    continue;
                }
                claim_seq += 1;
                // Injected chaos, rolled per claim: a worker kill takes
                // the whole process down right after claiming — the
                // lease survives with a frozen mtime, exactly a
                // SIGKILL's footprint.
                if cfg.allow_kills {
                    if let Some(plan) = engine.faults.as_deref() {
                        if plan.worker_kill(&cfg.worker_id, claim_seq) {
                            eprintln!(
                                "[{}] injected fault: worker kill at claim #{claim_seq}",
                                cfg.worker_id
                            );
                            std::process::abort();
                        }
                    }
                }
                let stalled = engine
                    .faults
                    .as_deref()
                    .is_some_and(|p| p.heartbeat_stall(&key, start_attempt));
                registry
                    .lock()
                    .expect("heartbeat registry")
                    .insert((kind.to_string(), key.clone()), (nonce.clone(), stalled));
                claims.push(Claim {
                    spec,
                    kind,
                    key,
                    spec_hash,
                    label: job.label(),
                    start_attempt,
                    nonce,
                    prior,
                });
            }

            if claims.is_empty() {
                if !next_round.is_empty() {
                    std::thread::sleep(Duration::from_millis(cfg.poll_ms));
                }
                pending = next_round;
                continue;
            }

            let dispositions = crate::parallel::parallel_map(&claims, |c| {
                let job = &by_spec[&c.spec];
                let gate = || engine.cache.owns(c.kind, &c.key, &c.nonce);
                engine.run_one(job, &store, &watchdog, c.start_attempt, Some(&gate))
            });

            for (c, d) in claims.into_iter().zip(dispositions) {
                registry
                    .lock()
                    .expect("heartbeat registry")
                    .remove(&(c.kind.to_string(), c.key.clone()));
                if d.lost {
                    // Our lease was stolen mid-run and the finished
                    // result discarded at the store gate: the thief
                    // owns the job now — go back to waiting on it.
                    report.lost += 1;
                    if !engine.quiet {
                        eprintln!(
                            "[{}] {} lease stolen mid-run; result discarded",
                            cfg.worker_id, c.label
                        );
                    }
                    next_round.push(c.spec);
                    continue;
                }
                resolved += 1;
                // Attempts consumed by previous owners surface as one
                // synthetic record, so reports show the whole
                // cross-process history of the job.
                let mut attempts = d.attempts;
                if let Some((prior_worker, n)) = &c.prior {
                    attempts.insert(
                        0,
                        AttemptRecord {
                            class: FailClass::Transient,
                            error: format!(
                                "{n} attempt(s) by previous owner {prior_worker}; \
                                 lease stolen as stale"
                            ),
                            backoff_ms: 0,
                            wall_ms: 0,
                        },
                    );
                }
                if !engine.quiet {
                    let status = match (&d.result, d.was_hit) {
                        (Ok(_), true) => "hit".to_string(),
                        (Ok(_), false) if attempts.is_empty() => format!("ran {:.2}s", d.wall),
                        (Ok(_), false) => format!(
                            "ran {:.2}s (recovered after {} failed attempt(s))",
                            d.wall,
                            attempts.len()
                        ),
                        (Err(e), _) => format!("FAILED: {e}"),
                    };
                    eprintln!(
                        "[{}] {resolved}/{total} {} {status}",
                        cfg.worker_id, c.label
                    );
                }
                match &d.result {
                    Ok(_) if d.was_hit => report.cache_hits += 1,
                    Ok(_) => {
                        report.executed += 1;
                        if !attempts.is_empty() {
                            report.retried += 1;
                            report.recovered += 1;
                            report.trouble.push(JobTrouble {
                                label: c.label.clone(),
                                spec_hash: c.spec_hash.clone(),
                                worker: cfg.worker_id.clone(),
                                attempts: attempts.clone(),
                                outcome: JobOutcome::Recovered,
                            });
                        }
                    }
                    Err(e) => {
                        report.failed.push((c.label.clone(), e.clone()));
                        let timed_out = attempts
                            .last()
                            .is_some_and(|a| a.class == FailClass::Timeout);
                        if timed_out {
                            report.timed_out += 1;
                        }
                        if attempts.len() > 1 {
                            report.retried += 1;
                        }
                        let outcome = if timed_out {
                            JobOutcome::TimedOut
                        } else {
                            JobOutcome::Failed
                        };
                        let _ = write_tombstone(
                            &cfg.fabric_dir,
                            c.kind,
                            &c.key,
                            &Tombstone {
                                label: c.label.clone(),
                                spec_hash: c.spec_hash.clone(),
                                worker: cfg.worker_id.clone(),
                                error: e.clone(),
                                outcome,
                                attempts: attempts.clone(),
                            },
                        );
                        report.trouble.push(JobTrouble {
                            label: c.label.clone(),
                            spec_hash: c.spec_hash,
                            worker: cfg.worker_id.clone(),
                            attempts,
                            outcome,
                        });
                    }
                }
                engine.cache.release(c.kind, &c.key, &c.nonce);
                if d.result.is_ok() {
                    store.walls.insert(c.spec.clone(), d.wall);
                }
                store.outputs.insert(c.spec, d.result);
            }
            pending = next_round;
        }
    }

    hb_stop.store(true, Ordering::Relaxed);
    let _ = hb.join();
    watchdog.stop.store(true, Ordering::Relaxed);
    let _ = patrol.join();

    report.corrupt = engine.cache.stats.corrupt_count() - corrupt0;
    report.quarantined = engine.cache.stats.quarantined_count() - quarantined0;
    report.wall = t0.elapsed();
    if !engine.quiet {
        eprintln!("[{}] {}", cfg.worker_id, report.summary_line());
    }
    (store, report)
}

// ---------------------------------------------------------------------------
// Minimal JSON.
// ---------------------------------------------------------------------------

pub mod json {
    //! A tiny JSON subset — objects, arrays, strings, finite numbers,
    //! bools, null — for the fabric's reports, tombstones and the
    //! failures JSONL. Hand-rolled because the repo takes no external
    //! dependencies; the only producers and consumers are this
    //! codebase, so the subset is closed.

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    /// Object from `(&str, Json)` pairs, in order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    impl Json {
        /// Render to compact JSON text.
        pub fn render(&self) -> String {
            let mut s = String::new();
            self.write(&mut s);
            s
        }

        fn write(&self, out: &mut String) {
            match self {
                Json::Null => out.push_str("null"),
                Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Json::Num(n) => {
                    // Integers render without a fraction so counters
                    // round-trip exactly through `as_u64`.
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                }
                Json::Str(s) => {
                    out.push('"');
                    for ch in s.chars() {
                        match ch {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            '\r' => out.push_str("\\r"),
                            '\t' => out.push_str("\\t"),
                            c if (c as u32) < 0x20 => {
                                out.push_str(&format!("\\u{:04x}", c as u32));
                            }
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                Json::Arr(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.write(out);
                    }
                    out.push(']');
                }
                Json::Obj(fields) => {
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        Json::Str(k.clone()).write(out);
                        out.push(':');
                        v.write(out);
                    }
                    out.push('}');
                }
            }
        }

        /// Parse JSON text; `None` on any syntax error or trailing
        /// garbage (a torn artifact must read as absent, never as a
        /// half-truth).
        pub fn parse(text: &str) -> Option<Json> {
            let chars: Vec<char> = text.chars().collect();
            let mut p = Parser { chars, pos: 0 };
            p.skip_ws();
            let v = p.value()?;
            p.skip_ws();
            if p.pos == p.chars.len() {
                Some(v)
            } else {
                None
            }
        }

        /// Field lookup on an object.
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The value as a non-negative integer (counters).
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                _ => None,
            }
        }

        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    struct Parser {
        chars: Vec<char>,
        pos: usize,
    }

    impl Parser {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn next(&mut self) -> Option<char> {
            let c = self.peek()?;
            self.pos += 1;
            Some(c)
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
                self.pos += 1;
            }
        }

        fn eat(&mut self, c: char) -> Option<()> {
            (self.next()? == c).then_some(())
        }

        fn lit(&mut self, word: &str, value: Json) -> Option<Json> {
            for c in word.chars() {
                self.eat(c)?;
            }
            Some(value)
        }

        fn value(&mut self) -> Option<Json> {
            self.skip_ws();
            match self.peek()? {
                't' => self.lit("true", Json::Bool(true)),
                'f' => self.lit("false", Json::Bool(false)),
                'n' => self.lit("null", Json::Null),
                '"' => self.string().map(Json::Str),
                '[' => self.array(),
                '{' => self.object(),
                '-' | '0'..='9' => self.number(),
                _ => None,
            }
        }

        fn string(&mut self) -> Option<String> {
            self.eat('"')?;
            let mut s = String::new();
            loop {
                match self.next()? {
                    '"' => return Some(s),
                    '\\' => match self.next()? {
                        '"' => s.push('"'),
                        '\\' => s.push('\\'),
                        '/' => s.push('/'),
                        'n' => s.push('\n'),
                        'r' => s.push('\r'),
                        't' => s.push('\t'),
                        'b' => s.push('\u{8}'),
                        'f' => s.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                code = code * 16 + self.next()?.to_digit(16)?;
                            }
                            s.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    },
                    c => s.push(c),
                }
            }
        }

        fn number(&mut self) -> Option<Json> {
            let start = self.pos;
            if self.peek() == Some('-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some('0'..='9' | '.' | 'e' | 'E' | '+' | '-')) {
                self.pos += 1;
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            let n: f64 = text.parse().ok()?;
            n.is_finite().then_some(Json::Num(n))
        }

        fn array(&mut self) -> Option<Json> {
            self.eat('[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(']') {
                self.pos += 1;
                return Some(Json::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.next()? {
                    ',' => {}
                    ']' => return Some(Json::Arr(items)),
                    _ => return None,
                }
            }
        }

        fn object(&mut self) -> Option<Json> {
            self.eat('{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some('}') {
                self.pos += 1;
                return Some(Json::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.eat(':')?;
                fields.push((key, self.value()?));
                self.skip_ws();
                match self.next()? {
                    ',' => {}
                    '}' => return Some(Json::Obj(fields)),
                    _ => return None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::KernelRunSpec;
    use crate::profiler::{GridSpec, ProfileWindow};
    use crate::Scheme;
    use workloads::{AccessMix, KernelSpec, Workload};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("poise-fabric-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_setup() -> Setup {
        let mut s = Setup::for_tests();
        s.run_cycles = 10_000;
        s.eval_grid = GridSpec::diagonal(6);
        s.profile_window = ProfileWindow {
            warmup: 200,
            measure: 800,
        };
        s
    }

    fn kernel(seed: u64) -> Workload {
        KernelSpec::steady(format!("fk{seed}"), AccessMix::memory_sensitive(), seed).into()
    }

    fn jobs(setup: &Setup, seeds: &[u64]) -> Vec<SimJob> {
        seeds
            .iter()
            .map(|&s| SimJob::Run(KernelRunSpec::new(&kernel(s), Scheme::Gto, setup, None)))
            .collect()
    }

    #[test]
    fn json_round_trips_escapes_and_nesting() {
        let v = json::obj(vec![
            ("s", Json::Str("a\"b\\c\nd\te\u{1}".to_string())),
            ("n", Json::Num(42.0)),
            ("f", Json::Num(-0.5)),
            ("b", Json::Bool(true)),
            ("z", Json::Null),
            (
                "arr",
                Json::Arr(vec![
                    Json::Num(1.0),
                    Json::Str("x".into()),
                    Json::Arr(vec![]),
                ]),
            ),
            ("obj", json::obj(vec![("k", Json::Str("v".into()))])),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text), Some(v));
        // Torn artifacts read as absent, never as half-truths.
        assert_eq!(Json::parse(&text[..text.len() - 3]), None);
        assert_eq!(Json::parse(&format!("{text}garbage")), None);
        assert_eq!(Json::parse(""), None);
    }

    #[test]
    fn worker_report_and_tombstone_round_trip() {
        let report = RunReport {
            total: 7,
            executed: 3,
            cache_hits: 2,
            failed: vec![("job a".into(), "boom \"quoted\"".into())],
            retried: 1,
            recovered: 1,
            timed_out: 1,
            corrupt: 1,
            quarantined: 1,
            stolen: 2,
            lost: 1,
            reaped: 0,
            workers: 1,
            trouble: vec![JobTrouble {
                label: "job a".into(),
                spec_hash: "abc123".into(),
                worker: "w1".into(),
                attempts: vec![AttemptRecord {
                    class: FailClass::Timeout,
                    error: "timed out after 1.0s".into(),
                    backoff_ms: 50,
                    wall_ms: 1000,
                }],
                outcome: JobOutcome::TimedOut,
            }],
            wall: Duration::from_millis(1234),
        };
        let j = report_json("w1", &report);
        let (worker, back) = report_from_json(&Json::parse(&j.render()).unwrap()).unwrap();
        assert_eq!(worker, "w1");
        assert_eq!(back.total, 7);
        assert_eq!(back.failed, report.failed);
        assert_eq!(back.stolen, 2);
        assert_eq!(back.lost, 1);
        assert_eq!(back.wall, Duration::from_millis(1234));
        assert_eq!(back.trouble.len(), 1);
        assert_eq!(back.trouble[0].outcome, JobOutcome::TimedOut);
        assert_eq!(back.trouble[0].attempts[0].class, FailClass::Timeout);
        assert_eq!(back.trouble[0].attempts[0].wall_ms, 1000);

        let dir = tmp_dir("tomb");
        let t = Tombstone {
            label: "job b".into(),
            spec_hash: "def".into(),
            worker: "w2".into(),
            error: "panicked: index out of bounds".into(),
            outcome: JobOutcome::Failed,
            attempts: vec![],
        };
        write_tombstone(&dir, "run", "k0", &t).unwrap();
        let back = read_tombstone(&dir, "run", "k0").unwrap();
        assert_eq!(back.error, t.error);
        assert_eq!(back.outcome, JobOutcome::Failed);
        assert!(read_tombstone(&dir, "run", "k1").is_none());
        // A torn tombstone reads as absent.
        std::fs::write(tombstone_path(&dir, "run", "k2"), "{\"label\": \"tr").unwrap();
        assert!(read_tombstone(&dir, "run", "k2").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_catches_job_graph_skew() {
        let dir = tmp_dir("manifest");
        let setup = tiny_setup();
        let a = jobs(&setup, &[1, 2]);
        let b = jobs(&setup, &[1, 3]);
        assert!(verify_manifest(&dir, &a).is_err(), "no manifest yet");
        write_manifest(&dir, &a).unwrap();
        verify_manifest(&dir, &a).expect("same jobs agree");
        let err = verify_manifest(&dir, &b).unwrap_err();
        assert!(err.contains("skew"), "unexpected error: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_worker_drains_the_graph_and_leaves_no_leases() {
        let dir = tmp_dir("drain");
        let mut engine = Engine::new(dir.join("cache"));
        engine.quiet = true;
        let setup = tiny_setup();
        let js = jobs(&setup, &[10, 11]);
        let cfg = FabricConfig {
            fabric_dir: dir.join("fabric"),
            worker_id: "w1".into(),
            lease_ttl: 2.0,
            steal_after: None,
            poll_ms: 5,
            allow_kills: false,
            claim_cap: 8,
        };
        let (store, report) = run_worker(&engine, &js, &cfg);
        assert_eq!(report.failed.len(), 0, "failures: {:?}", report.failed);
        assert_eq!(report.executed, report.total);
        assert!(store.get(&js[0]).is_ok() && store.get(&js[1]).is_ok());
        let leases = std::fs::read_dir(engine.cache().leases_root())
            .map(|d| d.count())
            .unwrap_or(0);
        assert_eq!(leases, 0, "every lease must be released");

        // A second worker over the same store resolves everything from
        // cache without claiming anything.
        let (store2, report2) = run_worker(&engine, &js, &cfg);
        assert_eq!(report2.executed, 0);
        assert_eq!(report2.cache_hits, report2.total);
        let a = store.get(&js[0]).unwrap().as_run().unwrap();
        let b = store2.get(&js[0]).unwrap().as_run().unwrap();
        assert_eq!(a.counters, b.counters, "warm pass must be bit-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The late-waker scenario of the lease protocol: a worker's lease
    /// is heartbeat-stale, a peer steals it and re-claims; when the
    /// original worker's execution finally finishes, its store attempt
    /// must be discarded (not double-committed) and flagged `lost`.
    #[test]
    fn late_waking_owner_discards_its_store_attempt() {
        let dir = tmp_dir("latewake");
        let mut engine = Engine::new(dir.join("cache"));
        engine.quiet = true;
        let setup = tiny_setup();
        let job = SimJob::Run(KernelRunSpec::new(&kernel(20), Scheme::Gto, &setup, None));
        let store = ResultStore::default();
        // Resolve the dependency-free identity of the profile dep first:
        // use the leaf profile job itself so no deps are needed.
        let leaf = job.deps().into_iter().next().unwrap_or(job.clone());
        let id = engine.identify(&leaf, &store).expect("leaf has no deps");

        // Original worker claims…
        assert!(engine
            .cache()
            .try_claim(id.kind, &id.key, &LeaseInfo::new("w1", "nonce-w1", 0)));
        // …its heartbeat stalls; a peer steals and re-claims.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(engine.cache().try_steal(id.kind, &id.key, 0.02), Some(0));
        assert!(engine
            .cache()
            .try_claim(id.kind, &id.key, &LeaseInfo::new("w2", "nonce-w2", 1)));

        // The original worker wakes up late and finishes its run: the
        // store gate (ownership check on its own nonce) must refuse.
        let watchdog = Watchdog::default();
        let gate = || engine.cache().owns(id.kind, &id.key, "nonce-w1");
        let d = engine.run_one(&leaf, &store, &watchdog, 0, Some(&gate));
        assert!(d.lost, "late waker must discard, not double-commit");
        assert!(d.result.is_err());
        assert!(
            matches!(engine.cache().lookup(id.kind, &id.key), Lookup::Miss),
            "nothing may be committed by the losing worker"
        );

        // The thief's own store attempt (gate on its nonce) commits.
        let gate2 = || engine.cache().owns(id.kind, &id.key, "nonce-w2");
        let d2 = engine.run_one(&leaf, &store, &watchdog, 1, Some(&gate2));
        assert!(!d2.lost);
        assert!(d2.result.is_ok());
        assert!(matches!(
            engine.cache().lookup(id.kind, &id.key),
            Lookup::Hit(_, _)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
