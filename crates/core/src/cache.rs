//! Content-addressed result cache for the experiment engine.
//!
//! Every simulation job (see [`crate::jobs`]) renders its *full* input
//! specification — kernel spec, scheme, controller parameters, machine
//! configuration, and digests of any upstream outputs such as trained
//! model weights — into a canonical text form, and the SHA-256 of that
//! text addresses the job's result under `results/cache/`. Editing any
//! input therefore invalidates exactly the runs that depend on it; nothing
//! else is re-simulated, and a blanket `POISE_RERUN=1` is only needed to
//! bypass the cache wholesale (e.g. after a simulator code change).
//!
//! ## File format
//!
//! One file per job, named `<kind>-<hash>.txt`:
//!
//! ```text
//! # poise job cache v1
//! # key: <64 hex chars>
//! # wall: <execution seconds of the run that produced the entry>
//! # spec:
//! #   <canonical spec, one line per field>
//! <output serialization, kind-specific>
//! ```
//!
//! The `wall` line is metadata, not identity: it records how long the
//! simulation that produced the entry took, so figures that report
//! simulation throughput (e.g. `sm_scaling`) render identically from a
//! warm cache and from the cold run that filled it.
//!
//! Loads verify the header version and key; any parse failure (truncated
//! file, stale format, hand-edited content) is treated as a miss and the
//! job silently re-runs. Stores write to a temporary file and `rename`
//! into place, so an interrupted `run_all` never leaves a half-written
//! entry and the next invocation resumes from the completed jobs.
//!
//! ## Float canonicalisation
//!
//! `f64` values are serialised with Rust's shortest-round-trip formatting
//! (`{:?}`), which parses back to the identical bit pattern. A cache hit
//! therefore returns *bit-identical* rows to the run that produced it.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

// The SHA-256 implementation lives in `workloads::digest` (trace
// workloads key themselves by content digest down there); re-exported
// here so the engine keeps one canonical hash.
pub use workloads::digest::{sha256_hex, Sha256};

/// Format an `f64` so that parsing recovers the identical bits.
pub fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// Parse an `f64` serialised by [`fmt_f64`] (also accepts `inf`/`NaN`).
pub fn parse_f64(s: &str) -> Option<f64> {
    s.parse().ok()
}

// ---------------------------------------------------------------------------
// The on-disk store.
// ---------------------------------------------------------------------------

/// Hit/miss/store counters for one engine run (cheap, lock-free).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Jobs answered from disk.
    pub hits: AtomicU64,
    /// Jobs that had no (valid) entry.
    pub misses: AtomicU64,
    /// Results written.
    pub stores: AtomicU64,
}

impl CacheStats {
    /// Snapshot `(hits, misses, stores)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.stores.load(Ordering::Relaxed),
        )
    }
}

/// A content-addressed result store rooted at a directory
/// (conventionally `results/cache/`).
#[derive(Debug)]
pub struct Cache {
    root: PathBuf,
    /// When set, `load` always misses (the `POISE_RERUN=1` escape hatch);
    /// results are still stored, refreshing the cache.
    pub bypass: bool,
    /// Run statistics.
    pub stats: CacheStats,
    /// File names this cache instance has read or written — the live set
    /// for [`Cache::prune_untouched`].
    touched: Mutex<HashSet<String>>,
    seq: AtomicU64,
}

impl Cache {
    /// Open (creating if needed) a cache rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let root = root.into();
        std::fs::create_dir_all(&root).expect("create cache dir");
        Cache {
            root,
            bypass: false,
            stats: CacheStats::default(),
            touched: Mutex::new(HashSet::new()),
            seq: AtomicU64::new(0),
        }
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, kind: &str, key: &str) -> PathBuf {
        self.root.join(self.file_of(kind, key))
    }

    fn file_of(&self, kind: &str, key: &str) -> String {
        format!("{kind}-{key}.txt")
    }

    fn touch(&self, kind: &str, key: &str) {
        self.touched
            .lock()
            .expect("touched set")
            .insert(self.file_of(kind, key));
    }

    /// Look up `key`; returns the stored body (without the header) plus
    /// the recorded execution wall seconds when a valid entry exists.
    /// Corrupt, truncated or stale-format entries are reported as misses
    /// so the caller silently re-runs the job.
    pub fn load(&self, kind: &str, key: &str) -> Option<(String, f64)> {
        if self.bypass {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let parsed = std::fs::read_to_string(self.path_of(kind, key))
            .ok()
            .and_then(|text| Self::parse_entry(&text, key));
        match parsed {
            Some(entry) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.touch(kind, key);
                Some(entry)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn parse_entry(text: &str, key: &str) -> Option<(String, f64)> {
        let mut lines = text.lines();
        if lines.next()? != "# poise job cache v1" {
            return None;
        }
        if lines.next()?.strip_prefix("# key: ")? != key {
            return None;
        }
        // Metadata: optional, absent in entries written before the wall
        // line existed (still valid — the recorded time is just unknown).
        let wall = lines
            .next()
            .and_then(|l| l.strip_prefix("# wall: "))
            .and_then(parse_f64)
            .unwrap_or(0.0);
        // Skip the embedded spec (all `#` comment lines); the body is
        // everything after, terminated by an explicit end marker so a
        // truncated write can be told apart from a short body.
        let body_start = text.find("\n# end-spec\n")? + "\n# end-spec\n".len();
        let body = &text[body_start..];
        let body = body.strip_suffix("# end\n")?;
        Some((body.to_string(), wall))
    }

    /// Store `body` under `key`, embedding the human-readable `spec` and
    /// the producing run's execution `wall` seconds in the header.
    /// Atomic: concurrent writers and interrupts leave either the old
    /// entry or the complete new one.
    pub fn store(&self, kind: &str, key: &str, spec: &str, body: &str, wall: f64) {
        let mut text = String::with_capacity(spec.len() + body.len() + 128);
        text.push_str("# poise job cache v1\n");
        text.push_str(&format!("# key: {key}\n"));
        text.push_str(&format!("# wall: {}\n", fmt_f64(wall)));
        text.push_str("# spec:\n");
        for line in spec.lines() {
            text.push_str("#   ");
            text.push_str(line);
            text.push('\n');
        }
        text.push_str("# end-spec\n");
        text.push_str(body);
        text.push_str("# end\n");
        let tmp = self.root.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        // Failures to persist are non-fatal: the engine still holds the
        // in-memory result; the job will simply re-run next time.
        if std::fs::write(&tmp, &text).is_ok()
            && std::fs::rename(&tmp, self.path_of(kind, key)).is_ok()
        {
            self.stats.stores.fetch_add(1, Ordering::Relaxed);
            self.touch(kind, key);
        }
    }

    /// Garbage-collect the store: delete every cache entry this instance
    /// has neither read nor written (plus orphaned temporaries from
    /// crashed writers). Returns `(removed, kept)` counts.
    ///
    /// Intended to run *after* a job graph has executed against this
    /// cache (`run_all --gc`): the touched set is then exactly the
    /// entries the current job set references, and everything else is a
    /// leftover of earlier specs — edited kernels, old knob settings,
    /// abandoned traces — that content addressing will never look up
    /// again.
    pub fn prune_untouched(&self) -> std::io::Result<(usize, usize)> {
        let touched = self.touched.lock().expect("touched set");
        let mut removed = 0;
        let mut kept = 0;
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            let stale_tmp = name.starts_with(".tmp-");
            if !stale_tmp && touched.contains(&name) {
                kept += 1;
            } else if stale_tmp || name.ends_with(".txt") {
                std::fs::remove_file(entry.path())?;
                removed += 1;
            } else {
                // Not ours (no .txt suffix): leave foreign files alone.
                kept += 1;
            }
        }
        Ok((removed, kept))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_is_the_workloads_digest() {
        // The implementation moved to `workloads::digest`; the re-export
        // must keep producing FIPS 180-4 values.
        assert_eq!(
            sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        let _ = Sha256::new();
    }

    #[test]
    fn prune_untouched_keeps_the_live_set() {
        let dir = std::env::temp_dir().join(format!("poise-cache-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            // A previous "run" leaves three entries behind.
            let old = Cache::new(&dir);
            for k in ["a", "b", "c"] {
                old.store("run", &sha256_hex(k), "spec", "body\n", 0.0);
            }
        }
        // A stale temporary from a crashed writer.
        std::fs::write(dir.join(".tmp-999-0"), "torn").unwrap();
        // The current run touches one existing entry (load) and writes a
        // new one (store).
        let cache = Cache::new(&dir);
        assert!(cache.load("run", &sha256_hex("a")).is_some());
        cache.store("run", &sha256_hex("d"), "spec", "body\n", 0.0);
        let (removed, kept) = cache.prune_untouched().unwrap();
        assert_eq!((removed, kept), (3, 2), "b, c and the tmp file go");
        assert!(cache.load("run", &sha256_hex("a")).is_some());
        assert!(cache.load("run", &sha256_hex("d")).is_some());
        assert!(cache.load("run", &sha256_hex("b")).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn f64_round_trips_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            1.234567890123456e-300,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let back = parse_f64(&fmt_f64(v)).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v}");
        }
        assert!(parse_f64(&fmt_f64(f64::NAN)).unwrap().is_nan());
    }

    #[test]
    fn store_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("poise-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::new(&dir);
        let key = sha256_hex("spec");
        assert!(cache.load("run", &key).is_none());
        cache.store("run", &key, "kernel t\nscheme GTO", "a 1\nb 2\n", 0.25);
        let (body, wall) = cache.load("run", &key).expect("hit");
        assert_eq!(body, "a 1\nb 2\n");
        assert_eq!(wall, 0.25, "wall metadata round-trips");
        let (h, m, s) = cache.stats.snapshot();
        assert_eq!((h, m, s), (1, 1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = std::env::temp_dir().join(format!("poise-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::new(&dir);
        let key = sha256_hex("x");
        cache.store("run", &key, "spec", "body line\n", 0.0);
        let path = dir.join(format!("run-{key}.txt"));
        // Truncated: the end marker is gone.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        assert!(cache.load("run", &key).is_none());
        // Garbage.
        std::fs::write(&path, "not a cache file").unwrap();
        assert!(cache.load("run", &key).is_none());
        // Wrong key in the header.
        let other = sha256_hex("y");
        cache.store("run", &other, "spec", "body\n", 0.0);
        std::fs::rename(dir.join(format!("run-{other}.txt")), &path).unwrap();
        assert!(cache.load("run", &key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bypass_forces_misses_but_still_stores() {
        let dir = std::env::temp_dir().join(format!("poise-cache-bypass-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = Cache::new(&dir);
        let key = sha256_hex("z");
        cache.store("run", &key, "spec", "body\n", 0.0);
        cache.bypass = true;
        assert!(cache.load("run", &key).is_none());
        cache.bypass = false;
        assert_eq!(
            cache.load("run", &key).map(|(b, _)| b).as_deref(),
            Some("body\n")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
