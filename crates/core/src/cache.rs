//! Content-addressed result cache for the experiment engine.
//!
//! Every simulation job (see [`crate::jobs`]) renders its *full* input
//! specification — kernel spec, scheme, controller parameters, machine
//! configuration, and digests of any upstream outputs such as trained
//! model weights — into a canonical text form, and the SHA-256 of that
//! text addresses the job's result under `results/cache/`. Editing any
//! input therefore invalidates exactly the runs that depend on it; nothing
//! else is re-simulated, and a blanket `POISE_RERUN=1` is only needed to
//! bypass the cache wholesale (e.g. after a simulator code change).
//!
//! ## File format
//!
//! One file per job, named `<kind>-<hash>.txt`:
//!
//! ```text
//! # poise job cache v1
//! # key: <64 hex chars>
//! # spec:
//! #   <canonical spec, one line per field>
//! <output serialization, kind-specific>
//! ```
//!
//! Loads verify the header version and key; any parse failure (truncated
//! file, stale format, hand-edited content) is treated as a miss and the
//! job silently re-runs. Stores write to a temporary file and `rename`
//! into place, so an interrupted `run_all` never leaves a half-written
//! entry and the next invocation resumes from the completed jobs.
//!
//! ## Float canonicalisation
//!
//! `f64` values are serialised with Rust's shortest-round-trip formatting
//! (`{:?}`), which parses back to the identical bit pattern. A cache hit
//! therefore returns *bit-identical* rows to the run that produced it.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Format an `f64` so that parsing recovers the identical bits.
pub fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// Parse an `f64` serialised by [`fmt_f64`] (also accepts `inf`/`NaN`).
pub fn parse_f64(s: &str) -> Option<f64> {
    s.parse().ok()
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4), self-contained: the build environment has no
// registry access, and the hash must stay stable across Rust releases —
// unlike `std::hash::DefaultHasher`, which is explicitly unstable.
// ---------------------------------------------------------------------------

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 hasher.
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        while !data.is_empty() {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, c) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }

    /// Finish and return the digest as 64 lowercase hex characters.
    pub fn finish_hex(mut self) -> String {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // The length block bypasses `total_len` accounting by design.
        let block_start = self.buf_len;
        self.buf[block_start..block_start + 8].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = String::with_capacity(64);
        for s in self.state {
            out.push_str(&format!("{s:08x}"));
        }
        out
    }
}

/// SHA-256 of a string, as hex.
pub fn sha256_hex(s: &str) -> String {
    let mut h = Sha256::new();
    h.update(s.as_bytes());
    h.finish_hex()
}

// ---------------------------------------------------------------------------
// The on-disk store.
// ---------------------------------------------------------------------------

/// Hit/miss/store counters for one engine run (cheap, lock-free).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Jobs answered from disk.
    pub hits: AtomicU64,
    /// Jobs that had no (valid) entry.
    pub misses: AtomicU64,
    /// Results written.
    pub stores: AtomicU64,
}

impl CacheStats {
    /// Snapshot `(hits, misses, stores)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.stores.load(Ordering::Relaxed),
        )
    }
}

/// A content-addressed result store rooted at a directory
/// (conventionally `results/cache/`).
#[derive(Debug)]
pub struct Cache {
    root: PathBuf,
    /// When set, `load` always misses (the `POISE_RERUN=1` escape hatch);
    /// results are still stored, refreshing the cache.
    pub bypass: bool,
    /// Run statistics.
    pub stats: CacheStats,
    seq: AtomicU64,
}

impl Cache {
    /// Open (creating if needed) a cache rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let root = root.into();
        std::fs::create_dir_all(&root).expect("create cache dir");
        Cache {
            root,
            bypass: false,
            stats: CacheStats::default(),
            seq: AtomicU64::new(0),
        }
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, kind: &str, key: &str) -> PathBuf {
        self.root.join(format!("{kind}-{key}.txt"))
    }

    /// Look up `key`; returns the stored body (without the header) when a
    /// valid entry exists. Corrupt, truncated or stale-format entries are
    /// reported as misses so the caller silently re-runs the job.
    pub fn load(&self, kind: &str, key: &str) -> Option<String> {
        if self.bypass {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let parsed = std::fs::read_to_string(self.path_of(kind, key))
            .ok()
            .and_then(|text| Self::parse_entry(&text, key));
        match parsed {
            Some(body) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(body)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn parse_entry(text: &str, key: &str) -> Option<String> {
        let mut lines = text.lines();
        if lines.next()? != "# poise job cache v1" {
            return None;
        }
        if lines.next()?.strip_prefix("# key: ")? != key {
            return None;
        }
        // Skip the embedded spec (all `#` comment lines); the body is
        // everything after, terminated by an explicit end marker so a
        // truncated write can be told apart from a short body.
        let body_start = text.find("\n# end-spec\n")? + "\n# end-spec\n".len();
        let body = &text[body_start..];
        let body = body.strip_suffix("# end\n")?;
        Some(body.to_string())
    }

    /// Store `body` under `key`, embedding the human-readable `spec` in
    /// the header. Atomic: concurrent writers and interrupts leave either
    /// the old entry or the complete new one.
    pub fn store(&self, kind: &str, key: &str, spec: &str, body: &str) {
        let mut text = String::with_capacity(spec.len() + body.len() + 128);
        text.push_str("# poise job cache v1\n");
        text.push_str(&format!("# key: {key}\n"));
        text.push_str("# spec:\n");
        for line in spec.lines() {
            text.push_str("#   ");
            text.push_str(line);
            text.push('\n');
        }
        text.push_str("# end-spec\n");
        text.push_str(body);
        text.push_str("# end\n");
        let tmp = self.root.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        // Failures to persist are non-fatal: the engine still holds the
        // in-memory result; the job will simply re-run next time.
        if std::fs::write(&tmp, &text).is_ok()
            && std::fs::rename(&tmp, self.path_of(kind, key)).is_ok()
        {
            self.stats.stores.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_matches_known_vectors() {
        // FIPS 180-4 test vectors.
        assert_eq!(
            sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Multi-block input exercising the buffering path.
        let long = "a".repeat(1000);
        let mut h = Sha256::new();
        for chunk in long.as_bytes().chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish_hex(), sha256_hex(&long));
    }

    #[test]
    fn f64_round_trips_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            1.234567890123456e-300,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let back = parse_f64(&fmt_f64(v)).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v}");
        }
        assert!(parse_f64(&fmt_f64(f64::NAN)).unwrap().is_nan());
    }

    #[test]
    fn store_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("poise-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::new(&dir);
        let key = sha256_hex("spec");
        assert!(cache.load("run", &key).is_none());
        cache.store("run", &key, "kernel t\nscheme GTO", "a 1\nb 2\n");
        assert_eq!(cache.load("run", &key).as_deref(), Some("a 1\nb 2\n"));
        let (h, m, s) = cache.stats.snapshot();
        assert_eq!((h, m, s), (1, 1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = std::env::temp_dir().join(format!("poise-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::new(&dir);
        let key = sha256_hex("x");
        cache.store("run", &key, "spec", "body line\n");
        let path = dir.join(format!("run-{key}.txt"));
        // Truncated: the end marker is gone.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        assert!(cache.load("run", &key).is_none());
        // Garbage.
        std::fs::write(&path, "not a cache file").unwrap();
        assert!(cache.load("run", &key).is_none());
        // Wrong key in the header.
        let other = sha256_hex("y");
        cache.store("run", &other, "spec", "body\n");
        std::fs::rename(dir.join(format!("run-{other}.txt")), &path).unwrap();
        assert!(cache.load("run", &key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bypass_forces_misses_but_still_stores() {
        let dir = std::env::temp_dir().join(format!("poise-cache-bypass-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = Cache::new(&dir);
        let key = sha256_hex("z");
        cache.store("run", &key, "spec", "body\n");
        cache.bypass = true;
        assert!(cache.load("run", &key).is_none());
        cache.bypass = false;
        assert_eq!(cache.load("run", &key).as_deref(), Some("body\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
