//! Content-addressed result cache for the experiment engine.
//!
//! Every simulation job (see [`crate::jobs`]) renders its *full* input
//! specification — kernel spec, scheme, controller parameters, machine
//! configuration, and digests of any upstream outputs such as trained
//! model weights — into a canonical text form, and the SHA-256 of that
//! text addresses the job's result under `results/cache/`. Editing any
//! input therefore invalidates exactly the runs that depend on it; nothing
//! else is re-simulated, and a blanket `POISE_RERUN=1` is only needed to
//! bypass the cache wholesale (e.g. after a simulator code change).
//!
//! ## File format
//!
//! One file per job, named `<kind>-<hash>.txt`:
//!
//! ```text
//! # poise job cache v1
//! # key: <64 hex chars>
//! # wall: <execution seconds of the run that produced the entry>
//! # sha256: <64 hex chars over the body>
//! # spec:
//! #   <canonical spec, one line per field>
//! <output serialization, kind-specific>
//! ```
//!
//! The `wall` line is metadata, not identity: it records how long the
//! simulation that produced the entry took, so figures that report
//! simulation throughput (e.g. `sm_scaling`) render identically from a
//! warm cache and from the cold run that filled it. The `sha256` line is
//! an end-to-end body checksum: the header/end-marker checks catch
//! truncation, but only the checksum catches silent in-place corruption
//! (a flipped bit in a stored counter still parses). Both lines are
//! optional on load, so entries written by earlier versions stay valid.
//!
//! ## Self-healing
//!
//! Loads verify the header version, key, end marker and (when present)
//! the body checksum. An invalid entry is **quarantined** — moved under
//! `quarantine/` beside the store, counted in [`CacheStats::corrupt`] /
//! [`CacheStats::quarantined`] — and reported distinctly from a plain
//! miss ([`Lookup::Corrupt`]), so the engine can re-run the job *and*
//! the run summary can say corruption happened; nothing silently
//! vanishes. [`Cache::fsck`] applies the same validation to every entry
//! offline (`run_all --fsck`). Stores write to a temporary file and
//! `rename` into place, so an interrupted `run_all` never leaves a
//! half-written entry and the next invocation resumes from the completed
//! jobs.
//!
//! ## Fault injection
//!
//! A [`FaultPlan`](crate::faults::FaultPlan) installed via
//! [`Cache::set_faults`] injects torn (truncated) writes and single-bit
//! body flips at the store seam, deterministically per entry key and
//! store occurrence — see [`crate::faults`] for how occurrences count
//! quarantined casualties so that self-healing converges. The lease seam
//! ([`Cache::try_claim`]) additionally honours
//! [`FaultKind::TornLease`](crate::faults::FaultKind::TornLease):
//! the claim file is truncated mid-write, exercising the garbage-lease
//! recovery path (wait for staleness, then steal).
//!
//! ## Leases (the distributed sweep fabric)
//!
//! `leases/<kind>-<key>.lease` files beside the store are the fabric's
//! crash-safe claim protocol (see [`crate::fabric`]). A worker *claims*
//! a job by creating its lease with `O_EXCL` semantics
//! ([`Cache::try_claim`]) — exactly one creator wins — and keeps the
//! claim alive by touching the file's mtime ([`Cache::heartbeat`]). A
//! lease whose heartbeat goes stale (dead worker) or whose claim age
//! exceeds the straggler deadline is *stolen* ([`Cache::try_steal`]):
//! the thief atomically renames the lease aside — only one renamer can
//! win — reads the prior owner's attempt count out of the wreck, and
//! re-claims carrying it, so the engine's bounded-retry accounting
//! spans process boundaries. Lease files are coordination state, not
//! results: [`Cache::reap_stale_leases`] (startup sweeps) and
//! [`Cache::fsck`] reclaim orphans left by SIGKILLed workers.
//!
//! ## Float canonicalisation
//!
//! `f64` values are serialised with Rust's shortest-round-trip formatting
//! (`{:?}`), which parses back to the identical bit pattern. A cache hit
//! therefore returns *bit-identical* rows to the run that produced it.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::faults::{FaultKind, FaultPlan};

// The SHA-256 implementation lives in `workloads::digest` (trace
// workloads key themselves by content digest down there); re-exported
// here so the engine keeps one canonical hash.
pub use workloads::digest::{sha256_hex, Sha256};

/// Format an `f64` so that parsing recovers the identical bits.
pub fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// Parse an `f64` serialised by [`fmt_f64`] (also accepts `inf`/`NaN`).
pub fn parse_f64(s: &str) -> Option<f64> {
    s.parse().ok()
}

// ---------------------------------------------------------------------------
// The on-disk store.
// ---------------------------------------------------------------------------

/// Hit/miss/store counters for one engine run (cheap, lock-free).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Jobs answered from disk.
    pub hits: AtomicU64,
    /// Jobs that had no (valid) entry.
    pub misses: AtomicU64,
    /// Results written.
    pub stores: AtomicU64,
    /// Entries that existed on disk but failed validation (truncated,
    /// stale format, checksum mismatch, wrong key). Every corrupt entry
    /// also counts as a miss — the job re-runs — but never silently:
    /// this counter surfaces in the run summary.
    pub corrupt: AtomicU64,
    /// Corrupt entries successfully moved under `quarantine/`.
    pub quarantined: AtomicU64,
    /// Leases stolen from stale owners (dead workers / stragglers).
    pub leases_stolen: AtomicU64,
    /// Orphaned lease files reclaimed by startup sweeps / fsck.
    pub leases_reaped: AtomicU64,
}

impl CacheStats {
    /// Snapshot `(hits, misses, stores)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.stores.load(Ordering::Relaxed),
        )
    }

    /// Corrupt-entry count (see the field docs).
    pub fn corrupt_count(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Quarantined-entry count.
    pub fn quarantined_count(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Stolen-lease count (see the field docs).
    pub fn leases_stolen_count(&self) -> u64 {
        self.leases_stolen.load(Ordering::Relaxed)
    }

    /// Reaped-lease count (see the field docs).
    pub fn leases_reaped_count(&self) -> u64 {
        self.leases_reaped.load(Ordering::Relaxed)
    }
}

/// The outcome of one cache lookup, distinguishing "no entry" from "an
/// entry existed but was invalid" — the latter is telemetry the engine
/// must not swallow.
#[derive(Debug)]
pub enum Lookup {
    /// A valid entry: body plus recorded execution wall seconds.
    Hit(String, f64),
    /// No entry (or bypass mode).
    Miss,
    /// An entry existed but failed validation; it has been quarantined.
    /// `prior_wall` carries the entry's recorded wall seconds when the
    /// header survived — the best available deadline budget for the
    /// re-run.
    Corrupt {
        /// Wall seconds of the producing run, if the header parsed.
        prior_wall: Option<f64>,
    },
}

/// Result of an offline [`Cache::fsck`] pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FsckReport {
    /// Entries examined.
    pub scanned: usize,
    /// Entries that validated (header, key, end marker, checksum, body).
    pub valid: usize,
    /// Entries that failed validation (all quarantined).
    pub corrupt: usize,
    /// Orphaned `.tmp-*` files from crashed writers, removed.
    pub tmp_removed: usize,
    /// Lease files reclaimed (fsck is offline: any surviving lease is an
    /// orphan of a dead worker).
    pub leases_removed: usize,
}

/// One fabric claim, as serialised into a `leases/<kind>-<key>.lease`
/// file. The file's *content* carries identity and the cumulative
/// attempt count; its *mtime* is the heartbeat (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseInfo {
    /// Claiming worker's id (for reports/attribution).
    pub worker: String,
    /// Unique claim token (worker + pid + sequence): ownership checks
    /// compare this, not the worker id, so re-claims are unambiguous.
    pub nonce: String,
    /// Cumulative execution attempts carried into this claim.
    pub attempt: u32,
    /// Claim wall-clock (UNIX epoch seconds) — the straggler deadline
    /// (`steal_after`) is measured from here.
    pub claimed_at: f64,
}

impl LeaseInfo {
    /// A fresh lease for `worker` carrying `attempt`, claimed now.
    pub fn new(worker: &str, nonce: &str, attempt: u32) -> Self {
        LeaseInfo {
            worker: worker.to_string(),
            nonce: nonce.to_string(),
            attempt,
            claimed_at: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0.0, |d| d.as_secs_f64()),
        }
    }

    fn render(&self) -> String {
        format!(
            "# poise lease v1\nworker {}\nnonce {}\nattempt {}\nclaimed {}\n",
            self.worker,
            self.nonce,
            self.attempt,
            fmt_f64(self.claimed_at)
        )
    }

    fn parse(text: &str) -> Option<LeaseInfo> {
        let mut lines = text.lines();
        if lines.next() != Some("# poise lease v1") {
            return None;
        }
        let mut field = |name: &str| -> Option<String> {
            lines
                .next()
                .and_then(|l| l.strip_prefix(name))
                .and_then(|v| v.strip_prefix(' '))
                .map(str::to_string)
        };
        Some(LeaseInfo {
            worker: field("worker")?,
            nonce: field("nonce")?,
            attempt: field("attempt")?.parse().ok()?,
            claimed_at: parse_f64(&field("claimed")?)?,
        })
    }

    /// Seconds since this lease was claimed (straggler age).
    pub fn claim_age(&self) -> f64 {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0.0, |d| d.as_secs_f64());
        (now - self.claimed_at).max(0.0)
    }
}

/// Seconds since `path` was last modified; `None` when it is gone.
fn file_age_secs(path: &Path) -> Option<f64> {
    std::fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .map(|t| t.elapsed().map_or(0.0, |d| d.as_secs_f64()))
}

/// Internal parse result: valid body, or invalid with whatever wall
/// metadata survived.
enum Parsed {
    Valid { body: String, wall: f64 },
    Invalid { prior_wall: Option<f64> },
}

/// A content-addressed result store rooted at a directory
/// (conventionally `results/cache/`).
#[derive(Debug)]
pub struct Cache {
    root: PathBuf,
    /// When set, `load` always misses (the `POISE_RERUN=1` escape hatch);
    /// results are still stored, refreshing the cache.
    pub bypass: bool,
    /// Run statistics.
    pub stats: CacheStats,
    /// File names this cache instance has read or written — the live set
    /// for [`Cache::prune_untouched`].
    touched: Mutex<HashSet<String>>,
    seq: AtomicU64,
    /// Injected store faults (torn writes, bit flips); `None` in normal
    /// operation.
    faults: Option<Arc<FaultPlan>>,
    /// In-process store count per file name, part of the fault-decision
    /// occurrence index (see [`crate::faults`]).
    store_counts: Mutex<HashMap<String, u64>>,
    /// In-process claim count per lease name: the occurrence index for
    /// injected lease faults ([`FaultKind::TornLease`]).
    claim_counts: Mutex<HashMap<String, u64>>,
}

impl Cache {
    /// Open (creating if needed) a cache rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let root = root.into();
        std::fs::create_dir_all(&root).expect("create cache dir");
        Cache {
            root,
            bypass: false,
            stats: CacheStats::default(),
            touched: Mutex::new(HashSet::new()),
            seq: AtomicU64::new(0),
            faults: None,
            store_counts: Mutex::new(HashMap::new()),
            claim_counts: Mutex::new(HashMap::new()),
        }
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The quarantine directory (`<root>/quarantine`); created lazily.
    pub fn quarantine_root(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    /// Install a fault-injection plan for the store seam.
    pub fn set_faults(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.faults = plan;
    }

    fn path_of(&self, kind: &str, key: &str) -> PathBuf {
        self.root.join(self.file_of(kind, key))
    }

    fn file_of(&self, kind: &str, key: &str) -> String {
        format!("{kind}-{key}.txt")
    }

    fn touch(&self, kind: &str, key: &str) {
        self.touched
            .lock()
            .expect("touched set")
            .insert(self.file_of(kind, key));
    }

    /// Look up `key`; returns the stored body (without the header) plus
    /// the recorded execution wall seconds when a valid entry exists.
    /// Corrupt entries are reported as misses (they are quarantined and
    /// counted — see [`Cache::lookup`] for the distinction).
    pub fn load(&self, kind: &str, key: &str) -> Option<(String, f64)> {
        match self.lookup(kind, key) {
            Lookup::Hit(body, wall) => Some((body, wall)),
            _ => None,
        }
    }

    /// Look up `key`, distinguishing a plain miss from a corrupt entry.
    /// A corrupt entry is counted, quarantined, and reported with
    /// whatever wall metadata survived.
    pub fn lookup(&self, kind: &str, key: &str) -> Lookup {
        if self.bypass {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return Lookup::Miss;
        }
        let path = self.path_of(kind, key);
        let Ok(text) = std::fs::read_to_string(&path) else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return Lookup::Miss;
        };
        match Self::parse_entry(&text, key) {
            Parsed::Valid { body, wall } => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.touch(kind, key);
                Lookup::Hit(body, wall)
            }
            Parsed::Invalid { prior_wall } => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
                if self.quarantine(&path) {
                    self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                }
                Lookup::Corrupt { prior_wall }
            }
        }
    }

    /// Move an invalid entry under `quarantine/`, suffixed with the
    /// first free casualty index so repeat corruption of one key keeps
    /// every specimen. Returns whether the move succeeded.
    fn quarantine(&self, path: &Path) -> bool {
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            return false;
        };
        let qdir = self.quarantine_root();
        if std::fs::create_dir_all(&qdir).is_err() {
            return false;
        }
        let mut n = self.quarantine_count(&name);
        // First free slot (a concurrent loader may have taken ours).
        loop {
            let dest = qdir.join(format!("{name}.{n}"));
            if !dest.exists() {
                return std::fs::rename(path, &dest).is_ok();
            }
            n += 1;
        }
    }

    /// How many quarantined casualties exist for cache file `name`.
    fn quarantine_count(&self, name: &str) -> u64 {
        let qdir = self.quarantine_root();
        let Ok(entries) = std::fs::read_dir(&qdir) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .strip_prefix(name)
                    .is_some_and(|rest| rest.starts_with('.'))
            })
            .count() as u64
    }

    fn parse_entry(text: &str, key: &str) -> Parsed {
        let invalid = |prior_wall: Option<f64>| Parsed::Invalid { prior_wall };
        let mut lines = text.lines();
        if lines.next() != Some("# poise job cache v1") {
            return invalid(None);
        }
        match lines.next().and_then(|l| l.strip_prefix("# key: ")) {
            Some(k) if k == key => {}
            _ => return invalid(None),
        }
        // Metadata lines: optional (absent in entries written before
        // they existed — still valid, the recorded time is just unknown
        // and corruption detection falls back to the end marker).
        let mut wall: Option<f64> = None;
        let mut sha: Option<&str> = None;
        for l in lines {
            if let Some(w) = l.strip_prefix("# wall: ") {
                wall = parse_f64(w);
            } else if let Some(s) = l.strip_prefix("# sha256: ") {
                sha = Some(s);
            } else {
                break; // `# spec:` (or anything else) ends the metadata.
            }
        }
        // Skip the embedded spec (all `#` comment lines); the body is
        // everything after, terminated by an explicit end marker so a
        // truncated write can be told apart from a short body.
        let Some(marker) = text.find("\n# end-spec\n") else {
            return invalid(wall);
        };
        let body = &text[marker + "\n# end-spec\n".len()..];
        let Some(body) = body.strip_suffix("# end\n") else {
            return invalid(wall);
        };
        if let Some(sha) = sha {
            if sha256_hex(body) != sha {
                return invalid(wall);
            }
        }
        Parsed::Valid {
            body: body.to_string(),
            wall: wall.unwrap_or(0.0),
        }
    }

    /// Store `body` under `key`, embedding the human-readable `spec`,
    /// the producing run's execution `wall` seconds and the body
    /// checksum in the header. Atomic: concurrent writers and interrupts
    /// leave either the old entry or the complete new one.
    pub fn store(&self, kind: &str, key: &str, spec: &str, body: &str, wall: f64) {
        let mut text = String::with_capacity(spec.len() + body.len() + 224);
        text.push_str("# poise job cache v1\n");
        text.push_str(&format!("# key: {key}\n"));
        text.push_str(&format!("# wall: {}\n", fmt_f64(wall)));
        text.push_str(&format!("# sha256: {}\n", sha256_hex(body)));
        text.push_str("# spec:\n");
        for line in spec.lines() {
            text.push_str("#   ");
            text.push_str(line);
            text.push('\n');
        }
        text.push_str("# end-spec\n");
        let body_start = text.len();
        text.push_str(body);
        text.push_str("# end\n");
        self.inject_store_fault(kind, key, &mut text, body_start, body.len());
        let tmp = self.root.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        // Failures to persist are non-fatal: the engine still holds the
        // in-memory result; the job will simply re-run next time.
        if std::fs::write(&tmp, &text).is_ok()
            && std::fs::rename(&tmp, self.path_of(kind, key)).is_ok()
        {
            self.stats.stores.fetch_add(1, Ordering::Relaxed);
            self.touch(kind, key);
        }
    }

    /// Apply an injected store fault to the rendered entry, when a plan
    /// is installed and rolls one for this key/occurrence. The
    /// occurrence index counts prior in-process stores plus quarantined
    /// casualties of earlier runs, so a healing re-store re-rolls
    /// instead of deterministically re-corrupting (see [`crate::faults`]).
    fn inject_store_fault(
        &self,
        kind: &str,
        key: &str,
        text: &mut String,
        body_start: usize,
        body_len: usize,
    ) {
        let Some(plan) = &self.faults else { return };
        let name = self.file_of(kind, key);
        let occurrence = {
            let mut counts = self.store_counts.lock().expect("store counts");
            let c = counts.entry(name.clone()).or_insert(0);
            let mine = *c;
            *c += 1;
            mine + self.quarantine_count(&name)
        };
        match plan.store_fault(key, occurrence) {
            Some(FaultKind::TornWrite) => {
                // Cut strictly before the end marker: every torn entry is
                // detectably incomplete.
                let max = text.len() - "# end\n".len();
                let cut = plan.corrupt_offset(key, occurrence, max).max(1);
                text.truncate(cut);
            }
            Some(FaultKind::BitFlip) if body_len > 0 => {
                let off = body_start + plan.corrupt_offset(key, occurrence, body_len);
                // SAFETY-free byte flip: rebuild around the flipped byte
                // (may break UTF-8 on multi-byte chars; bodies are ASCII).
                let mut bytes = std::mem::take(text).into_bytes();
                bytes[off] ^= 0x01;
                *text = String::from_utf8_lossy(&bytes).into_owned();
            }
            _ => {}
        }
    }

    // -----------------------------------------------------------------
    // Leases: the fabric's crash-safe claim protocol (see module docs).
    // -----------------------------------------------------------------

    /// The lease directory (`<root>/leases`); created lazily.
    pub fn leases_root(&self) -> PathBuf {
        self.root.join("leases")
    }

    fn lease_path(&self, kind: &str, key: &str) -> PathBuf {
        self.leases_root().join(format!("{kind}-{key}.lease"))
    }

    /// Atomically claim `<kind>-<key>` for `worker`: create the lease
    /// file with `O_EXCL` semantics, so exactly one racing claimer wins.
    /// `nonce` must be unique per claim (worker id + pid + sequence) —
    /// ownership checks compare it, so a lease stolen and re-claimed by
    /// the same worker id is still distinguishable. `attempt` is the
    /// cumulative execution-attempt count carried into this claim (0 for
    /// a fresh job; prior+1 after a steal).
    ///
    /// Returns `true` only when the claim file was created *and* reads
    /// back as ours: an injected torn lease write
    /// ([`FaultKind::TornLease`]) leaves an unreadable claim on disk that
    /// nobody owns — it must age out and be stolen like any other wreck,
    /// never silently treated as held.
    pub fn try_claim(&self, kind: &str, key: &str, lease: &LeaseInfo) -> bool {
        use std::io::Write as _;
        let dir = self.leases_root();
        if std::fs::create_dir_all(&dir).is_err() {
            return false;
        }
        let path = self.lease_path(kind, key);
        let Ok(mut f) = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        else {
            return false;
        };
        let mut text = lease.render();
        if let Some(plan) = &self.faults {
            let name = format!("{kind}-{key}.lease");
            let occurrence = {
                let mut counts = self.claim_counts.lock().expect("claim counts");
                let c = counts.entry(name.clone()).or_insert(0);
                let mine = *c;
                *c += 1;
                mine
            };
            if plan.lease_fault(&name, occurrence) {
                let cut = plan.corrupt_offset(&name, occurrence, text.len()).max(1);
                text.truncate(cut);
            }
        }
        let _ = f.write_all(text.as_bytes());
        drop(f);
        // Read-back verification closes the torn-write hole.
        matches!(self.read_lease(kind, key), Some(Ok(l)) if l.nonce == lease.nonce)
    }

    /// Read the lease for `<kind>-<key>`: `None` when free,
    /// `Some(Err(age))` for an unreadable (torn/garbage) lease with its
    /// mtime age in seconds, `Some(Ok(info))` for a parseable claim.
    pub fn read_lease(&self, kind: &str, key: &str) -> Option<Result<LeaseInfo, f64>> {
        let path = self.lease_path(kind, key);
        let text = std::fs::read_to_string(&path).ok()?;
        match LeaseInfo::parse(&text) {
            Some(info) => Some(Ok(info)),
            None => Some(Err(file_age_secs(&path).unwrap_or(0.0))),
        }
    }

    /// Seconds since the lease's last heartbeat (mtime). `None` when the
    /// lease does not exist.
    pub fn lease_age(&self, kind: &str, key: &str) -> Option<f64> {
        file_age_secs(&self.lease_path(kind, key))
    }

    /// Refresh the heartbeat (mtime) of a lease we own. Returns `false`
    /// when the lease is gone or no longer ours — the caller lost it to
    /// a steal and must discard any in-flight result.
    pub fn heartbeat(&self, kind: &str, key: &str, nonce: &str) -> bool {
        if !self.owns(kind, key, nonce) {
            return false;
        }
        let path = self.lease_path(kind, key);
        std::fs::File::options()
            .append(true)
            .open(&path)
            .and_then(|f| f.set_modified(std::time::SystemTime::now()))
            .is_ok()
    }

    /// Is the lease for `<kind>-<key>` still ours (same nonce)?
    pub fn owns(&self, kind: &str, key: &str, nonce: &str) -> bool {
        matches!(self.read_lease(kind, key), Some(Ok(l)) if l.nonce == nonce)
    }

    /// Release a lease we own. Returns `false` when it was already lost
    /// (stolen by another worker) — never removes a lease that is not
    /// ours.
    pub fn release(&self, kind: &str, key: &str, nonce: &str) -> bool {
        if !self.owns(kind, key, nonce) {
            return false;
        }
        std::fs::remove_file(self.lease_path(kind, key)).is_ok()
    }

    /// Steal a stale lease: atomically rename it aside (exactly one
    /// racing thief wins the rename), read the prior owner's cumulative
    /// attempt count out of the wreck, and remove it. The caller then
    /// re-claims via [`Cache::try_claim`] carrying `prior + 1`.
    ///
    /// `min_age` re-verifies staleness (heartbeat mtime age in seconds)
    /// immediately before the rename, so a lease whose owner heartbeats
    /// between the caller's staleness check and the steal is left alone.
    /// Returns the prior attempt count (0 for an unreadable wreck), or
    /// `None` when the lease is gone, fresh, or lost to a racing thief.
    pub fn try_steal(&self, kind: &str, key: &str, min_age: f64) -> Option<u32> {
        let path = self.lease_path(kind, key);
        let age = file_age_secs(&path)?;
        if age < min_age {
            return None;
        }
        let aside = self.leases_root().join(format!(
            ".steal-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::rename(&path, &aside).ok()?;
        let prior = std::fs::read_to_string(&aside)
            .ok()
            .and_then(|t| LeaseInfo::parse(&t))
            .map_or(0, |l| l.attempt);
        let _ = std::fs::remove_file(&aside);
        self.stats.leases_stolen.fetch_add(1, Ordering::Relaxed);
        Some(prior)
    }

    /// Reap orphaned lease files whose heartbeat mtime is at least
    /// `older_than` seconds old (plus `.steal-*` temporaries of the same
    /// age, left by thieves killed mid-steal). `0.0` reaps everything —
    /// only safe when no worker can be alive (a coordinator that has
    /// reaped its fleet, or an offline fsck). Returns the count.
    pub fn reap_stale_leases(&self, older_than: f64) -> usize {
        let dir = self.leases_root();
        let Ok(entries) = std::fs::read_dir(&dir) else {
            return 0;
        };
        let mut reaped = 0;
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if !(name.ends_with(".lease") || name.starts_with(".steal-")) {
                continue; // foreign file
            }
            let stale = file_age_secs(&entry.path()).is_some_and(|age| age >= older_than);
            if stale && std::fs::remove_file(entry.path()).is_ok() {
                reaped += 1;
            }
        }
        self.stats
            .leases_reaped
            .fetch_add(reaped as u64, Ordering::Relaxed);
        reaped
    }

    /// Remove orphaned `.tmp-*` files left by crashed writers. A light
    /// sibling of [`Cache::fsck`] for service startup/shutdown hygiene:
    /// no entry is read or validated, so it is cheap on a large store.
    /// Only safe when no writer can be alive (a daemon that owns the
    /// store, a coordinator that has reaped its fleet). Returns the
    /// count removed.
    pub fn sweep_tmp(&self) -> usize {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return 0;
        };
        let mut removed = 0;
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(".tmp-") && std::fs::remove_file(entry.path()).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    /// Re-validate every entry offline: header, key-vs-filename, end
    /// marker, checksum, plus the caller's body validation (typically a
    /// deserialisation round-trip). Invalid entries are quarantined.
    /// Orphaned `.tmp-*` files are removed, and — fsck being an offline
    /// tool — every surviving lease file is an orphan of a dead worker
    /// and is reclaimed. Foreign files (no `.txt` suffix or unrecognised
    /// name shape) are left alone.
    pub fn fsck(&self, validate: &dyn Fn(&str, &str) -> bool) -> std::io::Result<FsckReport> {
        let mut report = FsckReport {
            leases_removed: self.reap_stale_leases(0.0),
            ..FsckReport::default()
        };
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(".tmp-") {
                std::fs::remove_file(entry.path())?;
                report.tmp_removed += 1;
                continue;
            }
            let Some((kind, key)) = name
                .strip_suffix(".txt")
                .and_then(|stem| stem.split_once('-'))
            else {
                continue; // foreign file
            };
            report.scanned += 1;
            let ok = std::fs::read_to_string(entry.path())
                .ok()
                .is_some_and(|text| match Self::parse_entry(&text, key) {
                    Parsed::Valid { body, .. } => validate(kind, &body),
                    Parsed::Invalid { .. } => false,
                });
            if ok {
                report.valid += 1;
            } else {
                report.corrupt += 1;
                self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
                if self.quarantine(&entry.path()) {
                    self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(report)
    }

    /// Garbage-collect the store: delete every cache entry this instance
    /// has neither read nor written (plus orphaned temporaries from
    /// crashed writers). Returns `(removed, kept)` counts.
    ///
    /// Intended to run *after* a job graph has executed against this
    /// cache (`run_all --gc`): the touched set is then exactly the
    /// entries the current job set references, and everything else is a
    /// leftover of earlier specs — edited kernels, old knob settings,
    /// abandoned traces — that content addressing will never look up
    /// again.
    pub fn prune_untouched(&self) -> std::io::Result<(usize, usize)> {
        let touched = self.touched.lock().expect("touched set");
        let mut removed = 0;
        let mut kept = 0;
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            let stale_tmp = name.starts_with(".tmp-");
            if !stale_tmp && touched.contains(&name) {
                kept += 1;
            } else if stale_tmp || name.ends_with(".txt") {
                std::fs::remove_file(entry.path())?;
                removed += 1;
            } else {
                // Not ours (no .txt suffix): leave foreign files alone.
                kept += 1;
            }
        }
        Ok((removed, kept))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("poise-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sha256_is_the_workloads_digest() {
        // The implementation moved to `workloads::digest`; the re-export
        // must keep producing FIPS 180-4 values.
        assert_eq!(
            sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        let _ = Sha256::new();
    }

    #[test]
    fn prune_untouched_keeps_the_live_set() {
        let dir = tmp_dir("prune");
        {
            // A previous "run" leaves three entries behind.
            let old = Cache::new(&dir);
            for k in ["a", "b", "c"] {
                old.store("run", &sha256_hex(k), "spec", "body\n", 0.0);
            }
        }
        // A stale temporary from a crashed writer.
        std::fs::write(dir.join(".tmp-999-0"), "torn").unwrap();
        // The current run touches one existing entry (load) and writes a
        // new one (store).
        let cache = Cache::new(&dir);
        assert!(cache.load("run", &sha256_hex("a")).is_some());
        cache.store("run", &sha256_hex("d"), "spec", "body\n", 0.0);
        let (removed, kept) = cache.prune_untouched().unwrap();
        assert_eq!((removed, kept), (3, 2), "b, c and the tmp file go");
        assert!(cache.load("run", &sha256_hex("a")).is_some());
        assert!(cache.load("run", &sha256_hex("d")).is_some());
        assert!(cache.load("run", &sha256_hex("b")).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn f64_round_trips_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            1.234567890123456e-300,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let back = parse_f64(&fmt_f64(v)).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v}");
        }
        assert!(parse_f64(&fmt_f64(f64::NAN)).unwrap().is_nan());
    }

    #[test]
    fn store_and_load_round_trip() {
        let dir = tmp_dir("test");
        let cache = Cache::new(&dir);
        let key = sha256_hex("spec");
        assert!(cache.load("run", &key).is_none());
        cache.store("run", &key, "kernel t\nscheme GTO", "a 1\nb 2\n", 0.25);
        let (body, wall) = cache.load("run", &key).expect("hit");
        assert_eq!(body, "a 1\nb 2\n");
        assert_eq!(wall, 0.25, "wall metadata round-trips");
        let (h, m, s) = cache.stats.snapshot();
        assert_eq!((h, m, s), (1, 1, 1));
        assert_eq!(cache.stats.corrupt_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_without_metadata_lines_stay_valid() {
        // Back-compat: entries written before the wall/sha256 lines.
        let dir = tmp_dir("compat");
        let cache = Cache::new(&dir);
        let key = sha256_hex("old");
        let text = format!(
            "# poise job cache v1\n# key: {key}\n# spec:\n#   s\n# end-spec\nbody\n# end\n"
        );
        std::fs::write(dir.join(format!("run-{key}.txt")), text).unwrap();
        let (body, wall) = cache.load("run", &key).expect("valid without metadata");
        assert_eq!(body, "body\n");
        assert_eq!(wall, 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_counted_and_quarantined() {
        let dir = tmp_dir("corrupt");
        let cache = Cache::new(&dir);
        let key = sha256_hex("x");
        cache.store("run", &key, "spec", "body line\n", 0.5);
        let path = dir.join(format!("run-{key}.txt"));
        // Truncated: the end marker is gone.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        match cache.lookup("run", &key) {
            Lookup::Corrupt { prior_wall } => {
                assert_eq!(prior_wall, Some(0.5), "wall survives truncation")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert_eq!(cache.stats.corrupt_count(), 1);
        assert_eq!(cache.stats.quarantined_count(), 1);
        assert!(!path.exists(), "corrupt entry moved away");
        let q = cache.quarantine_root().join(format!("run-{key}.txt.0"));
        assert!(q.exists(), "quarantined under a casualty index");
        // The next lookup is a plain miss (nothing left to quarantine).
        assert!(matches!(cache.lookup("run", &key), Lookup::Miss));

        // A bit flip in the body parses fine structurally — only the
        // checksum catches it.
        cache.store("run", &key, "spec", "body line\n", 0.5);
        let full = std::fs::read_to_string(&path).unwrap();
        let flipped = full.replace("body line", "bodz line");
        std::fs::write(&path, flipped).unwrap();
        assert!(matches!(
            cache.lookup("run", &key),
            Lookup::Corrupt {
                prior_wall: Some(_)
            }
        ));
        assert_eq!(cache.stats.corrupt_count(), 2);
        assert!(
            cache
                .quarantine_root()
                .join(format!("run-{key}.txt.1"))
                .exists(),
            "second casualty gets the next index"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_and_garbage_are_corrupt() {
        let dir = tmp_dir("wrongkey");
        let cache = Cache::new(&dir);
        let key = sha256_hex("x");
        let path = dir.join(format!("run-{key}.txt"));
        std::fs::write(&path, "not a cache file").unwrap();
        assert!(matches!(
            cache.lookup("run", &key),
            Lookup::Corrupt { prior_wall: None }
        ));
        // Wrong key in the header.
        let other = sha256_hex("y");
        cache.store("run", &other, "spec", "body\n", 0.0);
        std::fs::rename(dir.join(format!("run-{other}.txt")), &path).unwrap();
        assert!(matches!(cache.lookup("run", &key), Lookup::Corrupt { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bypass_forces_misses_but_still_stores() {
        let dir = tmp_dir("bypass");
        let mut cache = Cache::new(&dir);
        let key = sha256_hex("z");
        cache.store("run", &key, "spec", "body\n", 0.0);
        cache.bypass = true;
        assert!(cache.load("run", &key).is_none());
        cache.bypass = false;
        assert_eq!(
            cache.load("run", &key).map(|(b, _)| b).as_deref(),
            Some("body\n")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_write_is_caught_and_heals() {
        let dir = tmp_dir("torn");
        let mut cache = Cache::new(&dir);
        cache.set_faults(Some(Arc::new(
            FaultPlan::new(1, 1.0).with_kinds(&[FaultKind::TornWrite]),
        )));
        let key = sha256_hex("t");
        cache.store("run", &key, "spec", "body\n", 0.0);
        // Occurrence 0 tore the write; detection quarantines it.
        assert!(matches!(cache.lookup("run", &key), Lookup::Corrupt { .. }));
        assert_eq!(cache.stats.quarantined_count(), 1);
        // rate=1.0 tears every occurrence; drop the plan to verify the
        // occurrence index advanced past the quarantined casualty.
        cache.set_faults(None);
        cache.store("run", &key, "spec", "body\n", 0.0);
        assert!(cache.load("run", &key).is_some(), "clean store heals");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_bit_flip_is_caught_by_checksum() {
        let dir = tmp_dir("flip");
        let mut cache = Cache::new(&dir);
        cache.set_faults(Some(Arc::new(
            FaultPlan::new(2, 1.0).with_kinds(&[FaultKind::BitFlip]),
        )));
        let key = sha256_hex("f");
        cache.store("run", &key, "spec", "value 1.25\n", 0.0);
        assert!(
            matches!(cache.lookup("run", &key), Lookup::Corrupt { .. }),
            "flipped body must fail the checksum"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lease_claim_is_exclusive_and_round_trips() {
        let dir = tmp_dir("lease");
        let cache = Cache::new(&dir);
        let key = sha256_hex("job");
        assert!(cache.read_lease("run", &key).is_none(), "free initially");
        let a = LeaseInfo::new("w1", "w1-1-0", 0);
        assert!(cache.try_claim("run", &key, &a));
        assert!(cache.owns("run", &key, "w1-1-0"));
        assert!(!cache.owns("run", &key, "w2-1-0"));
        // A second claim loses while the first is held.
        let b = LeaseInfo::new("w2", "w2-1-0", 0);
        assert!(!cache.try_claim("run", &key, &b));
        let held = cache.read_lease("run", &key).unwrap().unwrap();
        assert_eq!((held.worker.as_str(), held.attempt), ("w1", 0));
        assert!(held.claimed_at > 0.0);
        // Heartbeat refreshes only for the owner; release removes it.
        assert!(cache.heartbeat("run", &key, "w1-1-0"));
        assert!(!cache.heartbeat("run", &key, "w2-1-0"));
        assert!(!cache.release("run", &key, "w2-1-0"));
        assert!(cache.release("run", &key, "w1-1-0"));
        assert!(cache.read_lease("run", &key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_claims_have_exactly_one_winner() {
        let dir = tmp_dir("lease-race");
        let cache = Cache::new(&dir);
        let key = sha256_hex("contested");
        let wins: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let cache = &cache;
                    let key = key.clone();
                    s.spawn(move || {
                        let lease = LeaseInfo::new(&format!("w{i}"), &format!("w{i}-n"), 0);
                        cache.try_claim("run", &key, &lease)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            wins.iter().filter(|w| **w).count(),
            1,
            "exactly one racing claimer may win: {wins:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lease_is_stolen_with_attempts_carried() {
        let dir = tmp_dir("lease-steal");
        let cache = Cache::new(&dir);
        let key = sha256_hex("stuck");
        assert!(cache.try_claim("run", &key, &LeaseInfo::new("w1", "w1-n", 2)));
        // Fresh heartbeat: the steal is refused.
        assert_eq!(cache.try_steal("run", &key, 0.5), None);
        std::thread::sleep(std::time::Duration::from_millis(120));
        // Stale now (no heartbeat for 120ms > 0.1s): the thief wins and
        // carries the prior owner's cumulative attempt count.
        assert_eq!(cache.try_steal("run", &key, 0.1), Some(2));
        assert_eq!(cache.stats.leases_stolen_count(), 1);
        assert!(cache.read_lease("run", &key).is_none(), "wreck removed");
        // Only one racing thief can win (the rename is exclusive).
        assert_eq!(cache.try_steal("run", &key, 0.0), None);
        // The thief re-claims carrying prior + 1.
        assert!(cache.try_claim("run", &key, &LeaseInfo::new("w2", "w2-n", 3)));
        assert_eq!(
            cache.read_lease("run", &key).unwrap().unwrap().attempt,
            3,
            "cumulative attempts survive the ownership change"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_lease_write_claims_nothing_and_ages_out() {
        let dir = tmp_dir("lease-torn");
        let mut cache = Cache::new(&dir);
        cache.set_faults(Some(Arc::new(
            FaultPlan::new(1, 1.0).with_kinds(&[FaultKind::TornLease]),
        )));
        let key = sha256_hex("torn");
        let lease = LeaseInfo::new("w1", "w1-n", 0);
        assert!(
            !cache.try_claim("run", &key, &lease),
            "a torn claim must not report success"
        );
        // The wreck exists but parses as garbage — held by nobody.
        assert!(matches!(cache.read_lease("run", &key), Some(Err(_))));
        assert!(!cache.owns("run", &key, "w1-n"));
        // Nobody can claim over it while it is fresh...
        cache.set_faults(None);
        assert!(!cache.try_claim("run", &key, &LeaseInfo::new("w2", "w2-n", 0)));
        // ...but once stale it is stolen like any dead claim (attempt
        // carry unknown: 0).
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert_eq!(cache.try_steal("run", &key, 0.05), Some(0));
        assert!(cache.try_claim("run", &key, &LeaseInfo::new("w2", "w2-n", 1)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reap_stale_leases_and_fsck_reclaim_orphans() {
        let dir = tmp_dir("lease-reap");
        let cache = Cache::new(&dir);
        let (k1, k2) = (sha256_hex("a"), sha256_hex("b"));
        assert!(cache.try_claim("run", &k1, &LeaseInfo::new("w1", "n1", 0)));
        assert!(cache.try_claim("run", &k2, &LeaseInfo::new("w1", "n2", 0)));
        std::fs::write(cache.leases_root().join(".steal-9-9"), "wreck").unwrap();
        std::fs::write(cache.leases_root().join("README"), "foreign").unwrap();
        assert_eq!(cache.reap_stale_leases(30.0), 0, "fresh leases survive");
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert_eq!(cache.reap_stale_leases(0.05), 3, "stale leases + steal tmp");
        assert_eq!(cache.stats.leases_reaped_count(), 3);
        assert!(cache.leases_root().join("README").exists());
        // fsck reclaims any survivor unconditionally (offline tool).
        assert!(cache.try_claim("run", &k1, &LeaseInfo::new("w2", "n3", 0)));
        let report = cache.fsck(&|_, _| true).unwrap();
        assert_eq!(report.leases_removed, 1);
        assert!(cache.read_lease("run", &k1).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_quarantines_invalid_entries_and_cleans_temporaries() {
        let dir = tmp_dir("fsck");
        let cache = Cache::new(&dir);
        for k in ["a", "b", "c"] {
            cache.store(
                "run",
                &sha256_hex(k),
                "spec",
                format!("{k}\n").as_str(),
                0.0,
            );
        }
        // Corrupt one entry in place; leave a stale temporary and a
        // foreign file.
        let victim = dir.join(format!("run-{}.txt", sha256_hex("b")));
        let text = std::fs::read_to_string(&victim).unwrap();
        std::fs::write(&victim, &text[..text.len() - 3]).unwrap();
        std::fs::write(dir.join(".tmp-1-1"), "torn").unwrap();
        std::fs::write(dir.join("README"), "foreign").unwrap();

        let report = cache
            .fsck(&|kind, body| kind == "run" && !body.is_empty())
            .unwrap();
        assert_eq!(report.scanned, 3);
        assert_eq!(report.valid, 2);
        assert_eq!(report.corrupt, 1);
        assert_eq!(report.tmp_removed, 1);
        assert!(!victim.exists(), "invalid entry quarantined");
        assert!(dir.join("README").exists(), "foreign file untouched");
        // A second pass is clean.
        let report = cache.fsck(&|_, _| true).unwrap();
        assert_eq!((report.scanned, report.corrupt), (2, 0));
        // The caller's validator can also reject parseable bodies.
        let report = cache.fsck(&|_, _| false).unwrap();
        assert_eq!(report.corrupt, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
